"""Influential sets: IS, MIS and INS (Definitions 1–4 of the paper).

This module collects the set-level machinery the INS algorithm is built on,
independent of any particular processor:

* :func:`is_closer_set` — the ``A ≺_q B`` relation ("every object of A is
  closer to q than every object of B").
* :func:`verify_influential_set` — an oracle check of Definition 1 used by
  the tests: a candidate guard set S is an influential set of a kNN set O'
  exactly when, for every probed query position, ``O' = NN_k(q)`` holds if
  and only if ``O' ≺_q S``.
* :func:`minimal_influential_set` — the MIS (Definition 2), extracted from
  the exact order-k Voronoi cell.
* :func:`influential_neighbor_set` — the INS (Definition 4), the union of
  the order-1 Voronoi neighbour sets of the kNN members minus the members.
* :class:`InfluentialSetMonitor` — a small stateful wrapper that keeps the
  INS of a fixed member set current under data updates, speaking the
  serving engine's delta-invalidation contract (``notify_data_update`` /
  ``invalidate``) so it can be driven side by side with the processors.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Set

from repro.errors import QueryError
from repro.core.stats import ProcessorStats
from repro.geometry.order_k import knn_indexes, order_k_cell
from repro.geometry.point import Point
from repro.geometry.primitives import BoundingBox
from repro.geometry.voronoi import VoronoiDiagram
from repro.geometry.voronoi import influential_neighbor_indexes as _ins_from_map


def is_closer_set(
    query: Point,
    closer: Iterable[Point],
    farther: Iterable[Point],
) -> bool:
    """The ``A ≺_q B`` relation of Definition 1.

    Returns True when every point of ``closer`` is at most as far from
    ``query`` as every point of ``farther``.  An empty ``farther`` set makes
    the relation trivially true; an empty ``closer`` set likewise.
    """
    closer_list = list(closer)
    farther_list = list(farther)
    if not closer_list or not farther_list:
        return True
    max_close = max(query.distance_to(p) for p in closer_list)
    min_far = min(query.distance_to(p) for p in farther_list)
    return max_close <= min_far


def influential_neighbor_set(
    neighbor_map: Mapping[int, Set[int]], members: Iterable[int]
) -> Set[int]:
    """The INS of ``members`` given a precomputed Voronoi neighbour map.

    Definition 4: the union of the order-1 Voronoi neighbour sets of the
    members, minus the members themselves.  Works identically for Euclidean
    Voronoi neighbour maps and network Voronoi neighbour maps.
    """
    return _ins_from_map(neighbor_map, members)


def influential_neighbor_set_from_points(
    sites: Sequence[Point], members: Iterable[int]
) -> Set[int]:
    """The INS computed directly from site coordinates (builds the diagram)."""
    diagram = VoronoiDiagram(sites)
    return influential_neighbor_set(diagram.neighbor_map(), members)


def minimal_influential_set(
    sites: Sequence[Point],
    members: Iterable[int],
    reference: Optional[Point] = None,
    bounding_box: Optional[BoundingBox] = None,
) -> Set[int]:
    """The MIS of ``members`` (Definition 2).

    The MIS consists of the objects owning order-k Voronoi cells adjacent to
    the cell of ``members``; it is recovered from the exact order-k cell
    boundary (see :mod:`repro.geometry.order_k`).

    Note that when the cell is clipped by the bounding box (the true cell is
    unbounded), the returned set only covers neighbours across the bisector
    edges that remain inside the box — which is the correct MIS restricted
    to the modelled data space.
    """
    cell = order_k_cell(sites, members, reference=reference, bounding_box=bounding_box)
    return set(cell.mis_indexes)


class InfluentialSetMonitor:
    """Keep the INS of a fixed member set current under data updates.

    The functional helpers above answer one-shot questions; this class is
    their continuous counterpart for a *pinned* member set (e.g. a watched
    group of facilities): it caches the INS, accepts the serving engine's
    repair deltas through :meth:`notify_data_update`, and only rebuilds the
    Voronoi diagram when a delta actually touches the members or their
    current influential neighbours — everything else is absorbed, exactly
    like the processors' lazy settling.  :meth:`invalidate` restores the
    blanket ``"flag"`` behaviour (rebuild on next read), which is the
    oracle the delta path is tested against.

    Args:
        sites: the live data-object positions (the monitor re-reads this
            sequence on every rebuild, so in-place mutation is the expected
            update style).
        members: the fixed member indexes whose INS is monitored.
    """

    def __init__(self, sites: Sequence[Point], members: Iterable[int]):
        self._sites = sites
        self._members = tuple(sorted(set(members)))
        if not self._members:
            raise QueryError("the monitored member set must not be empty")
        out_of_range = [i for i in self._members if i < 0 or i >= len(sites)]
        if out_of_range:
            raise QueryError(f"member indexes out of range: {out_of_range}")
        self._removed: Set[int] = set()
        self._pending_changed: Set[int] = set()
        self._pending_removed: Set[int] = set()
        self._state_stale = False
        self._force_refresh = False
        self._ins: Optional[FrozenSet[int]] = None
        self._stats = ProcessorStats()

    @property
    def members(self) -> Sequence[int]:
        """The pinned member indexes (sorted, immutable)."""
        return self._members

    @property
    def stats(self) -> ProcessorStats:
        """Rebuild/absorption counters (``full_recomputations``,
        ``absorbed_updates``, ``transmitted_objects``)."""
        return self._stats

    @property
    def state_stale(self) -> bool:
        """True when an unsettled data-update delta is pending."""
        return self._state_stale

    def notify_data_update(
        self, changed: Iterable[int] = (), removed: Iterable[int] = ()
    ) -> None:
        """Record a repair delta; settled lazily on the next read.

        ``changed`` follows the engine's delta convention: it lists every
        object whose *Voronoi neighbour list* changed (not merely the moved
        object) — exactly what the VoR-tree's repair reports.  The INS of
        the members is a function of the members' neighbour lists, so a
        delta that touches neither a member nor a current influential
        neighbour cannot change the answer and is absorbed.
        """
        self._pending_changed.update(changed)
        self._pending_removed.update(removed)
        self._state_stale = True

    def invalidate(self) -> None:
        """Blanket invalidation: rebuild on the next read (the flag oracle)."""
        self._force_refresh = True
        self._state_stale = True

    def influential_sites(self) -> FrozenSet[int]:
        """The current INS of the member set (settling any pending delta).

        Raises:
            QueryError: when a settled delta removed one of the pinned
                members — the monitored set no longer exists.
        """
        if self._state_stale:
            self._settle_pending()
        if self._ins is None:
            self._rebuild()
        return self._ins  # type: ignore[return-value]

    def _settle_pending(self) -> None:
        changed = self._pending_changed
        removed = self._pending_removed
        force = self._force_refresh
        self._pending_changed = set()
        self._pending_removed = set()
        self._force_refresh = False
        self._state_stale = False
        self._removed.update(removed)
        lost = removed.intersection(self._members)
        if lost:
            raise QueryError(
                f"monitored members {sorted(lost)} were removed from the data set"
            )
        if force or self._ins is None:
            self._ins = None
            return
        watched = set(self._members) | set(self._ins)
        touched = (changed | removed) & watched
        if touched:
            self._ins = None
        else:
            # The delta cannot change any member's Voronoi neighbour list:
            # both its endpoints sit outside the watched neighbourhood.
            self._stats.absorbed_updates += 1

    def _rebuild(self) -> None:
        active = [
            index for index in range(len(self._sites)) if index not in self._removed
        ]
        local_of = {index: local for local, index in enumerate(active)}
        missing = [i for i in self._members if i not in local_of]
        if missing:
            raise QueryError(
                f"monitored members {missing} are gone from the data set"
            )
        with self._stats.time_construction():
            local_ins = influential_neighbor_set_from_points(
                [self._sites[index] for index in active],
                [local_of[index] for index in self._members],
            )
        self._ins = frozenset(active[local] for local in local_ins)
        self._stats.full_recomputations += 1
        self._stats.transmitted_objects += len(self._ins)


def verify_influential_set(
    sites: Sequence[Point],
    members: Iterable[int],
    guard: Iterable[int],
    probes: Iterable[Point],
) -> bool:
    """Oracle check of Definition 1 over a set of probe positions.

    For every probe position q the equivalence
    ``members == NN_k(q)  <=>  members ≺_q guard`` must hold.  Ties (probe
    positions where the k-th and (k+1)-th distances coincide) are skipped,
    since at a tie both kNN sets are legitimate answers.

    Returns True when no probe violates the equivalence.
    """
    member_list = sorted(set(members))
    guard_list = sorted(set(guard))
    if set(member_list) & set(guard_list):
        raise QueryError("guard set must be disjoint from the member set")
    k = len(member_list)
    member_points = [sites[i] for i in member_list]
    guard_points = [sites[i] for i in guard_list]
    for probe in probes:
        true_knn = set(knn_indexes(sites, probe, k))
        distances = sorted(probe.distance_to(p) for p in sites)
        if k < len(sites):
            gap = distances[k] - distances[k - 1]
            if gap <= 1e-9 * max(distances[k], 1.0):
                continue
        is_knn = true_knn == set(member_list)
        is_guarded = is_closer_set(probe, member_points, guard_points)
        if is_knn != is_guarded:
            return False
    return True
