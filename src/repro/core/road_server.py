"""The road-network multi-query moving-kNN server.

The road counterpart of :class:`~repro.core.server.MovingKNNServer` and,
like it, a thin metric-specific subclass of the generic
:class:`~repro.core.engine.ServingEngine`: one shared, incrementally
maintained :class:`~repro.roadnet.network_voronoi.NetworkVoronoiDiagram`
(the expensive structure — a whole-graph multi-source Dijkstra to build)
serves every registered :class:`INSRoadProcessor` client, and the engine
owns the query lifecycle, the epoch counter, the population guard and the
invalidation dispatch.  This module contributes only the road 20%:

* constructing the shared diagram and the per-query processors (each with
  its own ``k``, ``ρ``, validation mode and Theorem 2 sub-network),
* translating object mutations (:meth:`MovingRoadKNNServer.insert_object`,
  :meth:`~MovingRoadKNNServer.delete_object`,
  :meth:`~MovingRoadKNNServer.move_object`,
  :meth:`~MovingRoadKNNServer.batch_update`) into *local* repair floods —
  O(cells touched) per update, with a whole burst applied as one epoch.

**Invalidation is delta-scoped** — the contract this server pioneered and
the engine now shares with the Euclidean side: every repair reports the
objects whose Voronoi neighbour sets changed, the engine pushes exactly
that delta to each registered query, and a client settles it lazily on its
next timestamp (removal inside its prefetched set → one retrieval; delta
elsewhere in its held pool → I(R) + sub-network refreshed from the repaired
diagram; delta outside its pool → free, counted as an absorbed update).
Processors share the diagram's live vertex-assignment view, so an update
never copies the n-object list into each registered query.  The blanket
refresh-everyone behaviour survives as ``invalidation="flag"``, the
fallback mode and the oracle of the randomized delta-equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, QueryError
from repro.core.engine import ServingEngine
from repro.core.ins_road import INSRoadProcessor
from repro.obs.clock import clock as _clock
from repro.obs.metrics import histogram as _obs_histogram
from repro.obs.trace import TRACER as _TRACER
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation
from repro.roadnet.network_voronoi import NetworkVoronoiDiagram
from repro.roadnet.shortest_path import SearchStats

# Index-maintenance latency, re-homed: one clock read pair feeds both the
# legacy maintenance_seconds/delta_apply_seconds accumulators (always) and
# these registry histograms (when observability is enabled).
_MAINTENANCE_SECONDS = _obs_histogram("insq_maintenance_seconds", metric="road")
_DELTA_APPLY_SECONDS = _obs_histogram("insq_delta_apply_seconds", metric="road")


@dataclass(frozen=True)
class RegisteredRoadQuery:
    """Bookkeeping record of one registered moving road query."""

    query_id: int
    k: int
    rho: float
    validation_mode: str
    processor: INSRoadProcessor
    kind: str = "knn"


@dataclass(frozen=True)
class RoadBatchUpdateResult:
    """Outcome of one :meth:`MovingRoadKNNServer.batch_update` epoch.

    Attributes:
        new_indexes: object indexes assigned to the inserted objects, in
            input order.
        deleted_indexes: object indexes that were actually deleted.
        changed_objects: surviving objects whose Voronoi neighbour sets
            changed (the delta pushed to the registered queries).
        epoch: the data epoch after applying the batch (monotonically
            increasing; one step per mutation batch, however large).
    """

    new_indexes: Tuple[int, ...]
    deleted_indexes: Tuple[int, ...]
    changed_objects: FrozenSet[int]
    epoch: int


class MovingRoadKNNServer(ServingEngine[NetworkLocation, RegisteredRoadQuery]):
    """Serve many concurrent moving kNN queries over one road-side data set.

    Args:
        network: the road network shared by every query.
        object_vertices: initial vertex of each data object.
        maintenance: update-maintenance mode of the shared network Voronoi
            diagram (``"incremental"`` or ``"rebuild"``; see
            :class:`NetworkVoronoiDiagram`).
        stats: optional search-effort accumulator shared with the diagram's
            construction and repairs.
        invalidation: ``"delta"`` (default) pushes each epoch's repair
            delta to the registered queries; ``"flag"`` restores the
            blanket refresh-everyone contract (see
            :class:`~repro.core.engine.ServingEngine`).
    """

    def __init__(
        self,
        network: RoadNetwork,
        object_vertices: Sequence[int],
        maintenance: str = "incremental",
        stats: Optional[SearchStats] = None,
        invalidation: str = "delta",
    ):
        super().__init__(invalidation=invalidation)
        self._network = network
        self._search_stats = stats if stats is not None else SearchStats()
        self._voronoi = NetworkVoronoiDiagram(
            network, list(object_vertices), self._search_stats, maintenance=maintenance
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        """The shared road network."""
        return self._network

    @property
    def voronoi(self) -> NetworkVoronoiDiagram:
        """The shared server-side network Voronoi diagram."""
        return self._voronoi

    @property
    def search_stats(self) -> SearchStats:
        """Search effort spent building and repairing the shared diagram."""
        return self._search_stats

    @property
    def maintenance(self) -> str:
        """The shared diagram's maintenance mode (``"incremental"``/``"rebuild"``)."""
        return self._voronoi.maintenance

    @property
    def object_count(self) -> int:
        """Number of active data objects."""
        return self._voronoi.object_count()

    def object_vertex(self, index: int) -> int:
        """The vertex data object ``index`` currently sits on."""
        return self._voronoi.object_vertex(index)

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------
    def register_query(
        self,
        position: NetworkLocation,
        k: int,
        rho: float = 1.6,
        validation_mode: str = "restricted",
        kind: str = "knn",
    ) -> int:
        """Register a new moving query and compute its first answer.

        Returns the query identifier used for subsequent position updates.
        The non-kNN continuous kinds are Euclidean-only for now: their safe
        regions are planar constructions (order-k Voronoi cells, Voronoi
        neighbour lists on the plane) with no network-metric counterpart in
        this codebase yet.
        """
        if kind != "knn":
            raise ConfigurationError(
                f"continuous {kind!r} queries are Euclidean-only; the road "
                "metric serves kind='knn' sessions"
            )
        processor = INSRoadProcessor(
            self._network,
            self._voronoi.vertex_assignments,
            k,
            rho=rho,
            validation_mode=validation_mode,
            voronoi=self._voronoi,
        )
        # Initialize before admitting: a failing first answer (bad
        # location, unreachable region) must not leave a zombie query
        # behind.
        processor.initialize(position)
        return self._admit(
            lambda query_id: RegisteredRoadQuery(
                query_id=query_id,
                k=k,
                rho=rho,
                validation_mode=validation_mode,
                processor=processor,
            )
        )

    # ------------------------------------------------------------------
    # Data-object updates
    # ------------------------------------------------------------------
    def insert_object(self, vertex: int) -> int:
        """Insert a data object at ``vertex``; returns its object index.

        The shared diagram absorbs the insert with a local repair flood and
        every registered query receives the repair delta — no per-query
        state is copied.
        """
        start = _clock()
        index, changed = self._voronoi.insert_object(vertex)
        elapsed = _clock() - start
        self.maintenance_seconds += elapsed
        _MAINTENANCE_SECONDS.observe(elapsed)
        _TRACER.add("index.maintain", start, elapsed, metric="road")
        self._commit_epoch(changed, payload=1)
        return index

    def delete_object(self, index: int) -> bool:
        """Delete data object ``index`` (returns False when already gone).

        Raises:
            QueryError: when the deletion would leave fewer objects than
                some registered query's ``k`` requires — failing loudly at
                the mutation instead of at that query's next timestamp.
        """
        if not self._voronoi.is_active(index):
            return False
        self._check_population(self._voronoi.object_count() - 1)
        start = _clock()
        changed = self._voronoi.remove_object(index)
        elapsed = _clock() - start
        self.maintenance_seconds += elapsed
        _MAINTENANCE_SECONDS.observe(elapsed)
        _TRACER.add("index.maintain", start, elapsed, metric="road")
        self._commit_epoch(changed, (index,), payload=1)
        return True

    def move_object(self, index: int, vertex: int) -> FrozenSet[int]:
        """Move data object ``index`` to ``vertex``.

        Returns the set of objects whose neighbour sets changed (the moved
        object included), which is also the delta pushed to the queries.
        """
        start = _clock()
        changed = self._voronoi.move_object(index, vertex)
        elapsed = _clock() - start
        self.maintenance_seconds += elapsed
        _MAINTENANCE_SECONDS.observe(elapsed)
        _TRACER.add("index.maintain", start, elapsed, metric="road")
        if not changed:
            return frozenset()
        self._commit_epoch(changed, payload=1)
        return frozenset(changed)

    def batch_update(
        self,
        inserts: Sequence[int] = (),
        deletes: Iterable[int] = (),
        moves: Iterable[Tuple[int, int]] = (),
    ) -> RoadBatchUpdateResult:
        """Apply a burst of object inserts, moves and deletes as one epoch.

        A heavy traffic stream batches its object updates; applying them
        together triggers one diagram patch (or, for very large bursts, one
        rebuild) and one invalidation round instead of one per object.

        Raises:
            QueryError: when the surviving population would be too small
                for some registered query's ``k``.
        """
        insert_list = list(inserts)
        move_list = list(moves)
        delete_list = self._dedup_active_deletes(deletes, self._voronoi.is_active)
        self._check_population(
            self._voronoi.object_count() + len(insert_list) - len(delete_list)
        )
        start = _clock()
        new_indexes, deleted, changed = self._voronoi.batch_update(
            insert_list, delete_list, move_list
        )
        elapsed = _clock() - start
        self.maintenance_seconds += elapsed
        _MAINTENANCE_SECONDS.observe(elapsed)
        _TRACER.add("index.maintain", start, elapsed, metric="road")
        if new_indexes or deleted or changed:
            self._commit_epoch(
                changed,
                deleted,
                payload=len(insert_list) + len(delete_list) + len(move_list),
            )
        return RoadBatchUpdateResult(
            new_indexes=tuple(new_indexes),
            deleted_indexes=tuple(deleted),
            changed_objects=frozenset(changed),
            epoch=self._epoch,
        )

    # ------------------------------------------------------------------
    # Leader/replica delta replication
    # ------------------------------------------------------------------
    def begin_delta_capture(self) -> None:
        """Start recording the repair delta of the next update epoch.

        Installed by the maintenance leader before applying a batch; the
        shared diagram records which keys its repair floods touch (see
        :meth:`NetworkVoronoiDiagram.begin_delta_capture`).
        """
        self._voronoi.begin_delta_capture()

    def export_delta(self, result: RoadBatchUpdateResult, batch) -> Dict[str, object]:
        """The :class:`~repro.transport.codec.IndexDelta` fields of the
        epoch that :meth:`batch_update` just applied (as plain kwargs).

        ``payload`` reproduces what the epoch billed as uplink objects:
        one record per insert and per deduplicated deletion (the result
        lengths) plus one per move record of the originating
        :class:`~repro.service.messages.UpdateBatch`.
        """
        sections = self._voronoi.export_delta()
        return {
            "epoch": result.epoch,
            "payload": len(result.new_indexes)
            + len(result.deleted_indexes)
            + len(batch.moves),
            "new_indexes": tuple(result.new_indexes),
            "deleted_indexes": tuple(result.deleted_indexes),
            "changed": tuple(sorted(result.changed_objects)),
            **sections,
        }

    def apply_remote_delta(self, delta) -> None:
        """Apply a maintenance leader's repair delta as this engine's epoch.

        The read-replica path of ``replication="delta"``: the shared
        diagram is patched from the shipped delta (no repair floods run)
        and the epoch commits with the same changed/removed/payload values
        the leader committed, so answers, counters and epoch stay
        bit-identical to a replica that re-ran the batch.  A delta for the
        current epoch is a no-op (the leader's batch did not commit).
        """
        if delta.epoch == self._epoch:
            return
        if delta.epoch != self._epoch + 1:
            raise QueryError(
                f"index delta for epoch {delta.epoch} cannot apply at epoch "
                f"{self._epoch} — replicas diverged"
            )
        start = _clock()
        self._voronoi.apply_remote_delta(delta)
        elapsed = _clock() - start
        self.delta_apply_seconds += elapsed
        _DELTA_APPLY_SECONDS.observe(elapsed)
        _TRACER.add("delta.apply", start, elapsed, metric="road")
        self._commit_epoch(
            frozenset(delta.changed), delta.deleted_indexes, payload=delta.payload
        )
