"""A multi-query moving-kNN server for road networks.

The road-network counterpart of :class:`repro.core.server.MovingKNNServer`:
one server answers *many* concurrent moving kNN queries over the same
road-side data set.

* one shared, incrementally maintained
  :class:`~repro.roadnet.network_voronoi.NetworkVoronoiDiagram` (the
  expensive structure — a whole-graph multi-source Dijkstra to build) serves
  every query,
* each registered query gets its own :class:`INSRoadProcessor` client state
  (answer, prefetched set, guard set, Theorem 2 sub-network) with its own
  ``k``, ``ρ`` and validation mode,
* data-object updates are applied once to the shared diagram — a *local*
  repair flood, not a rebuild — and the repair's delta (the objects whose
  neighbour sets changed) is pushed to every registered query by flag,
* :meth:`MovingRoadKNNServer.batch_update` applies a whole burst of inserts,
  moves and deletes as one *epoch*: one diagram patch (or, for very large
  bursts, one rebuild), one invalidation round.

Updates are cheap on both sides of the interface.  Server-side, the repair
touches only the cells around the updated object.  Client-side, processors
share the diagram's live vertex-assignment view, so an update never copies
the n-object list into each of the (possibly thousands of) registered
queries — they accumulate the delta and settle it lazily on their next
timestamp: a removal inside their prefetched set forces one retrieval, a
delta elsewhere in their held pool refreshes I(R) from the repaired diagram
(a few dictionary unions), and a delta outside their pool costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.core.ins_road import INSRoadProcessor
from repro.core.objects import QueryResult
from repro.core.stats import ProcessorStats
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation
from repro.roadnet.network_voronoi import NetworkVoronoiDiagram
from repro.roadnet.shortest_path import SearchStats


@dataclass(frozen=True)
class RegisteredRoadQuery:
    """Bookkeeping record of one registered moving road query."""

    query_id: int
    k: int
    rho: float
    validation_mode: str
    processor: INSRoadProcessor


@dataclass(frozen=True)
class RoadBatchUpdateResult:
    """Outcome of one :meth:`MovingRoadKNNServer.batch_update` epoch.

    Attributes:
        new_indexes: object indexes assigned to the inserted objects, in
            input order.
        deleted_indexes: object indexes that were actually deleted.
        changed_objects: surviving objects whose Voronoi neighbour sets
            changed (the delta pushed to the registered queries).
        epoch: the data epoch after applying the batch (monotonically
            increasing; one step per mutation batch, however large).
    """

    new_indexes: Tuple[int, ...]
    deleted_indexes: Tuple[int, ...]
    changed_objects: FrozenSet[int]
    epoch: int


class MovingRoadKNNServer:
    """Serve many concurrent moving kNN queries over one road-side data set.

    Args:
        network: the road network shared by every query.
        object_vertices: initial vertex of each data object.
        maintenance: update-maintenance mode of the shared network Voronoi
            diagram (``"incremental"`` or ``"rebuild"``; see
            :class:`NetworkVoronoiDiagram`).
        stats: optional search-effort accumulator shared with the diagram's
            construction and repairs.
    """

    def __init__(
        self,
        network: RoadNetwork,
        object_vertices: Sequence[int],
        maintenance: str = "incremental",
        stats: Optional[SearchStats] = None,
    ):
        self._network = network
        self._search_stats = stats if stats is not None else SearchStats()
        self._voronoi = NetworkVoronoiDiagram(
            network, list(object_vertices), self._search_stats, maintenance=maintenance
        )
        self._queries: Dict[int, RegisteredRoadQuery] = {}
        self._next_query_id = 0
        self._epoch = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        """The shared road network."""
        return self._network

    @property
    def voronoi(self) -> NetworkVoronoiDiagram:
        """The shared server-side network Voronoi diagram."""
        return self._voronoi

    @property
    def search_stats(self) -> SearchStats:
        """Search effort spent building and repairing the shared diagram."""
        return self._search_stats

    @property
    def object_count(self) -> int:
        """Number of active data objects."""
        return self._voronoi.object_count()

    @property
    def query_count(self) -> int:
        """Number of currently registered queries."""
        return len(self._queries)

    @property
    def epoch(self) -> int:
        """The current data epoch.

        Incremented once per mutation batch (a single insert/move/delete
        counts as a batch of one), so clients can cheaply detect whether
        the data set changed since they last looked.
        """
        return self._epoch

    def query_ids(self) -> List[int]:
        """Identifiers of the registered queries."""
        return list(self._queries)

    def __iter__(self) -> Iterator[RegisteredRoadQuery]:
        return iter(self._queries.values())

    def object_vertex(self, index: int) -> int:
        """The vertex data object ``index`` currently sits on."""
        return self._voronoi.object_vertex(index)

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------
    def register_query(
        self,
        position: NetworkLocation,
        k: int,
        rho: float = 1.6,
        validation_mode: str = "restricted",
    ) -> int:
        """Register a new moving query and compute its first answer.

        Returns the query identifier used for subsequent position updates.
        """
        processor = INSRoadProcessor(
            self._network,
            self._voronoi.vertex_assignments,
            k,
            rho=rho,
            validation_mode=validation_mode,
            voronoi=self._voronoi,
        )
        # Initialize before registering: a failing first answer (bad
        # location, unreachable region) must not leave a zombie query
        # behind that inflates counts and receives deltas forever.
        processor.initialize(position)
        query_id = self._next_query_id
        self._next_query_id += 1
        self._queries[query_id] = RegisteredRoadQuery(
            query_id=query_id,
            k=k,
            rho=rho,
            validation_mode=validation_mode,
            processor=processor,
        )
        return query_id

    def unregister_query(self, query_id: int) -> None:
        """Remove a query (raises QueryError when it does not exist)."""
        if query_id not in self._queries:
            raise QueryError(f"unknown query {query_id}")
        del self._queries[query_id]

    def update_position(self, query_id: int, position: NetworkLocation) -> QueryResult:
        """Advance one query to its next position and return its answer."""
        if query_id not in self._queries:
            raise QueryError(f"unknown query {query_id}")
        return self._queries[query_id].processor.update(position)

    def answer(self, query_id: int) -> QueryResult:
        """Re-answer a query at its current position without moving it.

        Useful right after a data-object update when the client wants the
        refreshed result before its next movement.
        """
        if query_id not in self._queries:
            raise QueryError(f"unknown query {query_id}")
        processor = self._queries[query_id].processor
        if processor.last_position is None:
            raise QueryError(f"query {query_id} has no known position")
        return processor.update(processor.last_position)

    # ------------------------------------------------------------------
    # Data-object updates
    # ------------------------------------------------------------------
    def insert_object(self, vertex: int) -> int:
        """Insert a data object at ``vertex``; returns its object index.

        The shared diagram absorbs the insert with a local repair flood and
        every registered query receives the repair delta by flag — no
        per-query state is copied.
        """
        index, changed = self._voronoi.insert_object(vertex)
        self._epoch += 1
        self._push_delta(changed, ())
        return index

    def delete_object(self, index: int) -> bool:
        """Delete data object ``index`` (returns False when already gone).

        Raises:
            QueryError: when the deletion would leave fewer objects than
                some registered query's ``k`` requires — failing loudly at
                the mutation instead of at that query's next timestamp.
        """
        if not self._voronoi.is_active(index):
            return False
        self._check_population(self._voronoi.object_count() - 1)
        changed = self._voronoi.remove_object(index)
        self._epoch += 1
        self._push_delta(changed, (index,))
        return True

    def move_object(self, index: int, vertex: int) -> FrozenSet[int]:
        """Move data object ``index`` to ``vertex``.

        Returns the set of objects whose neighbour sets changed (the moved
        object included), which is also the delta pushed to the queries.
        """
        changed = self._voronoi.move_object(index, vertex)
        if not changed:
            return frozenset()
        self._epoch += 1
        self._push_delta(changed, ())
        return frozenset(changed)

    def batch_update(
        self,
        inserts: Sequence[int] = (),
        deletes: Iterable[int] = (),
        moves: Iterable[Tuple[int, int]] = (),
    ) -> RoadBatchUpdateResult:
        """Apply a burst of object inserts, moves and deletes as one epoch.

        A heavy traffic stream batches its object updates; applying them
        together triggers one diagram patch (or, for very large bursts, one
        rebuild) and one invalidation round instead of one per object.

        Raises:
            QueryError: when the surviving population would be too small
                for some registered query's ``k``.
        """
        insert_list = list(inserts)
        delete_list = [index for index in set(deletes) if self._voronoi.is_active(index)]
        self._check_population(
            self._voronoi.object_count() + len(insert_list) - len(delete_list)
        )
        new_indexes, deleted, changed = self._voronoi.batch_update(
            insert_list, delete_list, moves
        )
        if new_indexes or deleted or changed:
            self._epoch += 1
            self._push_delta(changed, deleted)
        return RoadBatchUpdateResult(
            new_indexes=tuple(new_indexes),
            deleted_indexes=tuple(deleted),
            changed_objects=frozenset(changed),
            epoch=self._epoch,
        )

    def _check_population(self, resulting_count: int) -> None:
        """Reject a mutation that would starve a registered query.

        Every registered query needs ``k < population`` (one guard object
        must exist); checking at the mutation makes the violation fail at
        its cause instead of deep inside that query's next retrieval.
        """
        for registered in self._queries.values():
            if registered.k >= resulting_count:
                raise QueryError(
                    f"update would leave {resulting_count} data objects, too few "
                    f"for query {registered.query_id} with k={registered.k}"
                )

    def _push_delta(self, changed: Iterable[int], removed: Iterable[int]) -> None:
        """Shared-state invalidation: flag every query, copy nothing."""
        for registered in self._queries.values():
            registered.processor.notify_data_update(changed, removed)

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def aggregate_stats(self) -> ProcessorStats:
        """Sum of the cost counters of every registered query."""
        total = ProcessorStats()
        for registered in self._queries.values():
            total.merge(registered.processor.stats)
        return total

    def per_query_stats(self) -> Dict[int, ProcessorStats]:
        """Cost counters per registered query."""
        return {
            query_id: registered.processor.stats
            for query_id, registered in self._queries.items()
        }
