"""The abstract moving-kNN processor interface.

Every method compared in the evaluation — INS, the order-k safe-region
baseline, the V*-style baseline and the naive recomputation baseline, in both
Euclidean and road-network flavours — implements this interface, so the
simulation harness (:mod:`repro.simulation`) can drive them interchangeably.

A processor's lifecycle is::

    processor.initialize(first_position)     # returns the first QueryResult
    processor.update(next_position)          # one call per later timestamp
    processor.stats                          # cumulative cost counters

``initialize`` may be called again to restart the processor on a new
trajectory; doing so resets the internal answer state but keeps accumulating
statistics unless :meth:`MovingKNNProcessor.reset_stats` is called.
"""

from __future__ import annotations

import abc
from typing import Any, Generic, Optional, TypeVar

from repro.core.objects import QueryResult
from repro.core.stats import ProcessorStats

#: The position type: a Euclidean :class:`~repro.geometry.point.Point` or a
#: road-network :class:`~repro.roadnet.location.NetworkLocation`.
PositionT = TypeVar("PositionT")


class MovingKNNProcessor(abc.ABC, Generic[PositionT]):
    """Base class for all moving kNN query processors."""

    def __init__(self, k: int):
        self._k = k
        self._stats = ProcessorStats()
        self._timestamp = -1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of nearest neighbours maintained."""
        return self._k

    @property
    def stats(self) -> ProcessorStats:
        """Cumulative cost counters."""
        return self._stats

    @property
    def current_timestamp(self) -> int:
        """Index of the last processed timestamp (-1 before initialisation)."""
        return self._timestamp

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short method name used in reports (e.g. ``"INS"`` or ``"V*"``)."""

    def reset_stats(self) -> None:
        """Zero the cost counters (does not touch the answer state)."""
        self._stats = ProcessorStats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialize(self, position: PositionT) -> QueryResult:
        """Start (or restart) the query at ``position``.

        Returns the first :class:`~repro.core.objects.QueryResult`.
        """
        self._timestamp = 0
        self._stats.timestamps += 1
        return self._initialize(position)

    def update(self, position: PositionT) -> QueryResult:
        """Advance the query to ``position`` (one timestamp later).

        Raises:
            RuntimeError: when called before :meth:`initialize`.
        """
        if self._timestamp < 0:
            raise RuntimeError("update() called before initialize()")
        self._timestamp += 1
        self._stats.timestamps += 1
        return self._update(position)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _initialize(self, position: PositionT) -> QueryResult:
        """Compute the first answer and build the guard structure."""

    @abc.abstractmethod
    def _update(self, position: PositionT) -> QueryResult:
        """Validate (and if needed update) the answer for a new position."""
