"""Cost accounting for moving-kNN processors and servers.

The evaluation (EXPERIMENTS.md) compares methods along the axes the paper's
introduction identifies: construction overhead, validation overhead,
recomputation frequency and client/server communication.  Every processor
owns a :class:`ProcessorStats` instance and increments it as it works; the
simulation harness reads it out after a run.

:class:`CommunicationStats` makes the paper's *headline* metric — messages
and objects shipped over the wire — a first-class quantity.  The serving
engine accounts every client/server exchange into one (per query and in
aggregate): registrations, position updates that had to contact the server,
the data-update stream, the per-epoch invalidation notifications and
session teardown.  The ``repro.service`` message layer
(:class:`~repro.service.messages.PositionUpdate`,
:class:`~repro.service.messages.KNNResponse`,
:class:`~repro.service.messages.UpdateBatch`) reports its payloads in the
same units, so the counters are testably equal whether a workload is driven
through :class:`~repro.service.session.Session` handles or through the raw
server API.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.obs.clock import clock as _clock


@dataclass
class CommunicationStats:
    """Messages and data objects exchanged between clients and the server.

    The INSQ system's stated goal is minimal communication cost, so the
    serving engine counts every exchange explicitly instead of leaving the
    number to be estimated from retrieval counters after a run.  Directions
    are named from the client's point of view:

    Attributes:
        uplink_messages: client → server messages (query registration,
            position updates that had to contact the server, object-update
            batches from the data-owner stream, session teardown).
        uplink_objects: object states carried by uplink messages (the
            insert/delete/move records of the data-update stream; query
            positions are not data objects and count as payload 0).
        downlink_messages: server → client messages (retrieval responses
            and the per-epoch invalidation notifications pushed to every
            registered query).
        downlink_objects: data objects carried by downlink payloads — the
            paper's communication-cost proxy (``|R| + |I(R)|`` per
            retrieval, plus incremental fetches).
        uplink_bytes: bytes actually sent client → server, as measured by
            the ``repro.transport`` wire layer (its codec's ``wire_size``
            is exact, so measured and predicted bytes agree).  Stays 0 for
            in-process serving, where no bytes cross a boundary.
        downlink_bytes: bytes actually sent server → client (same source).
    """

    uplink_messages: int = 0
    uplink_objects: int = 0
    downlink_messages: int = 0
    downlink_objects: int = 0
    uplink_bytes: int = 0
    downlink_bytes: int = 0

    @property
    def messages(self) -> int:
        """Total messages exchanged in either direction."""
        return self.uplink_messages + self.downlink_messages

    @property
    def objects_transmitted(self) -> int:
        """Total object states shipped over the wire in either direction."""
        return self.uplink_objects + self.downlink_objects

    @property
    def bytes_transmitted(self) -> int:
        """Total wire bytes in either direction (0 for in-process serving)."""
        return self.uplink_bytes + self.downlink_bytes

    def merge(self, other: "CommunicationStats") -> None:
        """Accumulate another stats object into this one."""
        self.uplink_messages += other.uplink_messages
        self.uplink_objects += other.uplink_objects
        self.downlink_messages += other.downlink_messages
        self.downlink_objects += other.downlink_objects
        self.uplink_bytes += other.uplink_bytes
        self.downlink_bytes += other.downlink_bytes

    def snapshot(self) -> "CommunicationStats":
        """An independent copy (for before/after deltas around one call)."""
        return CommunicationStats(
            uplink_messages=self.uplink_messages,
            uplink_objects=self.uplink_objects,
            downlink_messages=self.downlink_messages,
            downlink_objects=self.downlink_objects,
            uplink_bytes=self.uplink_bytes,
            downlink_bytes=self.downlink_bytes,
        )

    def as_dict(self) -> Dict[str, int]:
        """A plain dictionary of every counter and total (for reports)."""
        return {
            "uplink_messages": self.uplink_messages,
            "uplink_objects": self.uplink_objects,
            "downlink_messages": self.downlink_messages,
            "downlink_objects": self.downlink_objects,
            "uplink_bytes": self.uplink_bytes,
            "downlink_bytes": self.downlink_bytes,
            "messages": self.messages,
            "objects_transmitted": self.objects_transmitted,
            "bytes_transmitted": self.bytes_transmitted,
        }


@dataclass
class ProcessorStats:
    """Mutable cost counters for one processor over one simulation run.

    Attributes:
        timestamps: number of timestamps processed (including the first).
        validations: number of validation checks performed.
        local_reorders: answer changes composed purely from client-held data.
        incremental_updates: updates that fetched a small amount of data
            (counted separately from full recomputations).
        full_recomputations: full answer + guard recomputations at the server.
        ins_refreshes: guard-set refreshes triggered by data-object updates
            that were absorbed from diagram deltas (no kNN recomputation).
        absorbed_updates: data-update epochs whose delta missed the client's
            held pool entirely and therefore cost the client nothing (the
            free case of the delta-scoped invalidation contract).
        transmitted_objects: total data objects sent from server to client
            (the paper's communication cost proxy).
        distance_computations: point-to-point (or network) distance
            evaluations performed by the client for validation and reordering.
        index_node_accesses: R-tree / index nodes touched by server-side
            retrievals.
        settled_vertices: Dijkstra-settled vertices (road-network mode only).
        construction_seconds: wall-clock time spent building guard structures
            (safe regions, INS sets, candidate lists).
        validation_seconds: wall-clock time spent checking validity at each
            timestamp.
        precomputation_seconds: offline, query-independent preparation time
            (building the R-tree / VoR-tree / Voronoi diagrams); reported
            separately because the paper treats it as a one-off data-set
            preprocessing cost shared by all queries.
        maintenance_seconds: server-side wall-clock time spent applying
            data-update epochs to the live index (re-running the geometry:
            the maintenance leader's cost in replicated serving).
        delta_apply_seconds: server-side wall-clock time spent applying
            *shipped* index repair deltas instead of re-running maintenance
            (the read-replica's cost under ``replication="delta"``).
    """

    timestamps: int = 0
    validations: int = 0
    local_reorders: int = 0
    incremental_updates: int = 0
    full_recomputations: int = 0
    ins_refreshes: int = 0
    absorbed_updates: int = 0
    transmitted_objects: int = 0
    distance_computations: int = 0
    index_node_accesses: int = 0
    settled_vertices: int = 0
    construction_seconds: float = 0.0
    validation_seconds: float = 0.0
    precomputation_seconds: float = 0.0
    maintenance_seconds: float = 0.0
    delta_apply_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def communication_events(self) -> int:
        """Number of timestamps at which any server communication happened."""
        return self.incremental_updates + self.full_recomputations

    @property
    def recomputation_rate(self) -> float:
        """Full recomputations per processed timestamp."""
        return self.full_recomputations / self.timestamps if self.timestamps else 0.0

    @property
    def total_seconds(self) -> float:
        """Total measured processing time (construction + validation)."""
        return self.construction_seconds + self.validation_seconds

    # ------------------------------------------------------------------
    # Updating helpers
    # ------------------------------------------------------------------
    @contextmanager
    def time_construction(self) -> Iterator[None]:
        """Context manager adding the elapsed time to ``construction_seconds``."""
        start = _clock()
        try:
            yield
        finally:
            self.construction_seconds += _clock() - start

    @contextmanager
    def time_validation(self) -> Iterator[None]:
        """Context manager adding the elapsed time to ``validation_seconds``."""
        start = _clock()
        try:
            yield
        finally:
            self.validation_seconds += _clock() - start

    @contextmanager
    def time_precomputation(self) -> Iterator[None]:
        """Context manager adding the elapsed time to ``precomputation_seconds``."""
        start = _clock()
        try:
            yield
        finally:
            self.precomputation_seconds += _clock() - start

    def merge(self, other: "ProcessorStats") -> None:
        """Accumulate another stats object into this one (for sweeps)."""
        self.timestamps += other.timestamps
        self.validations += other.validations
        self.local_reorders += other.local_reorders
        self.incremental_updates += other.incremental_updates
        self.full_recomputations += other.full_recomputations
        self.ins_refreshes += other.ins_refreshes
        self.absorbed_updates += other.absorbed_updates
        self.transmitted_objects += other.transmitted_objects
        self.distance_computations += other.distance_computations
        self.index_node_accesses += other.index_node_accesses
        self.settled_vertices += other.settled_vertices
        self.construction_seconds += other.construction_seconds
        self.validation_seconds += other.validation_seconds
        self.precomputation_seconds += other.precomputation_seconds
        self.maintenance_seconds += other.maintenance_seconds
        self.delta_apply_seconds += other.delta_apply_seconds

    def as_dict(self) -> Dict[str, float]:
        """A plain dictionary of every counter and derived rate (for reports)."""
        return {
            "timestamps": self.timestamps,
            "validations": self.validations,
            "local_reorders": self.local_reorders,
            "incremental_updates": self.incremental_updates,
            "full_recomputations": self.full_recomputations,
            "ins_refreshes": self.ins_refreshes,
            "absorbed_updates": self.absorbed_updates,
            "communication_events": self.communication_events,
            "transmitted_objects": self.transmitted_objects,
            "distance_computations": self.distance_computations,
            "index_node_accesses": self.index_node_accesses,
            "settled_vertices": self.settled_vertices,
            "construction_seconds": self.construction_seconds,
            "validation_seconds": self.validation_seconds,
            "precomputation_seconds": self.precomputation_seconds,
            "maintenance_seconds": self.maintenance_seconds,
            "delta_apply_seconds": self.delta_apply_seconds,
            "total_seconds": self.total_seconds,
            "recomputation_rate": self.recomputation_rate,
        }
