"""The generic multi-query serving engine.

The paper's system is a *server*: one shared, expensive index answers many
concurrent moving kNN queries while the underlying data objects churn.  The
Euclidean :class:`~repro.core.server.MovingKNNServer` and the road-network
:class:`~repro.core.road_server.MovingRoadKNNServer` are two metric-specific
instances of the same machine, and this module is that machine:

* **query lifecycle** — registration hands out monotonically increasing
  query identifiers; every registered query owns one processor (answer,
  prefetched set, guard set) initialised before it is admitted, so a
  failing first answer never leaves a zombie query behind;
* **epoch counter** — every mutation batch (a single insert/delete/move
  counts as a batch of one) advances one data epoch, so clients can cheaply
  detect whether the data set changed since they last looked;
* **invalidation dispatch** — the engine pushes each epoch's *repair delta*
  (the objects whose Voronoi neighbour sets changed, plus the removed
  objects) to every registered processor, which settles it lazily on its
  next timestamp: a removal inside its prefetched set costs one retrieval,
  a delta elsewhere in its held pool an I(R)-only refresh, and a delta
  outside its pool nothing at all.  The pre-delta behaviour — flag every
  query for a full refresh on every epoch, regardless of where the update
  landed — survives as the ``"flag"`` fallback mode and as the oracle of
  the randomized delta-equivalence tests;
* **population guard** — a mutation that would leave fewer objects than
  some registered query's ``k`` requires fails loudly at the mutation
  instead of deep inside that query's next retrieval;
* **aggregate statistics** — cost counters summed across queries for
  capacity planning;
* **communication accounting** — every client/server exchange is counted
  into a :class:`~repro.core.stats.CommunicationStats`, per query and in
  aggregate, so the paper's headline metric (messages and objects shipped
  over the wire) is measured at the point where the exchanges happen
  instead of estimated from retrieval counters afterwards.  A registration
  costs one uplink request plus the initial retrieval response; a position
  update costs one round trip per server contact it actually needed (a
  locally validated timestamp is free); a mutation batch costs one uplink
  message carrying its object records plus one invalidation notification
  per registered query; closing a query costs one uplink message.  The
  ``repro.service`` layer reports the same numbers through its typed
  message protocol — and because the accounting lives here, a workload
  driven through raw server calls produces identical counters.

Subclasses provide the metric-specific 20%: constructing the shared index,
building a processor for a new query, and translating object mutations into
index repairs that report their deltas.
"""

from __future__ import annotations

import abc
import threading
from typing import (
    Callable,
    Dict,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    TypeVar,
)

from repro.errors import ConfigurationError, QueryError
from repro.core.objects import QueryResult
from repro.core.stats import CommunicationStats, ProcessorStats
from repro.obs.metrics import counter as _obs_counter, enabled as _obs_enabled

PositionT = TypeVar("PositionT")

# Engine-level observability: the epoch counter, and per-outcome
# retrieval counters derived from the ProcessorStats deltas the update
# already computed — reading them adds nothing to the serving work.
_EPOCHS_TOTAL = _obs_counter("insq_epochs_total")

#: ProcessorStats field → outcome label of ``insq_retrievals_total``.
_OUTCOME_FIELDS = (
    ("absorbed_updates", "absorbed"),
    ("ins_refreshes", "refreshed"),
    ("full_recomputations", "recomputed"),
    ("incremental_updates", "incremental"),
    ("local_reorders", "reordered"),
    ("validations", "validated"),
)
_OUTCOME_COUNTERS = tuple(
    _obs_counter("insq_retrievals_total", outcome=label)
    for _, label in _OUTCOME_FIELDS
)


class ServableProcessor(Protocol[PositionT]):
    """What the engine needs from a registered query's processor."""

    def update(self, position: PositionT) -> QueryResult: ...

    def notify_data_update(
        self, changed: Iterable[int], removed: Iterable[int]
    ) -> None: ...

    def invalidate(self) -> None: ...

    @property
    def stats(self) -> ProcessorStats: ...

    @property
    def last_position(self) -> Optional[PositionT]: ...


#: A registration record: any object exposing ``query_id``, ``k`` and a
#: ``processor`` satisfying :class:`ServableProcessor` (the servers use
#: frozen dataclasses).
RecordT = TypeVar("RecordT")


class ServingEngine(abc.ABC, Generic[PositionT, RecordT]):
    """Generic moving-query serving engine (see the module docstring).

    Args:
        invalidation: how data-object updates reach the registered queries.
            ``"delta"`` (default) pushes the repair delta so each query pays
            only for updates that touched its held pool; ``"flag"`` restores
            the blanket pre-delta contract (every query refreshes fully on
            every epoch), kept as a fallback and as the equivalence oracle.
    """

    INVALIDATION_MODES = ("delta", "flag")

    #: Server-side wall-clock time spent applying update epochs to the live
    #: index (the maintenance leader's cost) and applying shipped repair
    #: deltas (the read-replica's cost).  Class-level defaults so engines
    #: pickled before these timers existed keep restoring cleanly; the
    #: metric servers accumulate onto instance attributes.
    maintenance_seconds: float = 0.0
    delta_apply_seconds: float = 0.0

    def __init__(self, invalidation: str = "delta"):
        if invalidation not in self.INVALIDATION_MODES:
            raise ConfigurationError(
                f"invalidation must be one of {self.INVALIDATION_MODES}, got {invalidation!r}"
            )
        self._invalidation = invalidation
        self._queries: Dict[int, RecordT] = {}
        self._next_query_id = 0
        self._epoch = 0
        # Communication accounting: one aggregate (it keeps the history of
        # unregistered queries) plus one live record per registered query.
        # The lock keeps the counters exact when a ShardedDispatcher
        # advances different queries from different worker threads.
        self._communication = CommunicationStats()
        self._comm_by_query: Dict[int, CommunicationStats] = {}
        self._comm_by_kind: Dict[str, CommunicationStats] = {}
        self._comm_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle the full serving state (for ``repro.durability`` snapshots).

        Everything the engine holds — index, registered processors with
        their prefetched/guard sets, epoch, communication counters — is
        picklable except the accounting lock, which is stripped here and
        recreated on restore.  A restored engine therefore continues
        *bit-identically*: same answers, same counters, same future query
        id assignments.
        """
        state = self.__dict__.copy()
        state["_comm_lock"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Snapshots taken before per-kind accounting existed restore with an
        # empty kind ledger; it repopulates as exchanges are billed.
        self.__dict__.setdefault("_comm_by_kind", {})
        self._comm_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def invalidation(self) -> str:
        """The invalidation mode (``"delta"`` or ``"flag"``)."""
        return self._invalidation

    @property
    @abc.abstractmethod
    def object_count(self) -> int:
        """Number of active data objects in the shared index."""

    @property
    def query_count(self) -> int:
        """Number of currently registered queries."""
        return len(self._queries)

    @property
    def epoch(self) -> int:
        """The current data epoch.

        Incremented once per mutation batch (a single object update counts
        as a batch of one), so clients can cheaply detect whether the data
        set changed since they last looked.
        """
        return self._epoch

    def query_ids(self) -> List[int]:
        """Identifiers of the registered queries (a snapshot list)."""
        return list(self._queries)

    def __iter__(self) -> Iterator[RecordT]:
        """Iterate over a *snapshot* of the registration records.

        Unregistering a query (or closing a :class:`~repro.service.session.
        Session`) while iterating must not raise ``RuntimeError: dictionary
        changed size during iteration``, so the records are copied out
        before iteration starts.
        """
        return iter(tuple(self._queries.values()))

    @property
    def communication(self) -> CommunicationStats:
        """Aggregate client/server communication over the engine's lifetime.

        Includes exchanges of queries that have since been unregistered.
        The returned object is the engine's live accumulator — read it or
        :meth:`~repro.core.stats.CommunicationStats.snapshot` it, do not
        mutate it.
        """
        return self._communication

    def communication_for(self, query_id: int) -> CommunicationStats:
        """Live communication record of one registered query."""
        if query_id not in self._comm_by_query:
            raise QueryError(f"unknown query {query_id}")
        return self._comm_by_query[query_id]

    def per_query_communication(self) -> Dict[int, CommunicationStats]:
        """Communication counters per registered query (snapshots)."""
        return {
            query_id: record.snapshot()
            for query_id, record in self._comm_by_query.items()
        }

    def communication_by_kind(self) -> Dict[str, CommunicationStats]:
        """Communication counters per query *kind* (snapshots).

        Buckets exchanges by the kind of the query they were billed to
        (``"knn"``, ``"influential"``, ``"region"``, ...).  Only per-query
        exchanges are bucketed: the mutation stream's uplink messages and
        exchanges billed after a query closed (e.g. its goodbye-ack bytes)
        belong to no kind and appear in the aggregate only.
        """
        with self._comm_lock:
            return {kind: record.snapshot() for kind, record in self._comm_by_kind.items()}

    def kind_for(self, query_id: int) -> str:
        """The registered query kind of ``query_id`` (``"knn"`` by default)."""
        if query_id not in self._queries:
            raise QueryError(f"unknown query {query_id}")
        return getattr(self._queries[query_id], "kind", "knn")

    def _kind_bucket(self, query_id: int) -> Optional[CommunicationStats]:
        """The per-kind accumulator of a *registered* query (lock held)."""
        record = self._queries.get(query_id)
        if record is None:
            return None
        kind = getattr(record, "kind", "knn")
        bucket = self._comm_by_kind.get(kind)
        if bucket is None:
            bucket = self._comm_by_kind[kind] = CommunicationStats()
        return bucket

    def _account(
        self,
        query_id: Optional[int],
        uplink_messages: int = 0,
        uplink_objects: int = 0,
        downlink_messages: int = 0,
        downlink_objects: int = 0,
        uplink_bytes: int = 0,
        downlink_bytes: int = 0,
    ) -> None:
        """Add one exchange to the aggregate (and one query's) counters."""
        delta = CommunicationStats(
            uplink_messages=uplink_messages,
            uplink_objects=uplink_objects,
            downlink_messages=downlink_messages,
            downlink_objects=downlink_objects,
            uplink_bytes=uplink_bytes,
            downlink_bytes=downlink_bytes,
        )
        with self._comm_lock:
            self._communication.merge(delta)
            if query_id is not None:
                record = self._comm_by_query.get(query_id)
                if record is not None:
                    record.merge(delta)
                bucket = self._kind_bucket(query_id)
                if bucket is not None:
                    bucket.merge(delta)

    def account_wire_bytes(
        self,
        query_id: Optional[int],
        uplink_bytes: int = 0,
        downlink_bytes: int = 0,
    ) -> None:
        """Bill wire bytes measured by a transport onto the counters.

        The engine itself counts *messages* and *object states* — the units
        the in-process and over-the-wire surfaces share.  When a
        ``repro.transport`` server actually serialises those messages, it
        reports the measured frame sizes here so the byte counters sit
        alongside the message/object counts they correspond to.  Billing to
        a ``query_id`` that has already been unregistered (e.g. the bytes
        of the final close acknowledgement) silently lands in the aggregate
        only, mirroring how the goodbye message itself is accounted.
        """
        self._account(
            query_id, uplink_bytes=uplink_bytes, downlink_bytes=downlink_bytes
        )

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------
    def _admit(self, make_record: Callable[[int], RecordT]) -> int:
        """Register an already-initialised query and return its identifier.

        ``make_record`` receives the allocated query id and returns the
        registration record (which must expose ``processor`` and ``k``).
        Callers initialise the processor *before* admitting it, so a failing
        first answer cannot leave a zombie query behind that inflates counts
        and receives deltas forever.
        """
        query_id = self._next_query_id
        self._next_query_id += 1
        record = make_record(query_id)
        self._queries[query_id] = record
        self._comm_by_query[query_id] = CommunicationStats()
        # Registration communication: one uplink request, and the initial
        # retrieval the processor performed while initialising (its stats
        # already carry the round trips and the |R| + |I(R)| payload).
        stats = record.processor.stats
        self._account(
            query_id,
            uplink_messages=1,
            downlink_messages=max(1, stats.communication_events),
            downlink_objects=stats.transmitted_objects,
        )
        return query_id

    def unregister_query(self, query_id: int) -> None:
        """Remove a query (raises QueryError when it does not exist).

        The goodbye message is the query's last accounted exchange; its
        communication history stays in the engine-wide aggregate.
        """
        if query_id not in self._queries:
            raise QueryError(f"unknown query {query_id}")
        self._account(query_id, uplink_messages=1)
        del self._queries[query_id]
        del self._comm_by_query[query_id]

    def _processor(self, query_id: int) -> ServableProcessor[PositionT]:
        if query_id not in self._queries:
            raise QueryError(f"unknown query {query_id}")
        return self._queries[query_id].processor

    def update_position(self, query_id: int, position: PositionT) -> QueryResult:
        """Advance one query to its next position and return its answer.

        Communication is accounted from what the processor actually did:
        each server contact (a retrieval or an incremental fetch) is one
        uplink request plus one downlink response carrying the fetched
        objects; a timestamp validated from client-held state exchanges
        nothing.
        """
        processor = self._processor(query_id)
        return self._accounted_update(query_id, processor, position)

    def answer(self, query_id: int) -> QueryResult:
        """Re-answer a query at its current position without moving it.

        Useful right after a data-object update when the client wants the
        refreshed result before its next movement.
        """
        processor = self._processor(query_id)
        if processor.last_position is None:
            raise QueryError(f"query {query_id} has no known position")
        return self._accounted_update(query_id, processor, processor.last_position)

    def _accounted_update(
        self,
        query_id: int,
        processor: ServableProcessor[PositionT],
        position: PositionT,
    ) -> QueryResult:
        stats = processor.stats
        contacts_before = stats.communication_events
        objects_before = stats.transmitted_objects
        observing = _obs_enabled()
        if observing:
            outcomes_before = tuple(
                getattr(stats, field) for field, _ in _OUTCOME_FIELDS
            )
        result = processor.update(position)
        round_trips = stats.communication_events - contacts_before
        if round_trips:
            self._account(
                query_id,
                uplink_messages=round_trips,
                downlink_messages=round_trips,
                downlink_objects=stats.transmitted_objects - objects_before,
            )
        if observing:
            for index, (field, _) in enumerate(_OUTCOME_FIELDS):
                delta = getattr(stats, field) - outcomes_before[index]
                if delta:
                    _OUTCOME_COUNTERS[index].inc(delta)
        return result

    # ------------------------------------------------------------------
    # Epoch orchestration
    # ------------------------------------------------------------------
    @staticmethod
    def _dedup_active_deletes(
        deletes: Iterable[int], is_active: Callable[[int], bool]
    ) -> List[int]:
        """Filter a deletion list to active objects, deduped in input order.

        Shared by both servers' ``batch_update`` so the population guard
        counts each doomed object once and ``deleted_indexes`` comes back
        in the order the caller asked for.
        """
        seen = set()
        delete_list: List[int] = []
        for index in deletes:
            if is_active(index) and index not in seen:
                seen.add(index)
                delete_list.append(index)
        return delete_list

    def _check_population(self, resulting_count: int) -> None:
        """Reject a mutation that would starve a registered query.

        Every registered query needs ``k < population`` (one guard object
        must exist); checking at the mutation makes the violation fail at
        its cause instead of deep inside that query's next retrieval.
        """
        for registered in self._queries.values():
            if registered.k >= resulting_count:
                raise QueryError(
                    f"update would leave {resulting_count} data objects, too few "
                    f"for query {registered.query_id} with k={registered.k}"
                )

    def _commit_epoch(
        self, changed: Iterable[int], removed: Iterable[int] = (), payload: int = 1
    ) -> int:
        """Advance the data epoch and dispatch the invalidation round.

        In ``"delta"`` mode every registered processor receives the repair
        delta and settles it lazily (shared-state invalidation: nothing is
        copied).  In ``"flag"`` mode the delta is discarded and every
        processor is forced to refresh fully on its next timestamp.
        Returns the new epoch number.

        Communication: the mutation batch arrives as one uplink message
        carrying ``payload`` object records (the insert/delete/move stream
        from the data owners), and the server pushes one invalidation
        notification to every registered query — the ids it carries are not
        object states, so the notification payload is zero; the objects a
        query then fetches are charged to its own next update.
        """
        self._epoch += 1
        _EPOCHS_TOTAL.inc()
        if self._invalidation == "flag":
            for registered in self._queries.values():
                registered.processor.invalidate()
        else:
            for registered in self._queries.values():
                registered.processor.notify_data_update(changed, removed)
        with self._comm_lock:
            self._communication.uplink_messages += 1
            self._communication.uplink_objects += payload
            self._communication.downlink_messages += len(self._queries)
            for query_id, record in self._comm_by_query.items():
                record.downlink_messages += 1
                bucket = self._kind_bucket(query_id)
                if bucket is not None:
                    bucket.downlink_messages += 1
        return self._epoch

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def aggregate_stats(self) -> ProcessorStats:
        """Sum of the cost counters of every registered query.

        The engine's own server-side maintenance timers ride along in the
        ``maintenance_seconds`` / ``delta_apply_seconds`` fields (they are
        per-engine, not per-query, so they are injected once here rather
        than merged from the processors).
        """
        total = ProcessorStats()
        for registered in self._queries.values():
            total.merge(registered.processor.stats)
        total.maintenance_seconds += self.maintenance_seconds
        total.delta_apply_seconds += self.delta_apply_seconds
        return total

    def stats_for(self, query_id: int) -> ProcessorStats:
        """Cost counters of one registered query."""
        return self._processor(query_id).stats

    def per_query_stats(self) -> Dict[int, ProcessorStats]:
        """Cost counters per registered query."""
        return {
            query_id: registered.processor.stats
            for query_id, registered in self._queries.items()
        }
