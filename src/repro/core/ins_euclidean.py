"""The INS moving-kNN processor in the 2-D Euclidean plane (Section III).

Protocol reproduced from the paper:

1. **Initial computation.**  When the query is issued at position ``q`` the
   server retrieves the ``⌊ρk⌋`` nearest objects ``R`` (ρ is the *prefetch
   ratio*) from the VoR-tree together with their influential neighbour set
   ``I(R)`` (assembled from the precomputed order-1 Voronoi neighbour lists).
   The top ``k`` objects of ``R`` are the reported kNN set; the rest of
   ``R`` plus ``I(R)`` act as the safe guarding objects (the IS).

2. **Validation** (Section III-A).  At every new position the client finds
   the farthest current kNN member (``r.delete``) and the nearest guard
   object (``r.candidate``).  The kNN set is still valid while
   ``d(q, r.delete) <= d(q, r.candidate)``; this costs one distance
   evaluation per held object — linear in k.

3. **Update** (Section III-B).  When validation fails the client first tries
   to recompose the kNN set from the prefetched set ``R`` alone (case (ii),
   "the new kNN set is still in R"): the candidate answer is the top-k of
   ``R`` by current distance, accepted only if it passes the same IS
   validation — which is sound because ``(R ∪ I(R)) \\ O'`` is a superset of
   ``INS(O')`` for any ``O' ⊆ R``.  A successful recomposition costs no
   communication.  Otherwise the new answer involves an object outside
   ``R`` and the server recomputes ``R`` and ``I(R)`` from scratch
   (case (ii) fallback / case (i) with an unknown neighbour list).

**Data-object updates** arrive through :meth:`INSProcessor.notify_data_update`
(the serving engine pushes the VoR-tree's repair deltas).  The processor
does not reconstruct anything eagerly — it accumulates the delta and
settles it on its next timestamp, exactly like the road-side
:class:`~repro.core.ins_road.INSRoadProcessor`:

* a removal inside the prefetched set R invalidates R, so the next
  timestamp pays one full retrieval;
* any other delta touching the held pool (R ∪ I(R)) only refreshes I(R)
  from the already-patched shared neighbour lists (a few set unions).  This
  is sound because the INS guarantee is a statement about the *current*
  diagram: validation against a freshly derived I(R) certifies the held kNN
  set against the current data set, whatever changed;
* a delta that leaves the pool untouched is absorbed for free: if an
  unseen object were among the true kNN it would, by the Voronoi chain
  property, be a neighbour of some held object — and then the delta would
  have touched the pool.

The pre-delta behaviour (every update forces a full retrieval) survives as
:meth:`INSProcessor.invalidate`, the engine's ``"flag"`` fallback mode.

Cost accounting: every retrieval transmits ``|R| + |I(R)|`` objects; every
validation and local recomposition counts its distance computations.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, QueryError
from repro.core.objects import QueryResult, UpdateAction
from repro.core.processor import MovingKNNProcessor
from repro.core.stats import ProcessorStats
from repro.geometry.point import Point
from repro.index.vortree import VoRTree


class INSProcessor(MovingKNNProcessor[Point]):
    """Influential-neighbour-set moving kNN processor (Euclidean space).

    Args:
        points: data-object positions; object ``i`` is ``points[i]``.
        k: number of nearest neighbours to maintain (``1 <= k < len(points)``).
        rho: prefetch ratio ρ ≥ 1.  ``⌊ρk⌋`` objects are retrieved per server
            round trip.  The paper's demo uses ρ = 1.6.
        vortree: optionally share a prebuilt VoR-tree between processors
            (e.g. across the parameter sweep of an experiment); when omitted
            one is built from ``points``.
        allow_incremental: enable the paper's case (i) optimisation — when
            the answer changes by a single object, compose the new kNN set
            from the existing one and fetch only that object's Voronoi
            neighbour list instead of recomputing R and I(R) from scratch.
            Disabled by default so the base protocol matches Section III
            exactly; experiment E8 measures its effect.
    """

    #: Maximum consecutive single-object swaps attempted before falling back
    #: to a full retrieval (a fast query can cross several order-k cells in
    #: one timestamp).
    MAX_INCREMENTAL_SWAPS = 8

    def __init__(
        self,
        points: Sequence[Point],
        k: int,
        rho: float = 1.6,
        vortree: Optional[VoRTree] = None,
        allow_incremental: bool = False,
    ):
        super().__init__(k)
        if k < 1:
            raise ConfigurationError("k must be at least 1")
        if k >= len(points):
            raise ConfigurationError(
                f"k={k} must be smaller than the number of data objects ({len(points)})"
            )
        if rho < 1.0:
            raise ConfigurationError("the prefetch ratio rho must be at least 1")
        self._rho = rho
        self._allow_incremental = allow_incremental
        with self._stats.time_precomputation():
            self._vortree = vortree if vortree is not None else VoRTree(list(points))
        # Cap the prefetch size by the *active* population (a shared tree
        # may already carry tombstones), not by the raw point count.
        population = len(self._vortree)
        if k >= population:
            raise ConfigurationError(
                f"k={k} must be smaller than the number of active data objects ({population})"
            )
        self._prefetch_count = min(max(int(rho * k), k), population - 1)
        # Live view of the server-side object positions: it grows as objects
        # are inserted, so data updates never copy the n-point list around.
        self._points: Sequence[Point] = self._vortree.positions
        # Client-side state.
        self._R: List[int] = []
        self._ins: Set[int] = set()
        self._knn: List[int] = []
        # Cached pool (R ∪ I(R)) and guard set (pool \ kNN); rebuilt only
        # when R / I(R) / the answer change, not on every timestamp.
        self._pool: Set[int] = set()
        self._guard: FrozenSet[int] = frozenset()
        # Per-member Voronoi neighbour lists (needed for incremental updates).
        self._neighbor_lists: Dict[int, Set[int]] = {}
        # Data-update delta accumulated since the last answer (pushed by the
        # serving engine); settled lazily on the next timestamp.
        self._state_stale = False
        self._force_refresh = False
        self._pending_changed: Set[int] = set()
        self._pending_removed: Set[int] = set()
        self._last_position: Optional[Point] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return "INS"

    @property
    def rho(self) -> float:
        """The prefetch ratio ρ."""
        return self._rho

    @property
    def prefetch_count(self) -> int:
        """The number of objects retrieved per server round trip (⌊ρk⌋)."""
        return self._prefetch_count

    @property
    def prefetched_set(self) -> List[int]:
        """The current prefetched set R (object indexes, nearest first at retrieval time)."""
        return list(self._R)

    @property
    def influential_set(self) -> Set[int]:
        """The current I(R)."""
        return set(self._ins)

    @property
    def guard_set(self) -> Set[int]:
        """The current safe guarding objects: I(R) ∪ R \\ kNN."""
        return set(self._guard)

    @property
    def vortree(self) -> VoRTree:
        """The server-side VoR-tree (shared across processors in sweeps)."""
        return self._vortree

    @property
    def allow_incremental(self) -> bool:
        """Whether case (i) single-object incremental updates are enabled."""
        return self._allow_incremental

    @property
    def state_stale(self) -> bool:
        """True when a data-update delta is pending for the next timestamp."""
        return self._state_stale

    @property
    def last_position(self) -> Optional[Point]:
        """The last query position processed (None before initialisation)."""
        return self._last_position

    # ------------------------------------------------------------------
    # Data-object updates (Section III, last paragraph)
    # ------------------------------------------------------------------
    def notify_data_update(
        self, changed: Iterable[int] = (), removed: Iterable[int] = ()
    ) -> None:
        """Record a VoR-tree repair delta; settled lazily on the next timestamp.

        Args:
            changed: objects whose Voronoi neighbour lists changed.
            removed: objects deleted from the data set.
        """
        self._pending_changed.update(changed)
        self._pending_removed.update(removed)
        self._state_stale = True

    def invalidate(self) -> None:
        """Blanket invalidation: force a full retrieval on the next timestamp.

        This is the pre-delta contract (every registered query refreshes on
        every epoch), kept as the serving engine's ``"flag"`` fallback mode
        and as the oracle of the delta-equivalence tests.
        """
        self._force_refresh = True
        self._state_stale = True

    def insert_object(self, point: Point) -> int:
        """Insert a new data object at ``point`` and return its object index.

        The server-side VoR-tree is updated incrementally and the repair
        delta is queued for the client-held answer, which settles it lazily
        on the next timestamp.  (``self._points`` is a live view of the
        tree's storage, so no position list is copied.)
        """
        with self._stats.time_construction():
            index, changed = self._vortree.insert(point)
        self.notify_data_update(changed)
        return index

    def delete_object(self, index: int) -> bool:
        """Delete data object ``index`` (returns False when it did not exist)."""
        with self._stats.time_construction():
            removed, changed = self._vortree.delete(index)
        if removed:
            self.notify_data_update(changed, (index,))
        return removed

    def _consume_data_updates(self, position: Point) -> Optional[QueryResult]:
        """Settle the accumulated data-update delta.

        Returns a full-recompute :class:`QueryResult` when the delta forced
        a retrieval, or None when the held state was refreshed (or
        untouched) and the normal validation flow should proceed.
        """
        changed = self._pending_changed
        removed = self._pending_removed
        force = self._force_refresh
        self._pending_changed = set()
        self._pending_removed = set()
        self._force_refresh = False
        self._state_stale = False
        if force or removed.intersection(self._R):
            # Blanket invalidation, or the prefetched set lost a member: R
            # no longer reflects the ⌊ρk⌋ nearest objects, recompute it.
            self._stats.validations += 1
            self._retrieve(position)
            distances = self._distances(position, self._knn)
            return QueryResult(
                timestamp=self.current_timestamp,
                knn=tuple(self._knn),
                knn_distances=tuple(distances),
                guard_objects=self._guard,
                action=UpdateAction.FULL_RECOMPUTE,
                was_valid=False,
            )
        if removed & self._ins or changed & self._pool:
            # The delta touched the held region: re-derive I(R) (and the
            # neighbour lists the incremental mode relies on) from the
            # already-patched shared tree — a few set unions, no kNN
            # recomputation.  The validation that follows certifies the
            # held answer against the fresh guard set, which is what makes
            # this refresh sound.
            with self._stats.time_construction():
                for member in changed.intersection(self._R):
                    self._neighbor_lists[member] = self._vortree.voronoi_neighbors(member)
                self._ins = self._vortree.influential_neighbor_set(self._R)
                self._stats.ins_refreshes += 1
                incoming = len(self._ins - self._pool)
                if incoming:
                    # New guard objects crossed the server-client boundary:
                    # charge them like a case-(i) incremental fetch so
                    # comm_events stays an honest round-trip count.
                    self._stats.transmitted_objects += incoming
                    self._stats.incremental_updates += 1
                self._refresh_cached_sets()
        else:
            # The delta missed the pool: every held neighbour list is
            # unchanged, so the guard set the next validation uses is
            # already the correct one.  Free.
            self._stats.absorbed_updates += 1
        return None

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def _initialize(self, position: Point) -> QueryResult:
        self._last_position = position
        self._state_stale = False
        self._force_refresh = False
        self._pending_changed = set()
        self._pending_removed = set()
        self._retrieve(position)
        distances = self._distances(position, self._knn)
        return QueryResult(
            timestamp=self.current_timestamp,
            knn=tuple(self._knn),
            knn_distances=tuple(distances),
            guard_objects=self._guard,
            action=UpdateAction.FULL_RECOMPUTE,
            was_valid=False,
        )

    def _update(self, position: Point) -> QueryResult:
        self._last_position = position
        if self._state_stale:
            # The data set changed since the last answer: settle the delta.
            forced = self._consume_data_updates(position)
            if forced is not None:
                return forced
        with self._stats.time_validation():
            self._stats.validations += 1
            pool_distances = self._pool_distances(position)
            valid = self._is_valid(pool_distances)
        if valid:
            distances = [pool_distances[index] for index in self._knn]
            return QueryResult(
                timestamp=self.current_timestamp,
                knn=tuple(self._knn),
                knn_distances=tuple(distances),
                guard_objects=self._guard,
                action=UpdateAction.NONE,
                was_valid=True,
            )
        action = self._perform_update(position, pool_distances)
        distances = self._distances(position, self._knn)
        return QueryResult(
            timestamp=self.current_timestamp,
            knn=tuple(self._knn),
            knn_distances=tuple(distances),
            guard_objects=self._guard,
            action=action,
            was_valid=False,
        )

    # ------------------------------------------------------------------
    # INS machinery
    # ------------------------------------------------------------------
    def _retrieve(self, position: Point) -> None:
        """Server round trip: recompute R, I(R) and the kNN set at ``position``."""
        with self._stats.time_construction():
            self._vortree.rtree.reset_counters()
            # Deletions since construction may have shrunk the population
            # below the configured prefetch size; shrink the request, but
            # never below k — if fewer than k objects remain, the VoR-tree
            # raises its loud QueryError rather than silently under-filling
            # the answer.
            count = max(self.k, min(self._prefetch_count, len(self._vortree)))
            nearest, ins = self._vortree.retrieve(position, count)
            self._stats.index_node_accesses += self._vortree.rtree.node_accesses
            self._R = nearest
            self._ins = ins
            self._knn = nearest[: self.k]
            self._neighbor_lists = {
                index: self._vortree.voronoi_neighbors(index) for index in self._R
            }
            self._stats.full_recomputations += 1
            self._stats.transmitted_objects += len(self._R) + len(self._ins)
            self._refresh_cached_sets()

    def _refresh_cached_sets(self) -> None:
        """Recompute the cached pool (R ∪ I(R)) and guard set (pool \\ kNN)."""
        self._pool = set(self._R) | self._ins
        self._guard = frozenset(self._pool.difference(self._knn))

    def _pool_distances(self, position: Point) -> Dict[int, float]:
        """Distances from ``position`` to every client-held object (R ∪ I(R))."""
        self._stats.distance_computations += len(self._pool)
        return {index: position.distance_to(self._points[index]) for index in self._pool}

    def _is_valid(self, pool_distances: Dict[int, float]) -> bool:
        """Section III-A validation: farthest kNN vs nearest guard object."""
        if not self._guard:
            return True
        farthest_knn = max(pool_distances[index] for index in self._knn)
        nearest_guard = min(pool_distances[index] for index in self._guard)
        return farthest_knn <= nearest_guard

    def _perform_update(self, position: Point, pool_distances: Dict[int, float]) -> UpdateAction:
        """Section III-B update: recompose from R when possible, else retrieve."""
        with self._stats.time_validation():
            candidate = heapq.nsmallest(
                self.k, self._R, key=lambda index: (pool_distances[index], index)
            )
            guard = self._pool.difference(candidate)
            farthest = max(pool_distances[index] for index in candidate)
            nearest_guard = min(pool_distances[index] for index in guard) if guard else math.inf
            if farthest <= nearest_guard:
                # Case (ii), first branch: the new kNN set is still inside R.
                self._knn = candidate
                self._guard = frozenset(guard)
                self._stats.local_reorders += 1
                return UpdateAction.LOCAL_REORDER
        if self._allow_incremental and self._incremental_update(position):
            return UpdateAction.INCREMENTAL
        # Case (i) with an unknown neighbour list or case (ii) fallback: the
        # answer involves an object outside R; recompute R and I(R).
        self._retrieve(position)
        return UpdateAction.FULL_RECOMPUTE

    def _incremental_update(self, position: Point) -> bool:
        """Case (i): compose the new answer by single-object swaps.

        Each swap replaces the farthest current member of R with the nearest
        guard object and fetches only that object's Voronoi neighbour list
        from the server.  The swap loop stops as soon as the recomposed
        answer passes the IS validation again (success) or after
        :data:`MAX_INCREMENTAL_SWAPS` swaps (failure — the caller falls back
        to a full retrieval).  Returns True on success.
        """
        saved_R = list(self._R)
        saved_lists = dict(self._neighbor_lists)
        saved_knn = list(self._knn)
        transmitted = 0
        for _ in range(self.MAX_INCREMENTAL_SWAPS):
            pool_distances = self._pool_distances(position)
            candidate_knn = heapq.nsmallest(
                self.k, self._R, key=lambda index: (pool_distances[index], index)
            )
            guard = self._pool.difference(candidate_knn)
            farthest = max(pool_distances[index] for index in candidate_knn)
            nearest_guard = (
                min(pool_distances[index] for index in guard) if guard else math.inf
            )
            if farthest <= nearest_guard:
                self._knn = candidate_knn
                self._guard = frozenset(guard)
                self._stats.incremental_updates += 1
                self._stats.transmitted_objects += transmitted
                return True
            if not self._ins:
                break
            # Swap the farthest R member for the nearest outside guard object
            # and fetch the incomer's neighbour list (1 + |N| objects).
            incoming = min(self._ins, key=lambda index: (pool_distances[index], index))
            outgoing = max(self._R, key=lambda index: (pool_distances[index], index))
            with self._stats.time_construction():
                incoming_neighbors = self._vortree.voronoi_neighbors(incoming)
            transmitted += 1 + len(incoming_neighbors)
            self._R = [index for index in self._R if index != outgoing] + [incoming]
            self._neighbor_lists.pop(outgoing, None)
            self._neighbor_lists[incoming] = incoming_neighbors
            self._ins = set().union(*self._neighbor_lists.values()) - set(self._R)
            self._refresh_cached_sets()
        # Could not stabilise within the swap budget: restore and report failure.
        self._R = saved_R
        self._neighbor_lists = saved_lists
        self._knn = saved_knn
        self._ins = set().union(*self._neighbor_lists.values()) - set(self._R)
        self._refresh_cached_sets()
        return False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _distances(self, position: Point, indexes: Sequence[int]) -> List[float]:
        return [position.distance_to(self._points[index]) for index in indexes]
