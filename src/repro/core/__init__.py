"""The paper's primary contribution: INS-based moving kNN query processing.

* :mod:`repro.core.objects` — result and action types shared by every
  processor.
* :mod:`repro.core.stats` — cost accounting (recomputations, communication,
  distance computations, timing).
* :mod:`repro.core.influential` — influential set (IS), minimal influential
  set (MIS) and influential neighbour set (INS) computations and checks.
* :mod:`repro.core.processor` — the abstract moving-kNN processor interface.
* :mod:`repro.core.ins_euclidean` — the INS algorithm in the 2-D plane.
* :mod:`repro.core.ins_road` — the INS algorithm on road networks
  (Theorems 1 and 2).
* :mod:`repro.core.engine` — the generic serving engine (query lifecycle,
  epoch counter, delta-scoped invalidation dispatch, aggregate stats).
* :mod:`repro.core.server` / :mod:`repro.core.road_server` — the thin
  metric-specific servers composing the shared index structures with
  per-query client state, in the plane and on road networks respectively.
"""

from repro.core.objects import QueryResult, UpdateAction
from repro.core.stats import CommunicationStats, ProcessorStats
from repro.core.influential import (
    InfluentialSetMonitor,
    influential_neighbor_set,
    is_closer_set,
    minimal_influential_set,
    verify_influential_set,
)
from repro.core.processor import MovingKNNProcessor
from repro.core.ins_euclidean import INSProcessor
from repro.core.ins_road import INSRoadProcessor
from repro.core.engine import ServingEngine
from repro.core.server import MovingKNNServer
from repro.core.road_server import MovingRoadKNNServer

__all__ = [
    "ServingEngine",
    "MovingKNNServer",
    "MovingRoadKNNServer",
    "QueryResult",
    "UpdateAction",
    "ProcessorStats",
    "CommunicationStats",
    "InfluentialSetMonitor",
    "influential_neighbor_set",
    "minimal_influential_set",
    "is_closer_set",
    "verify_influential_set",
    "MovingKNNProcessor",
    "INSProcessor",
    "INSRoadProcessor",
]
