"""Result and action types shared by all moving-kNN processors.

Every processor — INS and the baselines, Euclidean and road-network — answers
each timestamp with a :class:`QueryResult`, which reports the kNN set, the
guard information the processor holds (safe guarding objects or a safe
region) and the action it had to take to produce the answer.  The action
taxonomy is what the evaluation counts:

* ``NONE`` — the stored answer was still valid; nothing had to change.
* ``LOCAL_REORDER`` — the answer changed but could be composed from data
  already held by the client (no server communication).
* ``INCREMENTAL`` — a small amount of new data was fetched (e.g. one object's
  Voronoi neighbour list).
* ``FULL_RECOMPUTE`` — the answer and its guard structure were recomputed
  from the server-side index.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple


class UpdateAction(enum.Enum):
    """What a processor had to do at a timestamp to keep its answer correct."""

    NONE = "none"
    LOCAL_REORDER = "local_reorder"
    INCREMENTAL = "incremental"
    FULL_RECOMPUTE = "full_recompute"

    @property
    def requires_communication(self) -> bool:
        """True when the action involves client/server communication."""
        return self in (UpdateAction.INCREMENTAL, UpdateAction.FULL_RECOMPUTE)


@dataclass(frozen=True)
class QueryResult:
    """The answer of a moving-kNN processor at one timestamp.

    Attributes:
        timestamp: index of the timestamp this result answers (0-based).
        knn: the reported k nearest neighbour object indexes, nearest first.
        knn_distances: distance from the query to each reported neighbour, in
            the same order as ``knn`` (Euclidean or network distance
            depending on the processor).
        guard_objects: the safe guarding objects currently held (the IS for
            INS processors, the auxiliary candidates for V*, empty for safe
            region baselines that guard with a polygon instead).
        action: what the processor had to do at this timestamp.
        was_valid: True when the previously reported answer was still valid
            at this timestamp (i.e. no update procedure ran).
    """

    timestamp: int
    knn: Tuple[int, ...]
    knn_distances: Tuple[float, ...]
    guard_objects: FrozenSet[int]
    action: UpdateAction
    was_valid: bool

    @property
    def k(self) -> int:
        """Number of reported neighbours."""
        return len(self.knn)

    @property
    def knn_set(self) -> FrozenSet[int]:
        """The reported kNN set, order-insensitive."""
        return frozenset(self.knn)

    @property
    def farthest_distance(self) -> float:
        """Distance to the farthest reported neighbour (0 when k = 0)."""
        return self.knn_distances[-1] if self.knn_distances else 0.0

    def describe(self) -> str:
        """One-line human-readable description, used by the demo renderer."""
        status = "valid" if self.was_valid else f"updated ({self.action.value})"
        neighbors = ", ".join(str(index) for index in self.knn)
        return f"t={self.timestamp}: kNN=[{neighbors}] [{status}]"
