"""A multi-query MkNN server.

The INSQ demonstration drives a single moving query, but the system it
showcases is meant for location-based services where one server answers
*many* concurrent moving kNN queries over the same data set.  This module
provides that server-side composition:

* one shared, precomputed :class:`~repro.index.vortree.VoRTree` (the
  expensive structure) serves every query,
* each registered query gets its own :class:`INSProcessor` client state
  (answer, prefetched set, guard set) with its own ``k`` and ``ρ``,
* data-object updates are applied once to the shared tree and invalidate
  every registered query's client state, exactly as Section III prescribes,
* aggregate statistics across queries are available for capacity planning.

Data-object updates are cheap on both sides of the interface.  Server-side,
the shared VoR-tree patches its Voronoi neighbour lists incrementally
(O(affected cells) per update instead of a full O(n) rebuild) and
:meth:`MovingKNNServer.batch_update` applies a whole burst of inserts and
deletes as one *epoch*: one neighbour-map patch, one invalidation round.
Client-side, every registered processor shares the tree's live position
view, so an update never copies the n-point list into each of the (possibly
thousands of) registered queries — their state is merely marked stale and
refreshed lazily on their next timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, EmptyDatasetError, QueryError
from repro.core.ins_euclidean import INSProcessor
from repro.core.objects import QueryResult
from repro.core.stats import ProcessorStats
from repro.geometry.point import Point
from repro.index.vortree import VoRTree


@dataclass(frozen=True)
class RegisteredQuery:
    """Bookkeeping record of one registered moving query."""

    query_id: int
    k: int
    rho: float
    processor: INSProcessor


@dataclass(frozen=True)
class BatchUpdateResult:
    """Outcome of one :meth:`MovingKNNServer.batch_update` epoch.

    Attributes:
        new_indexes: object indexes assigned to the inserted points, in
            input order.
        deleted_indexes: object indexes that were actually deleted.
        epoch: the data epoch after applying the batch (monotonically
            increasing; one step per mutation batch, however large).
    """

    new_indexes: Tuple[int, ...]
    deleted_indexes: Tuple[int, ...]
    epoch: int


class MovingKNNServer:
    """Serve many concurrent moving kNN queries over one data set.

    Args:
        points: the data-object positions.
        max_entries: R-tree node capacity of the shared VoR-tree.
        allow_incremental: enable case-(i) incremental updates for every
            registered query (see :class:`INSProcessor`).
        maintenance: Voronoi neighbour-list maintenance mode of the shared
            VoR-tree (``"incremental"`` or ``"rebuild"``; see
            :class:`VoRTree`).
    """

    def __init__(
        self,
        points: Sequence[Point],
        max_entries: int = 16,
        allow_incremental: bool = False,
        maintenance: str = "incremental",
    ):
        if not points:
            raise EmptyDatasetError("MovingKNNServer requires at least one data object")
        self._vortree = VoRTree(
            list(points), max_entries=max_entries, maintenance=maintenance
        )
        self._allow_incremental = allow_incremental
        self._queries: Dict[int, RegisteredQuery] = {}
        self._next_query_id = 0
        self._epoch = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def vortree(self) -> VoRTree:
        """The shared server-side VoR-tree."""
        return self._vortree

    @property
    def object_count(self) -> int:
        """Number of active data objects."""
        return len(self._vortree)

    @property
    def query_count(self) -> int:
        """Number of currently registered queries."""
        return len(self._queries)

    @property
    def epoch(self) -> int:
        """The current data epoch.

        Incremented once per mutation batch (a single insert/delete counts
        as a batch of one), so clients can cheaply detect whether the data
        set changed since they last looked.
        """
        return self._epoch

    def query_ids(self) -> List[int]:
        """Identifiers of the registered queries."""
        return list(self._queries)

    def __iter__(self) -> Iterator[RegisteredQuery]:
        return iter(self._queries.values())

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------
    def register_query(self, position: Point, k: int, rho: float = 1.6) -> int:
        """Register a new moving query and compute its first answer.

        Returns the query identifier used for subsequent position updates.
        """
        if k < 1:
            raise ConfigurationError("k must be at least 1")
        if k >= self.object_count:
            raise ConfigurationError(
                f"k={k} must be smaller than the number of data objects ({self.object_count})"
            )
        processor = INSProcessor(
            self._vortree.positions,
            k,
            rho=rho,
            vortree=self._vortree,
            allow_incremental=self._allow_incremental,
        )
        # Initialize before registering: a failing first answer must not
        # leave a zombie query behind that inflates counts and gets
        # invalidated forever.
        processor.initialize(position)
        query_id = self._next_query_id
        self._next_query_id += 1
        self._queries[query_id] = RegisteredQuery(
            query_id=query_id, k=k, rho=rho, processor=processor
        )
        return query_id

    def unregister_query(self, query_id: int) -> None:
        """Remove a query (raises QueryError when it does not exist)."""
        if query_id not in self._queries:
            raise QueryError(f"unknown query {query_id}")
        del self._queries[query_id]

    def update_position(self, query_id: int, position: Point) -> QueryResult:
        """Advance one query to its next position and return its answer."""
        if query_id not in self._queries:
            raise QueryError(f"unknown query {query_id}")
        return self._queries[query_id].processor.update(position)

    def answer(self, query_id: int) -> QueryResult:
        """Re-answer a query at its current position without moving it.

        Useful right after a data-object update when the client wants the
        refreshed result before its next movement.
        """
        if query_id not in self._queries:
            raise QueryError(f"unknown query {query_id}")
        processor = self._queries[query_id].processor
        if processor._last_position is None:
            raise QueryError(f"query {query_id} has no known position")
        return processor.update(processor._last_position)

    # ------------------------------------------------------------------
    # Data-object updates
    # ------------------------------------------------------------------
    def insert_object(self, point: Point) -> int:
        """Insert a data object; every registered query is marked stale.

        The registered processors share the tree's live position view, so
        no per-query state is copied — the insert is one incremental
        neighbour-map patch plus one stale flag per query.
        """
        index = self._vortree.insert(point)
        self._epoch += 1
        self._invalidate_queries()
        return index

    def delete_object(self, index: int) -> bool:
        """Delete a data object; every registered query is marked stale."""
        removed = self._vortree.delete(index)
        if removed:
            self._epoch += 1
            self._invalidate_queries()
        return removed

    def batch_update(
        self, inserts: Sequence[Point] = (), deletes: Iterable[int] = ()
    ) -> BatchUpdateResult:
        """Apply a burst of object inserts and deletes as one data epoch.

        A heavy traffic stream batches its object updates; applying them
        together triggers one neighbour-map patch (or, for very large
        bursts, one full rebuild) and one invalidation round instead of one
        per object.  Deletions always refer to pre-existing object indexes;
        insertions are registered first, so a burst may replace the whole
        population as long as one object survives (see
        :meth:`VoRTree.batch_update`).
        """
        new_indexes, deleted = self._vortree.batch_update(inserts, deletes)
        if new_indexes or deleted:
            self._epoch += 1
            self._invalidate_queries()
        return BatchUpdateResult(
            new_indexes=tuple(new_indexes),
            deleted_indexes=tuple(deleted),
            epoch=self._epoch,
        )

    def _invalidate_queries(self) -> None:
        """Shared-state invalidation: flag every query, copy nothing."""
        for registered in self._queries.values():
            registered.processor._state_stale = True

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def aggregate_stats(self) -> ProcessorStats:
        """Sum of the cost counters of every registered query."""
        total = ProcessorStats()
        for registered in self._queries.values():
            total.merge(registered.processor.stats)
        return total

    def per_query_stats(self) -> Dict[int, ProcessorStats]:
        """Cost counters per registered query."""
        return {
            query_id: registered.processor.stats
            for query_id, registered in self._queries.items()
        }
