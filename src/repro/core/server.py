"""The Euclidean multi-query MkNN server.

A thin metric-specific subclass of the generic
:class:`~repro.core.engine.ServingEngine`: one shared, incrementally
maintained :class:`~repro.index.vortree.VoRTree` (the expensive structure)
serves every registered :class:`INSProcessor` client, and the engine owns
the query lifecycle, the epoch counter, the population guard and the
invalidation dispatch.  This module contributes only the Euclidean 20%:

* constructing the shared VoR-tree and the per-query processors,
* translating object mutations (:meth:`MovingKNNServer.insert_object`,
  :meth:`~MovingKNNServer.delete_object`,
  :meth:`~MovingKNNServer.batch_update`) into incremental tree repairs —
  O(affected cells) per update, with a whole burst applied as one epoch.

**Invalidation is delta-scoped** (the road server's contract, now shared):
every mutation returns the set of objects whose Voronoi neighbour lists
changed, and the engine pushes exactly that delta to each registered query.
A client settles it lazily on its next timestamp — a removal inside its
prefetched set R costs one retrieval, a delta elsewhere in its held pool
(R ∪ I(R)) an I(R)-only refresh from the already-patched tree, and a delta
outside its pool nothing at all (counted as an absorbed update).  Since the
processors share the tree's live position view, an update never copies the
n-point list into each of the (possibly thousands of) registered queries.
The blanket pre-delta behaviour — every query refreshes fully on every
epoch — survives as ``invalidation="flag"``, the fallback mode and the
oracle of the randomized delta-equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

from repro.errors import ConfigurationError, EmptyDatasetError, QueryError
from repro.core.engine import ServingEngine
from repro.obs.clock import clock as _clock
from repro.obs.metrics import histogram as _obs_histogram
from repro.obs.trace import TRACER as _TRACER
from repro.core.ins_euclidean import INSProcessor
from repro.geometry.point import Point
from repro.index.vortree import VoRTree

# Index-maintenance latency, re-homed: one clock read pair feeds both the
# legacy maintenance_seconds/delta_apply_seconds accumulators (always) and
# these registry histograms (when observability is enabled).
_MAINTENANCE_SECONDS = _obs_histogram("insq_maintenance_seconds", metric="euclidean")
_DELTA_APPLY_SECONDS = _obs_histogram("insq_delta_apply_seconds", metric="euclidean")


@dataclass(frozen=True)
class RegisteredQuery:
    """Bookkeeping record of one registered moving query.

    ``kind`` names the continuous query kind (``"knn"`` for the classic
    moving-kNN query; see :mod:`repro.queries.kinds` for the registry), and
    ``processor`` is whichever :class:`~repro.core.processor.
    MovingKNNProcessor` that kind builds — ``INSProcessor`` for kNN.
    """

    query_id: int
    k: int
    rho: float
    processor: INSProcessor
    kind: str = "knn"


@dataclass(frozen=True)
class BatchUpdateResult:
    """Outcome of one :meth:`MovingKNNServer.batch_update` epoch.

    Attributes:
        new_indexes: object indexes assigned to the inserted points, in
            input order.
        deleted_indexes: object indexes that were actually deleted.
        changed_objects: surviving objects whose Voronoi neighbour lists
            changed (the delta pushed to the registered queries).
        epoch: the data epoch after applying the batch (monotonically
            increasing; one step per mutation batch, however large).
    """

    new_indexes: Tuple[int, ...]
    deleted_indexes: Tuple[int, ...]
    changed_objects: FrozenSet[int]
    epoch: int


class MovingKNNServer(ServingEngine[Point, RegisteredQuery]):
    """Serve many concurrent moving kNN queries over one data set.

    Args:
        points: the data-object positions.
        max_entries: R-tree node capacity of the shared VoR-tree.
        allow_incremental: enable case-(i) incremental updates for every
            registered query (see :class:`INSProcessor`).
        maintenance: Voronoi neighbour-list maintenance mode of the shared
            VoR-tree (``"incremental"`` or ``"rebuild"``; see
            :class:`VoRTree`).
        invalidation: ``"delta"`` (default) pushes each epoch's repair
            delta to the registered queries; ``"flag"`` restores the
            blanket refresh-everyone contract (see
            :class:`~repro.core.engine.ServingEngine`).
    """

    def __init__(
        self,
        points: Sequence[Point],
        max_entries: int = 16,
        allow_incremental: bool = False,
        maintenance: str = "incremental",
        invalidation: str = "delta",
    ):
        super().__init__(invalidation=invalidation)
        if not points:
            raise EmptyDatasetError("MovingKNNServer requires at least one data object")
        self._vortree = VoRTree(
            list(points), max_entries=max_entries, maintenance=maintenance
        )
        self._allow_incremental = allow_incremental

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def vortree(self) -> VoRTree:
        """The shared server-side VoR-tree."""
        return self._vortree

    @property
    def maintenance(self) -> str:
        """The shared tree's maintenance mode (``"incremental"``/``"rebuild"``)."""
        return self._vortree.maintenance

    @property
    def allow_incremental(self) -> bool:
        """Whether registered queries use case-(i) incremental updates."""
        return self._allow_incremental

    @property
    def object_count(self) -> int:
        """Number of active data objects."""
        return len(self._vortree)

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------
    def register_query(
        self, position: Point, k: int, rho: float = 1.6, kind: str = "knn"
    ) -> int:
        """Register a new continuous query and compute its first answer.

        ``kind`` selects the continuous query kind: ``"knn"`` (the default)
        builds the classic INS moving-kNN processor inline; any other name
        is resolved through the :mod:`repro.queries.kinds` registry, which
        owns the processor construction for that kind.  Returns the query
        identifier used for subsequent position updates.
        """
        if k < 1:
            raise ConfigurationError("k must be at least 1")
        if k >= self.object_count:
            raise ConfigurationError(
                f"k={k} must be smaller than the number of data objects ({self.object_count})"
            )
        if kind == "knn":
            processor = INSProcessor(
                self._vortree.positions,
                k,
                rho=rho,
                vortree=self._vortree,
                allow_incremental=self._allow_incremental,
            )
        else:
            # Imported lazily: the registry imports processor modules that
            # import this module's engine machinery.
            from repro.queries.kinds import query_kind

            processor = query_kind(kind).build_processor(self, k=k, rho=rho)
        # Initialize before admitting: a failing first answer must not
        # leave a zombie query behind.
        processor.initialize(position)
        return self._admit(
            lambda query_id: RegisteredQuery(
                query_id=query_id, k=k, rho=rho, processor=processor, kind=kind
            )
        )

    # ------------------------------------------------------------------
    # Data-object updates
    # ------------------------------------------------------------------
    def insert_object(self, point: Point) -> int:
        """Insert a data object; the repair delta reaches every query.

        The registered processors share the tree's live position view, so
        no per-query state is copied — the insert is one incremental
        neighbour-map patch plus one delta push per query.
        """
        start = _clock()
        index, changed = self._vortree.insert(point)
        elapsed = _clock() - start
        self.maintenance_seconds += elapsed
        _MAINTENANCE_SECONDS.observe(elapsed)
        _TRACER.add("index.maintain", start, elapsed, metric="euclidean")
        self._commit_epoch(changed, payload=1)
        return index

    def delete_object(self, index: int) -> bool:
        """Delete a data object (returns False when already gone).

        Raises:
            QueryError: when the deletion would leave fewer objects than
                some registered query's ``k`` requires — failing loudly at
                the mutation instead of at that query's next timestamp.
        """
        if not self._vortree.is_active(index):
            return False
        self._check_population(len(self._vortree) - 1)
        start = _clock()
        removed, changed = self._vortree.delete(index)
        elapsed = _clock() - start
        self.maintenance_seconds += elapsed
        _MAINTENANCE_SECONDS.observe(elapsed)
        _TRACER.add("index.maintain", start, elapsed, metric="euclidean")
        if removed:
            self._commit_epoch(changed, (index,), payload=1)
        return removed

    def batch_update(
        self, inserts: Sequence[Point] = (), deletes: Iterable[int] = ()
    ) -> BatchUpdateResult:
        """Apply a burst of object inserts and deletes as one data epoch.

        A heavy traffic stream batches its object updates; applying them
        together triggers one neighbour-map patch (or, for very large
        bursts, one full rebuild) and one invalidation round instead of one
        per object.  Deletions always refer to pre-existing object indexes;
        insertions are registered first, so a burst may replace the whole
        population as long as one object survives (see
        :meth:`VoRTree.batch_update`).

        Raises:
            QueryError: when the surviving population would be too small
                for some registered query's ``k``.
        """
        insert_list = list(inserts)
        delete_list = self._dedup_active_deletes(deletes, self._vortree.is_active)
        self._check_population(
            len(self._vortree) + len(insert_list) - len(delete_list)
        )
        start = _clock()
        new_indexes, deleted, changed = self._vortree.batch_update(
            insert_list, delete_list
        )
        elapsed = _clock() - start
        self.maintenance_seconds += elapsed
        _MAINTENANCE_SECONDS.observe(elapsed)
        _TRACER.add("index.maintain", start, elapsed, metric="euclidean")
        if new_indexes or deleted:
            self._commit_epoch(
                changed, deleted, payload=len(insert_list) + len(delete_list)
            )
        return BatchUpdateResult(
            new_indexes=tuple(new_indexes),
            deleted_indexes=tuple(deleted),
            changed_objects=frozenset(changed),
            epoch=self._epoch,
        )

    # ------------------------------------------------------------------
    # Leader/replica delta replication
    # ------------------------------------------------------------------
    def begin_delta_capture(self) -> None:
        """Start capturing the repair delta of the next update epoch.

        The Euclidean index derives its delta post hoc from the batch
        results (see :meth:`VoRTree.export_delta`), so there is nothing to
        install — the seam exists so leaders of either metric are driven
        identically.
        """

    def export_delta(self, result: BatchUpdateResult, batch) -> Dict[str, object]:
        """The :class:`~repro.transport.codec.IndexDelta` fields of the
        epoch that :meth:`batch_update` just applied (as plain kwargs).

        ``payload`` reproduces exactly what the epoch billed as uplink
        objects — ``batch_update`` assigns one index per insert and deletes
        exactly its deduplicated active deletions, so the result lengths
        *are* the billed record count.  ``batch`` (the originating
        :class:`~repro.service.messages.UpdateBatch`) is unused here; the
        road server needs it for its move records.
        """
        sections = self._vortree.export_delta(
            result.new_indexes, result.deleted_indexes, result.changed_objects
        )
        return {
            "epoch": result.epoch,
            "payload": len(result.new_indexes) + len(result.deleted_indexes),
            "new_indexes": tuple(result.new_indexes),
            "deleted_indexes": tuple(result.deleted_indexes),
            "changed": tuple(sorted(result.changed_objects)),
            **sections,
        }

    def apply_remote_delta(self, delta) -> None:
        """Apply a maintenance leader's repair delta as this engine's epoch.

        The read-replica path of ``replication="delta"``: the shared tree
        is patched from the shipped delta (no geometry runs) and the epoch
        commits with the same changed/removed/payload values the leader
        committed, so answers, counters and epoch stay bit-identical to a
        replica that re-ran the batch.  A delta for the current epoch is a
        no-op (the leader's batch did not commit).
        """
        if delta.epoch == self._epoch:
            return
        if delta.epoch != self._epoch + 1:
            raise QueryError(
                f"index delta for epoch {delta.epoch} cannot apply at epoch "
                f"{self._epoch} — replicas diverged"
            )
        start = _clock()
        self._vortree.apply_remote_delta(delta)
        elapsed = _clock() - start
        self.delta_apply_seconds += elapsed
        _DELTA_APPLY_SECONDS.observe(elapsed)
        _TRACER.add("delta.apply", start, elapsed, metric="euclidean")
        self._commit_epoch(
            frozenset(delta.changed), delta.deleted_indexes, payload=delta.payload
        )
