"""Crash recovery: snapshot + write-ahead-log replay for a served engine.

:class:`DurableKNNService` is a drop-in :class:`~repro.service.service.
KNNService` that persists every successful operation crossing the service
seam — session opens/closes, position updates, refreshes,
:class:`~repro.service.messages.UpdateBatch` epochs — to a
:class:`~repro.durability.wal.WriteAheadLog`, and periodically writes a
checksummed :mod:`~repro.durability.snapshot` of the full engine state.
:func:`recover_service` rebuilds the service from the newest valid
snapshot plus the WAL suffix.

The durability contract, precisely:

* **What is logged.**  Operations are logged *after* they execute and
  *before* their response is acknowledged, as the codec frames of
  :mod:`repro.transport.codec` (the log format is the wire format).  A
  failing operation (population guard, bad ``k``) mutates nothing and
  logs nothing; a crash between execute and log loses an operation whose
  response the client never received — indistinguishable, to every
  observer, from crashing just before it.
* **When fsync happens.**  Every append is flushed to the OS before the
  response goes out, so a killed *process* loses nothing; the
  ``fsync`` policy (``"always"``/``"batch"``/``"off"``) decides what
  additionally survives a machine crash (see :mod:`repro.durability.wal`).
* **What recovery guarantees.**  A recovered service is *bit-identical*
  to the pre-crash one: same answers (ids and distances), same
  :class:`~repro.core.stats.CommunicationStats` counters per session and
  in aggregate, same epoch, same future query-id assignments.  Snapshots
  capture exact processor state (prefetched sets, guard sets, validity),
  and replaying the logged request stream on top reproduces everything
  after — the ``tests/durability/`` suite holds this as its oracle.
* **Sessions.**  A graceful close (an explicit
  :meth:`~repro.service.session.Session.close`, or a transport connection
  saying goodbye) is logged and therefore permanent; sessions open at the
  moment of a crash are recovered, with fresh
  :class:`~repro.service.session.Session` handles ready for adoption by
  a restarted transport (``serve_connection(..., sessions=...)``).

A new durability directory starts with an *initial snapshot* (``wal_seq``
0) of the pre-traffic state, so recovery always has a base even when no
periodic checkpoint ever ran; :func:`recover_service` also accepts
``use_latest_snapshot=False`` to deliberately recover from that initial
snapshot by replaying the entire log — the "cold" path the PR6 benchmark
compares checkpointed recovery against.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.errors import DurabilityError, SnapshotError, WALCorruptError
from repro.obs.metrics import histogram as _obs_histogram, start_timer
from repro.service.messages import KNNResponse, UpdateBatch
from repro.service.service import KNNService, open_service
from repro.service.session import Session
from repro.transport.codec import (
    BatchApplied,
    CloseSession,
    IndexDelta,
    OpenQuery,
    OpenSession,
    PositionUpdate,
    RefreshRequest,
    SessionClosed,
    SessionOpened,
    encode,
    wire_size,
)
from repro.durability.snapshot import (
    list_snapshots,
    load_latest_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.durability.wal import (
    WALRecord,
    WriteAheadLog,
    list_segments,
    purge_segments,
    scan_chain,
    scan_wal,
)

#: Snapshot + purge wall time per checkpoint (sync included: a
#: checkpoint's cost is everything between "decide to snapshot" and
#: "the log behind it is dead weight removed").
_CHECKPOINT_SECONDS = _obs_histogram("insq_checkpoint_seconds")

__all__ = [
    "DurableKNNService",
    "has_durable_state",
    "inventory",
    "open_durable_service",
    "recover_service",
    "wal_path",
]

#: The single log file inside a durability directory.
WAL_FILENAME = "wal.log"

_SNAPSHOT_VERSION = 1


def wal_path(wal_dir: str) -> str:
    """The write-ahead-log path inside a durability directory."""
    return os.path.join(wal_dir, WAL_FILENAME)


def has_durable_state(wal_dir: str) -> bool:
    """True when ``wal_dir`` already holds snapshots or a log to recover."""
    return (
        bool(list_snapshots(wal_dir))
        or os.path.exists(wal_path(wal_dir))
        or bool(list_segments(str(wal_dir)))
    )


class DurableKNNService(KNNService):
    """A :class:`KNNService` that survives the crash of its process.

    Construct over a *fresh* engine and an *empty* durability directory
    (an initial snapshot of the pre-traffic state is written immediately);
    use :func:`recover_service` to resurrect one from an existing
    directory.  The class is transparent to everything above the service
    seam — sessions, ``serve_connection``, ``RemoteSession`` — because all
    traffic already flows through the methods overridden here.

    Args:
        engine: the backing engine (must have no registered queries yet).
        wal_dir: the durability directory (created if missing; must not
            already hold durable state).
        fsync: the log's fsync policy (see
            :class:`~repro.durability.wal.WriteAheadLog`).
        snapshot_every: write a checkpoint snapshot after this many log
            appends (``None`` disables periodic checkpoints; the initial
            snapshot and explicit :meth:`checkpoint` calls still happen).
        segment_bytes: rotate the log into sealed segments at this size;
            each checkpoint then purges the segments its snapshot covers,
            so the on-disk log stays bounded (``None`` keeps the single
            ever-growing file).
        wire_billing: set True when the service is hosted behind
            ``serve_connection`` (which bills wire bytes into the engine's
            counters).  Replay then re-bills each replayed exchange — the
            uplink bytes are the logged frame's own length, the downlink
            bytes the :func:`~repro.transport.codec.wire_size` of the
            regenerated response — so even the engine's *byte* counters
            recover bit-identically, not just messages and objects.
    """

    def __init__(
        self,
        engine,
        wal_dir: str,
        fsync: str = "batch",
        snapshot_every: Optional[int] = None,
        segment_bytes: Optional[int] = None,
        wire_billing: bool = False,
    ):
        super().__init__(engine)
        if engine.query_count:
            raise DurabilityError(
                f"cannot make an engine with {engine.query_count} registered "
                "queries durable: its sessions would be unrecoverable"
            )
        if has_durable_state(wal_dir):
            raise DurabilityError(
                f"{wal_dir} already holds durable state; use recover_service()"
            )
        self._wal_dir = str(wal_dir)
        self._replaying = False
        self._snapshot_every = snapshot_every
        self._appends_since_snapshot = 0
        self._wire_billing = wire_billing
        os.makedirs(self._wal_dir, exist_ok=True)
        # The base of every recovery: the pre-traffic state at wal_seq 0.
        self._write_snapshot(wal_seq=0)
        self._wal = WriteAheadLog(
            wal_path(self._wal_dir), fsync=fsync, segment_bytes=segment_bytes
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def wal_dir(self) -> str:
        """The durability directory."""
        return self._wal_dir

    @property
    def wal(self) -> WriteAheadLog:
        """The underlying write-ahead log."""
        return self._wal

    @property
    def recovering(self) -> bool:
        """True while WAL records are being replayed into this service."""
        return self._replaying

    def __repr__(self) -> str:
        return (
            f"DurableKNNService(metric={self.metric!r}, "
            f"objects={self.object_count}, sessions={self.session_count}, "
            f"epoch={self.epoch}, wal_dir={self._wal_dir!r})"
        )

    # ------------------------------------------------------------------
    # Logging (after execute, before acknowledge)
    # ------------------------------------------------------------------
    def _log(self, *messages: Any) -> None:
        if self._replaying:
            return
        for message in messages:
            self._wal.append(message)
        if self._snapshot_every is not None:
            self._appends_since_snapshot += len(messages)
            if self._appends_since_snapshot >= self._snapshot_every:
                self.checkpoint()

    def open_session(
        self, position: Any, k: int, rho: float = 1.6, **query_options: Any
    ) -> Session:
        session = super().open_session(position, k=k, rho=rho, **query_options)
        # The open/ack pair makes query-id assignment auditable: replay
        # asserts the deterministic engine hands out the logged id again.
        options = tuple(
            (str(name), str(value)) for name, value in query_options.items()
        )
        self._log(
            OpenSession(position=position, k=k, rho=rho, options=options),
            SessionOpened(query_id=session.query_id),
        )
        return session

    def open_query(
        self,
        position: Any,
        kind: str = "knn",
        *,
        k: int,
        rho: float = 1.6,
        **query_options: Any,
    ) -> Session:
        if kind == "knn":
            # Routes through open_session, which logs the classic
            # OpenSession/SessionOpened pair — the log stays byte-identical
            # to a pre-queries-era kNN workload.
            return super().open_query(position, kind=kind, k=k, rho=rho, **query_options)
        session = super().open_query(position, kind=kind, k=k, rho=rho, **query_options)
        options = tuple(
            (str(name), str(value)) for name, value in query_options.items()
        )
        self._log(
            OpenQuery(kind=kind, position=position, k=k, rho=rho, options=options),
            SessionOpened(query_id=session.query_id),
        )
        return session

    def _deliver(self, query_id: int, position: Any) -> KNNResponse:
        response = super()._deliver(query_id, position)
        self._log(PositionUpdate(query_id=query_id, position=position))
        return response

    def _refresh(self, query_id: int) -> KNNResponse:
        response = super()._refresh(query_id)
        self._log(RefreshRequest(query_id=query_id))
        return response

    def _discard(self, session: Session) -> None:
        super()._discard(session)
        self._log(CloseSession(query_id=session.query_id))

    def apply(self, batch: UpdateBatch):
        result = super().apply(batch)
        self._log(batch)
        return result

    def apply_remote_delta(self, delta) -> None:
        """Apply a maintenance leader's repair delta and log the frame.

        The read-replica half of ``replication="delta"``: the delta *is*
        the epoch for this shard — no :class:`UpdateBatch` ever reaches a
        replica's log — so replay-to-rejoin re-applies the logged deltas
        in order and recovers the same patched index the leader shipped,
        without re-running any geometry.
        """
        super().apply_remote_delta(delta)
        self._log(delta)

    # Single-object mutators route through apply() so they are logged with
    # the same epoch-per-call semantics they will replay with.
    def insert(self, target: Any) -> int:
        result = self.apply(UpdateBatch(inserts=(target,)))
        return result.new_indexes[0]

    def delete(self, index: int) -> bool:
        result = self.apply(UpdateBatch(deletes=(index,)))
        return bool(result.deleted_indexes)

    def move(self, index: int, target: Any):
        return self.apply(UpdateBatch(moves=((index, target),)))

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _write_snapshot(self, wal_seq: int) -> str:
        payload = {
            "version": _SNAPSHOT_VERSION,
            "metric": self.metric,
            "engine": self.engine,
            "sessions": [
                (session.query_id, session.k, session.rho, session.kind)
                for session in self._sessions.values()
            ],
        }
        return write_snapshot(self._wal_dir, payload, wal_seq)

    def checkpoint(self) -> str:
        """Write a snapshot of the current state; returns its path.

        The log is synced first, so the snapshot's ``wal_seq`` names a
        durable prefix; replay after recovery resumes exactly behind it.
        Sealed log segments the new snapshot covers are purged — recovery
        will never read behind its snapshot, so they are dead weight.
        """
        started = start_timer()
        self._wal.sync()
        snapshot_seq = self._wal.last_seq
        path = self._write_snapshot(snapshot_seq)
        purge_segments(self._wal_dir, snapshot_seq)
        self._appends_since_snapshot = 0
        _CHECKPOINT_SECONDS.observe_since(started)
        return path

    # ------------------------------------------------------------------
    # Acknowledgement barrier (used by serve_connection)
    # ------------------------------------------------------------------
    def durability_token(self) -> Optional[int]:
        """The log position an acknowledgement must wait on.

        Only the ``"group"`` policy needs a barrier: ``"always"`` is
        already durable when the append returns, and ``"batch"``/``"off"``
        deliberately trade the guarantee away.  Returning ``None`` for
        them keeps their acknowledgement path exactly as before.
        """
        if self._wal.fsync_policy == "group":
            return self._wal.last_seq
        return None

    def durability_barrier(self, token: Optional[int]) -> None:
        if token is not None:
            self._wal.wait_durable(token)

    # ------------------------------------------------------------------
    # Replay (used by recover_service)
    # ------------------------------------------------------------------
    def _replay(self, records: List[WALRecord]) -> int:
        """Apply a WAL suffix to this service; returns records applied.

        With wire billing on, each replayed operation also re-bills the
        bytes its original exchange cost — reconstructed, not remembered:
        the logged frame *is* the uplink, and the regenerated response
        predicts the downlink exactly (``wire_size`` is exact by codec
        contract) — mirroring ``serve_connection``'s live billing.
        """
        self._replaying = True
        applied = 0
        engine = self.engine

        def bill(query_id, uplink=0, downlink=0):
            if self._wire_billing:
                engine.account_wire_bytes(
                    query_id, uplink_bytes=uplink, downlink_bytes=downlink
                )

        try:
            index = 0
            while index < len(records):
                record = records[index]
                message = record.message
                if isinstance(message, OpenSession):
                    if index + 1 >= len(records):
                        # The ack never made the log: the client never saw
                        # this session, so it never happened.  (The engine
                        # registration it described died with the crash.)
                        break
                    ack = records[index + 1].message
                    if not isinstance(ack, SessionOpened):
                        raise DurabilityError(
                            f"WAL record {record.seq}: OpenSession not "
                            f"followed by its SessionOpened ack"
                        )
                    session = self.open_session(
                        message.position,
                        k=message.k,
                        rho=message.rho,
                        **dict(message.options),
                    )
                    if session.query_id != ack.query_id:
                        raise DurabilityError(
                            f"replay diverged: engine assigned query id "
                            f"{session.query_id}, log recorded {ack.query_id}"
                        )
                    bill(
                        session.query_id,
                        uplink=len(encode(message)),
                        downlink=wire_size(ack),
                    )
                    applied += 2
                    index += 2
                    continue
                if isinstance(message, OpenQuery):
                    if index + 1 >= len(records):
                        # Unacknowledged open: the client never saw the
                        # session, so it never happened.
                        break
                    ack = records[index + 1].message
                    if not isinstance(ack, SessionOpened):
                        raise DurabilityError(
                            f"WAL record {record.seq}: OpenQuery not "
                            f"followed by its SessionOpened ack"
                        )
                    session = self.open_query(
                        message.position,
                        kind=message.kind,
                        k=message.k,
                        rho=message.rho,
                        **dict(message.options),
                    )
                    if session.query_id != ack.query_id:
                        raise DurabilityError(
                            f"replay diverged: engine assigned query id "
                            f"{session.query_id}, log recorded {ack.query_id}"
                        )
                    bill(
                        session.query_id,
                        uplink=len(encode(message)),
                        downlink=wire_size(ack),
                    )
                    applied += 2
                    index += 2
                    continue
                if isinstance(message, SessionOpened):
                    # Its OpenSession/OpenQuery half predates the snapshot;
                    # the registration is already in the restored state.
                    index += 1
                    continue
                if isinstance(message, PositionUpdate):
                    bill(message.query_id, uplink=len(encode(message)))
                    response = self._deliver(message.query_id, message.position)
                    bill(message.query_id, downlink=wire_size(response))
                elif isinstance(message, RefreshRequest):
                    bill(message.query_id, uplink=len(encode(message)))
                    response = self._refresh(message.query_id)
                    bill(message.query_id, downlink=wire_size(response))
                elif isinstance(message, CloseSession):
                    session = self._sessions.get(message.query_id)
                    if session is None:
                        raise DurabilityError(
                            f"WAL record {record.seq}: CloseSession for "
                            f"unknown query {message.query_id}"
                        )
                    bill(message.query_id, uplink=len(encode(message)))
                    session.close()
                    bill(
                        None,
                        downlink=wire_size(
                            SessionClosed(query_id=message.query_id)
                        ),
                    )
                elif isinstance(message, UpdateBatch):
                    bill(None, uplink=len(encode(message)))
                    result = self.apply(message)
                    bill(
                        None,
                        downlink=wire_size(
                            BatchApplied(
                                epoch=result.epoch,
                                new_indexes=result.new_indexes,
                                deleted_indexes=result.deleted_indexes,
                            )
                        ),
                    )
                elif isinstance(message, IndexDelta):
                    # A read replica's epoch: patch the index from the
                    # leader's logged delta.  Replication frames are meta
                    # (unbilled live), so no bytes are re-billed here.
                    self.apply_remote_delta(message)
                else:
                    raise DurabilityError(
                        f"WAL record {record.seq}: unexpected "
                        f"{type(message).__name__} frame in the log"
                    )
                applied += 1
                index += 1
        finally:
            self._replaying = False
        return applied

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close_wal(self) -> None:
        """Sync (per policy) and close the log file (idempotent).

        Sessions are left untouched — this releases the file handle, it
        does not say goodbye on anyone's behalf.
        """
        self._wal.close()

    def close(self) -> None:
        """Close every open session (logged as goodbyes), then the log."""
        super().close()
        self.close_wal()


def open_durable_service(
    wal_dir: str,
    metric: str = "euclidean",
    objects=None,
    network=None,
    maintenance: str = "incremental",
    invalidation: str = "delta",
    max_entries: int = 16,
    fsync: str = "batch",
    snapshot_every: Optional[int] = None,
    segment_bytes: Optional[int] = None,
) -> DurableKNNService:
    """Open a fresh durable service — :func:`~repro.service.service.
    open_service` plus a durability directory.

    ``wal_dir`` must not already hold durable state (that is what
    :func:`recover_service` is for).
    """
    service = open_service(
        metric=metric,
        objects=objects,
        network=network,
        maintenance=maintenance,
        invalidation=invalidation,
        max_entries=max_entries,
    )
    return DurableKNNService(
        service.engine,
        wal_dir,
        fsync=fsync,
        snapshot_every=snapshot_every,
        segment_bytes=segment_bytes,
    )


def recover_service(
    wal_dir: str,
    fsync: str = "batch",
    snapshot_every: Optional[int] = None,
    segment_bytes: Optional[int] = None,
    use_latest_snapshot: bool = True,
    wire_billing: bool = False,
) -> DurableKNNService:
    """Rebuild a :class:`DurableKNNService` from its durability directory.

    Loads the newest valid snapshot (falling back past corrupt ones),
    repairs the log's torn tail, replays the suffix, and reopens the log
    for appending — the recovered service continues bit-identically where
    the crashed one stopped acknowledging.

    Args:
        wal_dir: the durability directory to recover from.
        fsync: fsync policy for the reopened log.
        snapshot_every: periodic-checkpoint setting for the new instance.
        segment_bytes: rotation setting for the reopened log.
        use_latest_snapshot: when False, recover from the *initial*
            (``wal_seq`` 0) snapshot and replay the entire log — the cold
            path, kept for the benchmark's recovery-vs-full-replay
            comparison and as a last resort against snapshot corruption.
            Unavailable once checkpoints have purged early segments.
        wire_billing: True when the crashed service was hosted behind
            ``serve_connection`` — replay then re-bills the wire bytes of
            every replayed exchange (see :class:`DurableKNNService`).

    Raises:
        SnapshotError: no valid snapshot exists.
        WALCorruptError: the log is corrupt (CRC failure in an intact
            record — a torn tail is repaired, not raised).
        DurabilityError: the log contradicts the snapshot during replay.
    """
    if use_latest_snapshot:
        snapshot_seq, payload, _ = load_latest_snapshot(wal_dir)
    else:
        candidates = list_snapshots(wal_dir)
        if not candidates:
            raise SnapshotError(f"{wal_dir}: no snapshots found")
        snapshot_seq, payload = read_snapshot(candidates[0][1])
    if not isinstance(payload, dict) or payload.get("version") != _SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{wal_dir}: unsupported snapshot payload "
            f"(version {payload.get('version') if isinstance(payload, dict) else '?'})"
        )
    engine = payload["engine"]

    service = DurableKNNService.__new__(DurableKNNService)
    KNNService.__init__(service, engine)
    for entry in payload["sessions"]:
        # Pre-queries-era snapshots store (query_id, k, rho) triples.
        query_id, k, rho = entry[:3]
        kind = entry[3] if len(entry) > 3 else "knn"
        service._sessions[query_id] = Session(
            service, query_id, k=k, rho=rho, kind=kind
        )
    service._wal_dir = str(wal_dir)
    service._replaying = False
    service._snapshot_every = snapshot_every
    service._appends_since_snapshot = 0
    service._wire_billing = wire_billing

    log_file = wal_path(wal_dir)
    # raises WALCorruptError on corruption (of the chain or the active)
    scan = scan_chain(log_file)
    if scan.records and scan.records[0].seq > snapshot_seq + 1:
        raise DurabilityError(
            f"{wal_dir}: log starts at seq {scan.records[0].seq} but the "
            f"chosen snapshot covers only up to {snapshot_seq} — the "
            "records between were purged behind a later checkpoint"
        )
    records = [record for record in scan.records if record.seq > snapshot_seq]
    # Opening the writer repairs the torn tail; replay happens with the
    # log already open but logging suppressed (self._replaying).
    service._wal = WriteAheadLog(
        log_file, fsync=fsync, segment_bytes=segment_bytes
    )
    service._replay(records)
    return service


def inventory(wal_dir: str) -> Dict[str, Any]:
    """A machine-readable health report of one durability directory.

    Validates every snapshot's checksum and the log's CRC chain without
    building an engine; the ``insq recover`` subcommand prints this.
    """
    snapshots = []
    latest_valid: Optional[int] = None
    for wal_seq, path in list_snapshots(wal_dir):
        entry: Dict[str, Any] = {
            "wal_seq": wal_seq,
            "path": path,
            "bytes": os.path.getsize(path),
        }
        try:
            read_snapshot(path)
            entry["valid"] = True
            latest_valid = wal_seq
        except SnapshotError as error:
            entry["valid"] = False
            entry["error"] = str(error)
        snapshots.append(entry)

    log_file = wal_path(wal_dir)
    wal_report: Dict[str, Any] = {"path": log_file, "exists": os.path.exists(log_file)}
    chain_records = ()
    chain_corrupt = False
    if wal_report["exists"]:
        wal_report["bytes"] = os.path.getsize(log_file)
        try:
            scan = scan_wal(log_file)
            wal_report.update(
                records=len(scan.records),
                last_seq=scan.records[-1].seq if scan.records else 0,
                valid_bytes=scan.valid_bytes,
                torn_bytes=scan.torn_bytes,
                corrupt=False,
            )
        except WALCorruptError as error:
            wal_report.update(corrupt=True, error=str(error))

    sealed = list_segments(str(wal_dir))
    segment_report: Dict[str, Any] = {
        "count": len(sealed),
        "bytes": sum(os.path.getsize(path) for _, _, path in sealed),
        "first_seq": sealed[0][0] if sealed else None,
        "last_seq": sealed[-1][1] if sealed else None,
    }
    reclaimable = [
        (last_seq, path)
        for _, last_seq, path in sealed
        if latest_valid is not None and last_seq <= latest_valid
    ]
    segment_report["reclaimable_segments"] = len(reclaimable)
    segment_report["reclaimable_bytes"] = sum(
        os.path.getsize(path) for _, path in reclaimable
    )

    if not wal_report.get("corrupt", False):
        try:
            chain_records = scan_chain(log_file).records
        except WALCorruptError as error:
            chain_corrupt = True
            segment_report["error"] = str(error)

    replay_records: Optional[int] = None
    corrupt = wal_report.get("corrupt", False) or chain_corrupt
    if latest_valid is not None and not corrupt:
        replay_records = sum(
            1 for record in chain_records if record.seq > latest_valid
        )
    return {
        "directory": str(wal_dir),
        "snapshots": snapshots,
        "latest_valid_snapshot_seq": latest_valid,
        "wal": wal_report,
        "segments": segment_report,
        "replay_records": replay_records,
        "healthy": latest_valid is not None and not corrupt,
    }
