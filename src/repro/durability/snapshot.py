"""Checksummed, atomically-written engine snapshots.

A snapshot captures one :class:`~repro.core.engine.ServingEngine`'s *full*
serving state — shared index, registered query processors (prefetched
sets, guard sets, validity), epoch counter and
:class:`~repro.core.stats.CommunicationStats` — so that recovery restores
not just the data but the exact processor state: future answers *and*
future communication counters continue bit-identically (the restart-and-
replay oracle of ``tests/durability/``).

Container format::

    [8-byte magic] [u64 wal_seq] [u64 payload length] [32-byte sha256] [payload]

The payload is a pickle of an arbitrary snapshot object (the recovery
layer stores the engine plus lightweight session descriptors); ``wal_seq``
names the last write-ahead-log record the state includes, so replay
resumes exactly after it.  The digest covers the payload; any mismatch —
bit rot, a torn write that somehow survived the atomic rename — raises
the typed :class:`~repro.errors.SnapshotError`, and
:func:`load_latest_snapshot` falls back to the previous valid snapshot.

Write protocol: serialize to ``<name>.tmp`` in the same directory, flush,
fsync, ``os.replace`` onto the final name, then fsync the directory — a
crash at any point leaves either the old snapshot set or the old set plus
one complete new snapshot, never a half-written visible file.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import sys
from typing import Any, List, Tuple

from repro.errors import SnapshotError

__all__ = [
    "list_snapshots",
    "load_latest_snapshot",
    "read_snapshot",
    "write_snapshot",
]

#: File magic: identifies (and versions) the container layout.
SNAPSHOT_MAGIC = b"INSQSNP1"

_HEADER = struct.Struct("!QQ")  # wal_seq, payload length
_DIGEST_BYTES = 32

#: Engine state graphs (Delaunay adjacency, shortest-path trees) can be
#: recursive to O(n) depth; pickling them needs more headroom than the
#: default interpreter limit.
_RECURSION_LIMIT = 100_000

_PREFIX = "snapshot-"
_SUFFIX = ".snap"


def _snapshot_name(wal_seq: int) -> str:
    return f"{_PREFIX}{wal_seq:012d}{_SUFFIX}"


def _pickle(payload: Any) -> bytes:
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, _RECURSION_LIMIT))
    try:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        sys.setrecursionlimit(limit)


def _unpickle(data: bytes) -> Any:
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, _RECURSION_LIMIT))
    try:
        return pickle.loads(data)
    finally:
        sys.setrecursionlimit(limit)


def write_snapshot(directory: str, payload: Any, wal_seq: int) -> str:
    """Atomically write one snapshot; returns the final file path.

    Args:
        directory: the durability directory (created if missing).
        payload: any picklable snapshot object.
        wal_seq: the last WAL sequence number the state includes (0 for
            the initial, pre-log state).
    """
    os.makedirs(directory, exist_ok=True)
    data = _pickle(payload)
    digest = hashlib.sha256(data).digest()
    final_path = os.path.join(directory, _snapshot_name(wal_seq))
    tmp_path = final_path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(SNAPSHOT_MAGIC)
        handle.write(_HEADER.pack(wal_seq, len(data)))
        handle.write(digest)
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, final_path)
    # The rename itself must survive a crash: fsync the directory entry.
    directory_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)
    return final_path


def read_snapshot(path: str) -> Tuple[int, Any]:
    """Read and validate one snapshot; returns ``(wal_seq, payload)``.

    Raises:
        SnapshotError: bad magic, truncated container, length mismatch or
            checksum failure.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    header_end = len(SNAPSHOT_MAGIC) + _HEADER.size + _DIGEST_BYTES
    if len(data) < header_end:
        raise SnapshotError(f"{path}: truncated snapshot header")
    if data[: len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise SnapshotError(f"{path}: bad snapshot magic")
    wal_seq, length = _HEADER.unpack_from(data, len(SNAPSHOT_MAGIC))
    digest = data[len(SNAPSHOT_MAGIC) + _HEADER.size : header_end]
    payload = data[header_end:]
    if len(payload) != length:
        raise SnapshotError(
            f"{path}: snapshot declares {length} payload bytes but carries "
            f"{len(payload)}"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise SnapshotError(f"{path}: snapshot checksum mismatch")
    try:
        return wal_seq, _unpickle(payload)
    except Exception as error:  # a valid checksum over an unloadable pickle
        raise SnapshotError(f"{path}: snapshot payload failed to load: {error}")


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """``(wal_seq, path)`` for every snapshot file, newest last.

    Lists by filename only — validation happens when a snapshot is read.
    """
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
            continue
        seq_text = name[len(_PREFIX) : -len(_SUFFIX)]
        try:
            seq = int(seq_text)
        except ValueError:
            continue
        found.append((seq, os.path.join(directory, name)))
    return sorted(found)


def load_latest_snapshot(directory: str) -> Tuple[int, Any, str]:
    """Load the newest *valid* snapshot: ``(wal_seq, payload, path)``.

    A corrupt newest snapshot (failed checksum, torn tmp leftovers are
    never visible, but bit rot happens) is skipped and the previous valid
    one is used — the WAL suffix replayed on top simply grows.

    Raises:
        SnapshotError: when the directory holds no valid snapshot at all.
    """
    candidates = list_snapshots(directory)
    if not candidates:
        raise SnapshotError(f"{directory}: no snapshots found")
    last_error: SnapshotError = SnapshotError(
        f"{directory}: no valid snapshot found"
    )
    for wal_seq, path in reversed(candidates):
        try:
            read_seq, payload = read_snapshot(path)
            return read_seq, payload, path
        except SnapshotError as error:
            last_error = error
    raise SnapshotError(
        f"{directory}: every snapshot failed validation "
        f"(latest failure: {last_error})"
    )
