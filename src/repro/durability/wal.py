"""The write-ahead update log: every served operation, on disk, in order.

One :class:`WriteAheadLog` file records the full successful request stream
of a :class:`~repro.durability.recovery.DurableKNNService` — session
opens/closes, position updates, refreshes and :class:`~repro.service.
messages.UpdateBatch` epochs — as codec-encoded frames (the exact wire
representation of :mod:`repro.transport.codec`, so the log format *is* the
protocol).  Replaying the log against a snapshot reproduces the engine
bit-identically; see :mod:`repro.durability.recovery` for the contract.

Record framing, after an 8-byte file magic::

    [u32 payload length] [u64 sequence number] [u32 CRC32] [payload]

The CRC covers the sequence number and the payload, and sequence numbers
are strictly consecutive, so the reader can tell the two failure shapes
apart:

* a **torn tail** — the file ends before a record completes (the expected
  shape after a crash mid-append, at *any* byte offset) — is repaired by
  truncating to the last complete record;
* a **corrupt record** — intact framing but mangled content (CRC or
  sequence mismatch, or an impossible declared length) — raises the typed
  :class:`~repro.errors.WALCorruptError`; corruption in the middle of a
  log is not survivable by truncation and must fail loudly.

Durability contract: every append is flushed to the OS (``file.flush``)
before the call returns, so a killed *process* never loses an appended
record.  Whether the append also survives a machine crash is the fsync
policy: ``"always"`` fsyncs every append, ``"batch"`` fsyncs only on
:meth:`WriteAheadLog.sync` and close, ``"off"`` never fsyncs.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.errors import ConfigurationError, WALCorruptError
from repro.transport.codec import MAX_FRAME_BYTES, decode, encode

__all__ = ["WALRecord", "WALScan", "WriteAheadLog", "replay_wal", "scan_wal"]

#: File magic: identifies (and versions) the record framing below.
WAL_MAGIC = b"INSQWAL1"

_HEADER = struct.Struct("!IQI")  # payload length, sequence, crc32
_SEQ = struct.Struct("!Q")

#: Sanity bound on one record's payload (a codec frame can't exceed its
#: own limit, so a larger declared length can only be corruption).
_MAX_PAYLOAD = MAX_FRAME_BYTES

FSYNC_POLICIES = ("always", "batch", "off")


@dataclass(frozen=True)
class WALRecord:
    """One decoded log record.

    Attributes:
        seq: the record's sequence number (consecutive from 1).
        message: the decoded protocol message.
        offset: byte offset of the record's header in the file.
    """

    seq: int
    message: Any
    offset: int


@dataclass(frozen=True)
class WALScan:
    """The outcome of scanning one log file.

    Attributes:
        records: every complete, CRC-valid record, in order.
        valid_bytes: file offset up to which the log is intact (magic plus
            complete records) — the truncation point that repairs a torn
            tail.
        torn_bytes: bytes past ``valid_bytes`` (0 for a cleanly closed
            log).
        next_seq: the sequence number the next append must carry.
    """

    records: Tuple[WALRecord, ...]
    valid_bytes: int
    torn_bytes: int

    @property
    def next_seq(self) -> int:
        return self.records[-1].seq + 1 if self.records else 1


def _crc(seq: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(_SEQ.pack(seq)))


def scan_wal(path: str) -> WALScan:
    """Read a log file, separating intact records from the torn tail.

    Raises:
        WALCorruptError: when the magic is wrong or a *complete* record
            fails its CRC/sequence check (corruption, not truncation) —
            including a declared payload length beyond the codec's frame
            limit, which no legitimate writer can produce.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < len(WAL_MAGIC):
        if data and not WAL_MAGIC.startswith(data):
            raise WALCorruptError(f"{path}: bad WAL magic")
        # A file cut inside the magic is a torn (empty) log.
        return WALScan(records=(), valid_bytes=0, torn_bytes=len(data))
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WALCorruptError(f"{path}: bad WAL magic")
    records: List[WALRecord] = []
    offset = len(WAL_MAGIC)
    expected_seq = 1
    while True:
        if offset + _HEADER.size > len(data):
            break  # torn inside a header
        length, seq, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_PAYLOAD:
            raise WALCorruptError(
                f"{path}: record at offset {offset} declares an impossible "
                f"payload of {length} bytes"
            )
        end = offset + _HEADER.size + length
        if end > len(data):
            break  # torn inside a payload
        payload = data[offset + _HEADER.size : end]
        if _crc(seq, payload) != crc:
            raise WALCorruptError(
                f"{path}: CRC mismatch in record at offset {offset} "
                f"(seq {seq})"
            )
        if seq != expected_seq:
            raise WALCorruptError(
                f"{path}: record at offset {offset} carries seq {seq}, "
                f"expected {expected_seq}"
            )
        records.append(WALRecord(seq=seq, message=decode(payload), offset=offset))
        expected_seq += 1
        offset = end
    return WALScan(
        records=tuple(records),
        valid_bytes=offset,
        torn_bytes=len(data) - offset,
    )


def replay_wal(path: str, after_seq: int = 0) -> List[WALRecord]:
    """The records to replay: everything intact with ``seq > after_seq``.

    The torn tail (if any) is silently skipped — those appends never
    acknowledged, so by the log-after-execute contract the operations they
    would describe count as never having happened.
    """
    scan = scan_wal(path)
    return [record for record in scan.records if record.seq > after_seq]


class WriteAheadLog:
    """Append-only log of codec-encoded protocol messages.

    Opening an *existing* log repairs it first: the file is scanned, a
    torn tail (from a crash mid-append) is truncated away, and appending
    resumes at the next sequence number — so a recovered service reuses
    the same file.  Opening a corrupt log (CRC failure in an intact
    record) raises instead; corruption is not survivable by truncation.

    Args:
        path: the log file (created, with its parent directory, if
            missing).
        fsync: ``"always"`` (fsync every append), ``"batch"`` (fsync on
            :meth:`sync` and :meth:`close` only) or ``"off"``.  Every
            policy still flushes each append to the OS, so records survive
            a killed process; the policy only decides what survives a
            machine crash.
    """

    def __init__(self, path: str, fsync: str = "batch"):
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self._path = str(path)
        self._fsync = fsync
        self._closed = False
        parent = os.path.dirname(self._path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if os.path.exists(self._path):
            scan = scan_wal(self._path)  # raises on corruption
            if scan.torn_bytes:
                with open(self._path, "r+b") as handle:
                    handle.truncate(scan.valid_bytes)
            self._next_seq = scan.next_seq
            self._handle: io.BufferedWriter = open(self._path, "ab")
            if scan.valid_bytes == 0:
                # The crash tore the file inside the magic itself; the
                # truncation above emptied it, so re-seed the magic.
                self._handle.write(WAL_MAGIC)
                self._handle.flush()
                os.fsync(self._handle.fileno())
        else:
            self._next_seq = 1
            self._handle = open(self._path, "ab")
            self._handle.write(WAL_MAGIC)
            self._handle.flush()
            os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """The log file path."""
        return self._path

    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`append` will carry."""
        return self._next_seq

    @property
    def last_seq(self) -> int:
        """Sequence number of the last appended record (0 when empty)."""
        return self._next_seq - 1

    @property
    def fsync_policy(self) -> str:
        """The configured fsync policy."""
        return self._fsync

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"WriteAheadLog({self._path!r}, fsync={self._fsync!r}, "
            f"last_seq={self.last_seq}, {state})"
        )

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, message: Any) -> int:
        """Encode and append one protocol message; returns its seq number.

        The record is flushed to the OS before this returns (killed
        processes lose nothing); it is additionally fsynced under the
        ``"always"`` policy.
        """
        if self._closed:
            raise ConfigurationError("cannot append to a closed WriteAheadLog")
        payload = encode(message)
        seq = self._next_seq
        self._handle.write(_HEADER.pack(len(payload), seq, _crc(seq, payload)))
        self._handle.write(payload)
        self._handle.flush()
        if self._fsync == "always":
            os.fsync(self._handle.fileno())
        self._next_seq = seq + 1
        return seq

    def sync(self) -> None:
        """Force appended records to stable storage (a barrier fsync)."""
        if self._closed:
            return
        self._handle.flush()
        if self._fsync != "off":
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Sync (per policy) and close the file (idempotent)."""
        if self._closed:
            return
        self.sync()
        self._closed = True
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
