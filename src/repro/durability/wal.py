"""The write-ahead update log: every served operation, on disk, in order.

One :class:`WriteAheadLog` file records the full successful request stream
of a :class:`~repro.durability.recovery.DurableKNNService` — session
opens/closes, position updates, refreshes and :class:`~repro.service.
messages.UpdateBatch` epochs — as codec-encoded frames (the exact wire
representation of :mod:`repro.transport.codec`, so the log format *is* the
protocol).  Replaying the log against a snapshot reproduces the engine
bit-identically; see :mod:`repro.durability.recovery` for the contract.

Record framing, after an 8-byte file magic::

    [u32 payload length] [u64 sequence number] [u32 CRC32] [payload]

The CRC covers the sequence number and the payload, and sequence numbers
are strictly consecutive, so the reader can tell the two failure shapes
apart:

* a **torn tail** — the file ends before a record completes (the expected
  shape after a crash mid-append, at *any* byte offset) — is repaired by
  truncating to the last complete record;
* a **corrupt record** — intact framing but mangled content (CRC or
  sequence mismatch, or an impossible declared length) — raises the typed
  :class:`~repro.errors.WALCorruptError`; corruption in the middle of a
  log is not survivable by truncation and must fail loudly.

Durability contract: every append is flushed to the OS (``file.flush``)
before the call returns, so a killed *process* never loses an appended
record.  Whether the append also survives a machine crash is the fsync
policy: ``"always"`` fsyncs every append, ``"group"`` batches the appends
of a bounded latency window into one fsync (callers block in
:meth:`WriteAheadLog.wait_durable` until their record is covered, so the
acknowledged prefix is exactly as durable as ``"always"`` at amortized
cost), ``"batch"`` fsyncs only on :meth:`WriteAheadLog.sync` and close,
``"off"`` never fsyncs.

Segment rotation: with ``segment_bytes`` set, a filled active log is
*sealed* — renamed to ``wal-<first seq>-<last seq>.seg`` beside it — and a
fresh active file continues the sequence.  Sealed segments are immutable;
once a snapshot covers a segment's last record it can be deleted
(:func:`purge_segments`), so the log stops growing without bound.  The
active file is always ``wal.log`` and a never-rotated log's on-disk bytes
are unchanged from earlier releases.
"""

from __future__ import annotations

import io
import os
import re
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.errors import ConfigurationError, WALCorruptError
from repro.obs.metrics import (
    counter as _obs_counter,
    histogram as _obs_histogram,
    start_timer,
)
from repro.transport.codec import MAX_FRAME_BYTES, decode, encode

# Durability-path latency instruments.  ``insq_wal_fsyncs_total`` mirrors
# the per-log ``fsync_count`` attribute (the durability tests' source of
# truth) at the same increment site; the group-occupancy histogram counts
# how many appended records each group commit's fsync covered.
_WAL_APPEND_SECONDS = _obs_histogram("insq_wal_append_seconds")
_WAL_FSYNC_SECONDS = _obs_histogram("insq_wal_fsync_seconds")
_WAL_GROUP_OCCUPANCY = _obs_histogram("insq_wal_group_batch_occupancy")
_WAL_FSYNCS_TOTAL = _obs_counter("insq_wal_fsyncs_total")

__all__ = [
    "WALRecord",
    "WALScan",
    "WriteAheadLog",
    "list_segments",
    "purge_segments",
    "replay_wal",
    "scan_chain",
    "scan_wal",
    "segment_name",
]

#: File magic: identifies (and versions) the record framing below.
WAL_MAGIC = b"INSQWAL1"

_HEADER = struct.Struct("!IQI")  # payload length, sequence, crc32
_SEQ = struct.Struct("!Q")

#: Sanity bound on one record's payload (a codec frame can't exceed its
#: own limit, so a larger declared length can only be corruption).
_MAX_PAYLOAD = MAX_FRAME_BYTES

FSYNC_POLICIES = ("always", "group", "batch", "off")

#: Default group-commit window: how long the syncer waits after waking so
#: concurrent appends can pile into the same fsync.
GROUP_WINDOW_SECONDS = 0.002

#: Sealed-segment naming: first and last contained sequence number.
_SEGMENT_RE = re.compile(r"^wal-(\d{12})-(\d{12})\.seg$")


def segment_name(first_seq: int, last_seq: int) -> str:
    """The filename a sealed segment spanning ``[first_seq, last_seq]``."""
    return f"wal-{first_seq:012d}-{last_seq:012d}.seg"


def list_segments(directory: str) -> List[Tuple[int, int, str]]:
    """Sealed segments in ``directory`` as ``(first_seq, last_seq, path)``,
    ordered by sequence."""
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        match = _SEGMENT_RE.match(name)
        if match:
            found.append(
                (
                    int(match.group(1)),
                    int(match.group(2)),
                    os.path.join(directory, name),
                )
            )
    found.sort()
    return found


def purge_segments(directory: str, up_to_seq: int) -> Tuple[int, int]:
    """Delete sealed segments wholly covered by ``up_to_seq``.

    A segment is reclaimable once a durable snapshot's ``wal_seq`` reaches
    its last record — replay will never need it again.  The active file is
    never touched.  Returns ``(segments_deleted, bytes_reclaimed)``.
    """
    deleted = reclaimed = 0
    for _, last_seq, path in list_segments(directory):
        if last_seq <= up_to_seq:
            reclaimed += os.path.getsize(path)
            os.unlink(path)
            deleted += 1
    if deleted:
        _fsync_directory(directory)
    return deleted, reclaimed


def _fsync_directory(directory: str) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass(frozen=True)
class WALRecord:
    """One decoded log record.

    Attributes:
        seq: the record's sequence number (consecutive from 1).
        message: the decoded protocol message.
        offset: byte offset of the record's header in the file.
    """

    seq: int
    message: Any
    offset: int


@dataclass(frozen=True)
class WALScan:
    """The outcome of scanning one log file.

    Attributes:
        records: every complete, CRC-valid record, in order.
        valid_bytes: file offset up to which the log is intact (magic plus
            complete records) — the truncation point that repairs a torn
            tail.
        torn_bytes: bytes past ``valid_bytes`` (0 for a cleanly closed
            log).
        start_seq: the sequence number the file's first record carries (or
            would carry, for an empty file) — 1 unless the file is a
            post-rotation active segment.
        next_seq: the sequence number the next append must carry.
    """

    records: Tuple[WALRecord, ...]
    valid_bytes: int
    torn_bytes: int
    start_seq: int = 1

    @property
    def next_seq(self) -> int:
        return self.records[-1].seq + 1 if self.records else self.start_seq


def _crc(seq: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(_SEQ.pack(seq)))


def scan_wal(path: str, expect_start: Optional[int] = None) -> WALScan:
    """Read a log file, separating intact records from the torn tail.

    Args:
        path: the log file to scan.
        expect_start: the sequence number the first record must carry.
            ``None`` (the default) accepts whatever the file starts with —
            1 for a never-rotated log, the continuation point for a
            post-rotation active segment — and only enforces that the
            records are strictly consecutive.

    Raises:
        WALCorruptError: when the magic is wrong or a *complete* record
            fails its CRC/sequence check (corruption, not truncation) —
            including a declared payload length beyond the codec's frame
            limit, which no legitimate writer can produce.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < len(WAL_MAGIC):
        if data and not WAL_MAGIC.startswith(data):
            raise WALCorruptError(f"{path}: bad WAL magic")
        # A file cut inside the magic is a torn (empty) log.
        return WALScan(
            records=(),
            valid_bytes=0,
            torn_bytes=len(data),
            start_seq=expect_start or 1,
        )
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WALCorruptError(f"{path}: bad WAL magic")
    records: List[WALRecord] = []
    offset = len(WAL_MAGIC)
    expected_seq = expect_start
    while True:
        if offset + _HEADER.size > len(data):
            break  # torn inside a header
        length, seq, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_PAYLOAD:
            raise WALCorruptError(
                f"{path}: record at offset {offset} declares an impossible "
                f"payload of {length} bytes"
            )
        end = offset + _HEADER.size + length
        if end > len(data):
            break  # torn inside a payload
        payload = data[offset + _HEADER.size : end]
        if _crc(seq, payload) != crc:
            raise WALCorruptError(
                f"{path}: CRC mismatch in record at offset {offset} "
                f"(seq {seq})"
            )
        if expected_seq is None:
            if seq < 1:
                raise WALCorruptError(
                    f"{path}: record at offset {offset} carries seq {seq}"
                )
            expected_seq = seq
        if seq != expected_seq:
            raise WALCorruptError(
                f"{path}: record at offset {offset} carries seq {seq}, "
                f"expected {expected_seq}"
            )
        records.append(WALRecord(seq=seq, message=decode(payload), offset=offset))
        expected_seq += 1
        offset = end
    return WALScan(
        records=tuple(records),
        valid_bytes=offset,
        torn_bytes=len(data) - offset,
        start_seq=records[0].seq if records else (expect_start or 1),
    )


def scan_chain(path: str) -> WALScan:
    """Scan a log *chain*: every sealed segment beside ``path``, then the
    active file, validated as one strictly-consecutive sequence.

    Sealed segments were fsynced before their rename, so a torn tail
    inside one — unlike in the active file — is corruption, not a crash
    shape.  The chain may start past sequence 1 (earlier segments purged
    behind a snapshot); :attr:`WALScan.start_seq` reports where it begins.
    """
    directory = os.path.dirname(path) or "."
    records: List[WALRecord] = []
    expected: Optional[int] = None
    for first_seq, last_seq, segment in list_segments(directory):
        if expected is not None and first_seq != expected:
            raise WALCorruptError(
                f"{segment}: segment chain gap — starts at seq {first_seq}, "
                f"expected {expected}"
            )
        scan = scan_wal(segment, expect_start=first_seq)
        if scan.torn_bytes:
            raise WALCorruptError(
                f"{segment}: sealed segment has a torn tail "
                f"({scan.torn_bytes} bytes)"
            )
        if not scan.records or scan.records[-1].seq != last_seq:
            raise WALCorruptError(
                f"{segment}: sealed segment ends at seq "
                f"{scan.records[-1].seq if scan.records else 'nothing'}, "
                f"name promises {last_seq}"
            )
        records.extend(scan.records)
        expected = last_seq + 1
    active_valid = active_torn = 0
    if os.path.exists(path):
        scan = scan_wal(path, expect_start=expected)
        records.extend(scan.records)
        active_valid, active_torn = scan.valid_bytes, scan.torn_bytes
    return WALScan(
        records=tuple(records),
        valid_bytes=active_valid,
        torn_bytes=active_torn,
        start_seq=records[0].seq if records else (expected or 1),
    )


def replay_wal(path: str, after_seq: int = 0) -> List[WALRecord]:
    """The records to replay: everything intact with ``seq > after_seq``,
    across the whole segment chain.

    The torn tail (if any) is silently skipped — those appends never
    acknowledged, so by the log-after-execute contract the operations they
    would describe count as never having happened.
    """
    scan = scan_chain(path)
    return [record for record in scan.records if record.seq > after_seq]


class WriteAheadLog:
    """Append-only log of codec-encoded protocol messages.

    Opening an *existing* log repairs it first: the file is scanned, a
    torn tail (from a crash mid-append) is truncated away, and appending
    resumes at the next sequence number — so a recovered service reuses
    the same file.  Opening a corrupt log (CRC failure in an intact
    record) raises instead; corruption is not survivable by truncation.

    Args:
        path: the log file (created, with its parent directory, if
            missing).
        fsync: ``"always"`` (fsync every append), ``"group"`` (a
            background syncer batches a bounded window of appends into one
            fsync; pair with :meth:`wait_durable` before acknowledging),
            ``"batch"`` (fsync on :meth:`sync` and :meth:`close` only) or
            ``"off"``.  Every policy still flushes each append to the OS,
            so records survive a killed process; the policy only decides
            what survives a machine crash.
        group_window: the group-commit latency bound, in seconds — how
            long the syncer lets appends accumulate before fsyncing them
            as one batch (``"group"`` policy only).
        segment_bytes: seal and rotate the active file once it reaches
            this many bytes (``None`` disables rotation).
        start_seq: sequence number a *new or emptied* active file starts
            at; derived from the sealed segments beside ``path`` when not
            given.  A file that already holds records dictates its own
            continuation regardless.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "batch",
        group_window: float = GROUP_WINDOW_SECONDS,
        segment_bytes: Optional[int] = None,
        start_seq: Optional[int] = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self._path = str(path)
        self._fsync = fsync
        self._group_window = float(group_window)
        self._segment_bytes = segment_bytes
        self._closed = False
        self.append_count = 0
        self.fsync_count = 0
        self.rotations = 0
        self._lock = threading.Lock()
        parent = os.path.dirname(self._path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if start_seq is None:
            # Sealed segments pin where the active file must continue.
            # With none (never rotated, or every segment purged by a
            # checkpoint), the active file's own first record is the
            # authority — scan_wal infers it below.
            sealed = list_segments(os.path.dirname(self._path) or ".")
            start_seq = sealed[-1][1] + 1 if sealed else None
        if os.path.exists(self._path):
            scan = scan_wal(self._path)  # raises on corruption
            if scan.records:
                if start_seq is not None and scan.records[0].seq != start_seq:
                    raise WALCorruptError(
                        f"{self._path}: active log starts at seq "
                        f"{scan.records[0].seq}, the segment chain expects "
                        f"{start_seq}"
                    )
                start_seq = scan.records[0].seq
            elif start_seq is None:
                start_seq = scan.start_seq
            if scan.torn_bytes:
                with open(self._path, "r+b") as handle:
                    handle.truncate(scan.valid_bytes)
            self._next_seq = scan.records[-1].seq + 1 if scan.records else start_seq
            self._active_start_seq = start_seq
            self._handle: io.BufferedWriter = open(self._path, "ab")
            if scan.valid_bytes == 0:
                # The crash tore the file inside the magic itself; the
                # truncation above emptied it, so re-seed the magic.
                self._handle.write(WAL_MAGIC)
                self._handle.flush()
                self._do_fsync()
        else:
            if start_seq is None:
                start_seq = 1
            self._next_seq = start_seq
            self._active_start_seq = start_seq
            self._handle = open(self._path, "ab")
            self._handle.write(WAL_MAGIC)
            self._handle.flush()
            self._do_fsync()
        self._synced_seq = self._next_seq - 1
        self._sync_error: Optional[BaseException] = None
        self._group_cond = threading.Condition(self._lock)
        self._syncer: Optional[threading.Thread] = None
        if self._fsync == "group":
            self._syncer = threading.Thread(
                target=self._group_sync_loop, name="wal-group-sync", daemon=True
            )
            self._syncer.start()

    def _do_fsync(self) -> None:
        started = start_timer()
        os.fsync(self._handle.fileno())
        _WAL_FSYNC_SECONDS.observe_since(started)
        self.fsync_count += 1
        _WAL_FSYNCS_TOTAL.inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """The log file path."""
        return self._path

    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`append` will carry."""
        return self._next_seq

    @property
    def last_seq(self) -> int:
        """Sequence number of the last appended record (0 when empty)."""
        return self._next_seq - 1

    @property
    def fsync_policy(self) -> str:
        """The configured fsync policy."""
        return self._fsync

    @property
    def synced_seq(self) -> int:
        """Highest sequence number known to be on stable storage (only
        meaningful under the ``"always"`` and ``"group"`` policies)."""
        return self._synced_seq

    @property
    def closed(self) -> bool:
        return self._closed

    def segments(self) -> List[Tuple[int, int, str]]:
        """The sealed segments beside the active file, in order."""
        return list_segments(os.path.dirname(self._path) or ".")

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"WriteAheadLog({self._path!r}, fsync={self._fsync!r}, "
            f"last_seq={self.last_seq}, {state})"
        )

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, message: Any) -> int:
        """Encode and append one protocol message; returns its seq number.

        The record is flushed to the OS before this returns (killed
        processes lose nothing); it is additionally fsynced under the
        ``"always"`` policy.  Under ``"group"`` the background syncer is
        woken instead — call :meth:`wait_durable` with the returned seq
        before acknowledging the operation it logs.
        """
        started = start_timer()
        payload = encode(message)
        with self._lock:
            if self._closed:
                raise ConfigurationError(
                    "cannot append to a closed WriteAheadLog"
                )
            seq = self._next_seq
            self._handle.write(_HEADER.pack(len(payload), seq, _crc(seq, payload)))
            self._handle.write(payload)
            self._handle.flush()
            self.append_count += 1
            self._next_seq = seq + 1
            if self._fsync == "always":
                self._do_fsync()
                self._synced_seq = seq
            if (
                self._segment_bytes is not None
                and self._handle.tell() >= self._segment_bytes
            ):
                self._rotate_locked()
            if self._fsync == "group":
                self._group_cond.notify_all()
        _WAL_APPEND_SECONDS.observe_since(started)
        return seq

    def wait_durable(self, seq: Optional[int] = None) -> None:
        """Block until record ``seq`` (default: the last append) is on
        stable storage — the acknowledgement barrier.

        ``"always"`` returns immediately (the append already fsynced);
        ``"group"`` waits for the covering group commit — many waiters
        share one fsync; ``"batch"`` issues a barrier fsync; ``"off"``
        is a no-op, because that policy promises nothing.
        """
        if seq is None:
            seq = self._next_seq - 1
        if self._fsync in ("always", "off"):
            return
        if self._fsync == "batch":
            self.sync()
            return
        with self._group_cond:
            while self._synced_seq < seq and not self._closed:
                if self._sync_error is not None:
                    raise self._sync_error
                self._group_cond.wait()
            if self._sync_error is not None:
                raise self._sync_error

    def _group_sync_loop(self) -> None:
        while True:
            with self._group_cond:
                while not self._closed and self._synced_seq >= self._next_seq - 1:
                    self._group_cond.wait()
                if self._closed:
                    return
            # The latency window: appends landing now share the fsync.
            if self._group_window > 0:
                time.sleep(self._group_window)
            with self._group_cond:
                if self._closed:
                    return
                target = self._next_seq - 1
                if target <= self._synced_seq:
                    continue
                # How many appends this group commit's single fsync covers.
                _WAL_GROUP_OCCUPANCY.observe(float(target - self._synced_seq))
                try:
                    self._handle.flush()
                    self._do_fsync()
                except BaseException as error:  # pragma: no cover - disk loss
                    self._sync_error = error
                    self._group_cond.notify_all()
                    return
                self._synced_seq = target
                self._group_cond.notify_all()

    # ------------------------------------------------------------------
    # Segment rotation
    # ------------------------------------------------------------------
    def _rotate_locked(self) -> None:
        """Seal the active file and start a fresh one (lock held)."""
        first, last = self._active_start_seq, self._next_seq - 1
        if last < first:
            return  # nothing to seal
        self._handle.flush()
        if self._fsync != "off":
            self._do_fsync()
        self._handle.close()
        directory = os.path.dirname(self._path) or "."
        os.rename(self._path, os.path.join(directory, segment_name(first, last)))
        self._handle = open(self._path, "ab")
        self._handle.write(WAL_MAGIC)
        self._handle.flush()
        if self._fsync != "off":
            self._do_fsync()
            _fsync_directory(directory)
            self._synced_seq = max(self._synced_seq, last)
            if self._fsync == "group":
                self._group_cond.notify_all()
        self._active_start_seq = self._next_seq
        self.rotations += 1

    def sync(self) -> None:
        """Force appended records to stable storage (a barrier fsync)."""
        if self._closed:
            return
        with self._lock:
            if self._closed:
                return
            self._handle.flush()
            if self._fsync != "off":
                self._do_fsync()
                self._synced_seq = self._next_seq - 1
                if self._fsync == "group":
                    self._group_cond.notify_all()

    def close(self) -> None:
        """Sync (per policy) and close the file (idempotent)."""
        if self._closed:
            return
        self.sync()
        syncer = self._syncer
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._fsync == "group":
                self._group_cond.notify_all()
        if syncer is not None and syncer is not threading.current_thread():
            syncer.join(timeout=5.0)
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
