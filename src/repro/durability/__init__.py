"""Crash durability for the serving system: WAL + snapshots + recovery.

Three cooperating modules:

* :mod:`repro.durability.wal` — the write-ahead update log: every
  successful operation, appended as its codec wire frame with a CRC and a
  sequence number; readers repair torn tails and reject corruption with a
  typed error.
* :mod:`repro.durability.snapshot` — checksummed, atomically-renamed
  snapshots of full engine state, tagged with the WAL position they
  include.
* :mod:`repro.durability.recovery` — :class:`DurableKNNService` (a
  logging :class:`~repro.service.service.KNNService`) and
  :func:`recover_service`, which rebuilds one from the newest valid
  snapshot plus the WAL suffix, bit-identically.

See :mod:`repro.durability.recovery` for the precise durability contract.
"""

from repro.durability.recovery import (
    DurableKNNService,
    has_durable_state,
    inventory,
    open_durable_service,
    recover_service,
    wal_path,
)
from repro.durability.snapshot import (
    list_snapshots,
    load_latest_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.durability.wal import (
    WALRecord,
    WALScan,
    WriteAheadLog,
    list_segments,
    purge_segments,
    replay_wal,
    scan_chain,
    scan_wal,
)

__all__ = [
    "DurableKNNService",
    "WALRecord",
    "WALScan",
    "WriteAheadLog",
    "has_durable_state",
    "inventory",
    "list_segments",
    "list_snapshots",
    "load_latest_snapshot",
    "open_durable_service",
    "purge_segments",
    "read_snapshot",
    "recover_service",
    "replay_wal",
    "scan_chain",
    "scan_wal",
    "wal_path",
    "write_snapshot",
]
