"""Tests for repro.roadnet.knn (incremental network expansion)."""

import math

import pytest

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.roadnet.generators import grid_network, place_objects, random_planar_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.knn import (
    network_knn,
    network_knn_from_vertex,
    object_distances_from_location,
)
from repro.roadnet.location import NetworkLocation
from repro.roadnet.shortest_path import SearchStats, distances_from_location


def brute_force_network_knn(network, object_vertices, location, k):
    """Oracle: full Dijkstra from the location, then sort objects."""
    vertex_distances = distances_from_location(network, location)
    pairs = sorted(
        (vertex_distances.get(vertex, math.inf), index)
        for index, vertex in enumerate(object_vertices)
    )
    return pairs[:k]


class TestNetworkKNN:
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matches_brute_force_on_grid(self, k):
        network = grid_network(6, 6, spacing=10.0)
        objects = place_objects(network, 12, seed=91)
        edge = network.edges()[20]
        location = NetworkLocation(edge.edge_id, edge.length / 4.0)
        expected = brute_force_network_knn(network, objects, location, k)
        got = network_knn(network, objects, location, k)
        # Distances must match exactly; on ties the identity may differ.
        assert [round(d, 9) for _, d in got] == [round(d, 9) for d, _ in expected]
        for (index, distance), (expected_distance, _) in zip(got, expected):
            vertex_distances = distances_from_location(network, location)
            assert vertex_distances[objects[index]] == pytest.approx(distance)

    @pytest.mark.parametrize("k", [1, 4, 7])
    def test_matches_brute_force_on_random_planar(self, k):
        network = random_planar_network(50, extent=500.0, seed=92)
        objects = place_objects(network, 15, seed=93)
        edge = network.edges()[7]
        location = NetworkLocation(edge.edge_id, edge.length * 0.6)
        expected = brute_force_network_knn(network, objects, location, k)
        got = network_knn(network, objects, location, k)
        assert [round(d, 6) for _, d in got] == [round(d, 6) for d, _ in expected]

    def test_results_are_sorted_by_distance(self):
        network = grid_network(5, 5, spacing=10.0)
        objects = place_objects(network, 10, seed=94)
        location = NetworkLocation(network.edges()[3].edge_id, 2.0)
        result = network_knn(network, objects, location, 6)
        distances = [d for _, d in result]
        assert distances == sorted(distances)

    def test_k_validation(self):
        network = grid_network(3, 3)
        objects = place_objects(network, 4, seed=95)
        location = NetworkLocation(network.edges()[0].edge_id, 1.0)
        with pytest.raises(QueryError):
            network_knn(network, objects, location, 0)
        with pytest.raises(QueryError):
            network_knn(network, objects, location, 5)

    def test_multiple_objects_on_one_vertex(self):
        network = grid_network(3, 3, spacing=10.0)
        objects = [0, 0, 8]  # two objects share vertex 0
        location = NetworkLocation(network.find_edge(0, 1).edge_id, 1.0)
        result = network_knn(network, objects, location, 2)
        assert {index for index, _ in result} == {0, 1}
        assert all(distance == pytest.approx(1.0) for _, distance in result)

    def test_from_vertex_wrapper(self):
        network = grid_network(4, 4, spacing=10.0)
        objects = place_objects(network, 8, seed=96)
        result = network_knn_from_vertex(network, objects, 5, 3)
        assert len(result) == 3
        assert result[0][1] <= result[1][1] <= result[2][1]

    def test_search_stats_accumulate(self):
        network = grid_network(6, 6, spacing=10.0)
        objects = place_objects(network, 12, seed=97)
        stats = SearchStats()
        location = NetworkLocation(network.edges()[0].edge_id, 1.0)
        network_knn(network, objects, location, 3, stats=stats)
        assert stats.searches == 1
        assert stats.settled_vertices > 0


class TestObjectDistances:
    def test_full_network_distances(self):
        network = grid_network(4, 4, spacing=10.0)
        objects = place_objects(network, 6, seed=98)
        location = NetworkLocation(network.edges()[2].edge_id, 3.0)
        distances = object_distances_from_location(
            network, objects, location, object_indexes=[0, 2, 4]
        )
        oracle = distances_from_location(network, location)
        for index in [0, 2, 4]:
            assert distances[index] == pytest.approx(oracle[objects[index]])

    def test_restricted_requires_vertex_map(self):
        network = grid_network(3, 3)
        objects = place_objects(network, 3, seed=99)
        location = NetworkLocation(network.edges()[0].edge_id, 1.0)
        sub, vertex_map, _ = network.subnetwork([e.edge_id for e in network.edges()[:4]])
        from repro.errors import RoadNetworkError

        with pytest.raises(RoadNetworkError):
            object_distances_from_location(
                network, objects, location, object_indexes=[0], restricted=sub
            )

    def test_unreachable_object_gets_infinity(self):
        network = RoadNetwork()
        a = network.add_vertex(Point(0, 0))
        b = network.add_vertex(Point(10, 0))
        c = network.add_vertex(Point(50, 50))
        d = network.add_vertex(Point(60, 50))
        network.add_edge(a, b)
        network.add_edge(c, d)
        objects = [b, c]
        location = NetworkLocation(network.find_edge(a, b).edge_id, 2.0)
        distances = object_distances_from_location(
            network, objects, location, object_indexes=[0, 1]
        )
        assert distances[0] == pytest.approx(8.0)
        assert distances[1] == math.inf
