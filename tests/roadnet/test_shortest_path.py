"""Tests for repro.roadnet.shortest_path (cross-checked against networkx)."""

import math

import networkx as nx
import pytest

from repro.errors import RoadNetworkError
from repro.geometry.point import Point
from repro.roadnet.generators import grid_network, random_planar_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation
from repro.roadnet.shortest_path import (
    SearchStats,
    bounded_dijkstra,
    dijkstra,
    distances_from_location,
    multi_source_dijkstra,
    shortest_path_distance,
)


def to_networkx(network: RoadNetwork) -> nx.Graph:
    graph = nx.Graph()
    for vertex in network.vertices():
        graph.add_node(vertex)
    for edge in network.edges():
        # Parallel edges collapse to the shorter one, matching Dijkstra.
        if graph.has_edge(edge.u, edge.v):
            graph[edge.u][edge.v]["weight"] = min(graph[edge.u][edge.v]["weight"], edge.length)
        else:
            graph.add_edge(edge.u, edge.v, weight=edge.length)
    return graph


class TestDijkstra:
    def test_matches_networkx_on_grid(self):
        network = grid_network(5, 6, spacing=7.0)
        reference = nx.single_source_dijkstra_path_length(to_networkx(network), 0)
        computed = dijkstra(network, 0)
        assert computed.keys() == reference.keys()
        for vertex, distance in reference.items():
            assert computed[vertex] == pytest.approx(distance)

    def test_matches_networkx_on_random_planar(self):
        network = random_planar_network(40, extent=500.0, seed=81)
        source = network.vertices()[3]
        reference = nx.single_source_dijkstra_path_length(to_networkx(network), source)
        computed = dijkstra(network, source)
        for vertex, distance in reference.items():
            assert computed[vertex] == pytest.approx(distance)

    def test_unknown_source_raises(self):
        network = grid_network(2, 2)
        with pytest.raises(RoadNetworkError):
            dijkstra(network, 999)

    def test_stats_are_recorded(self):
        network = grid_network(4, 4)
        stats = SearchStats()
        dijkstra(network, 0, stats)
        assert stats.searches == 1
        assert stats.settled_vertices == 16
        assert stats.relaxed_edges > 0


class TestBoundedDijkstra:
    def test_radius_limits_settled_vertices(self):
        network = grid_network(6, 6, spacing=10.0)
        near = bounded_dijkstra(network, 0, radius=20.0)
        assert all(distance <= 20.0 for distance in near.values())
        everything = bounded_dijkstra(network, 0, radius=math.inf)
        assert len(near) < len(everything) == 36

    def test_zero_radius_only_source(self):
        network = grid_network(3, 3, spacing=10.0)
        assert bounded_dijkstra(network, 4, radius=0.0) == {4: 0.0}


class TestMultiSource:
    def test_owners_are_nearest_sources(self):
        network = grid_network(5, 5, spacing=10.0)
        sources = {0: 100, 24: 200}
        distances, owners = multi_source_dijkstra(network, sources)
        single_a = dijkstra(network, 0)
        single_b = dijkstra(network, 24)
        for vertex in network.vertices():
            assert distances[vertex] == pytest.approx(min(single_a[vertex], single_b[vertex]))
            if single_a[vertex] < single_b[vertex]:
                assert owners[vertex] == 100
            elif single_b[vertex] < single_a[vertex]:
                assert owners[vertex] == 200

    def test_requires_sources(self):
        with pytest.raises(RoadNetworkError):
            multi_source_dijkstra(grid_network(2, 2), {})

    def test_unknown_source_raises(self):
        with pytest.raises(RoadNetworkError):
            multi_source_dijkstra(grid_network(2, 2), {99: 1})


class TestLocationDistances:
    def test_distances_from_edge_midpoint(self):
        network = grid_network(3, 3, spacing=10.0)
        edge = network.find_edge(0, 1)
        location = NetworkLocation(edge.edge_id, 4.0)
        distances = distances_from_location(network, location)
        assert distances[0] == pytest.approx(4.0)
        assert distances[1] == pytest.approx(6.0)
        # Vertex 2 is reached through vertex 1.
        assert distances[2] == pytest.approx(16.0)

    def test_targets_stop_early(self):
        network = grid_network(8, 8, spacing=10.0)
        edge = network.find_edge(0, 1)
        location = NetworkLocation(edge.edge_id, 5.0)
        stats = SearchStats()
        distances = distances_from_location(network, location, targets={0, 1}, stats=stats)
        assert {0, 1} <= distances.keys()
        assert stats.settled_vertices < 64

    def test_location_distance_consistency_with_vertex_dijkstra(self):
        network = random_planar_network(30, extent=300.0, seed=82)
        edge = network.edges()[5]
        location = NetworkLocation(edge.edge_id, edge.length / 3.0)
        distances = distances_from_location(network, location)
        from_u = dijkstra(network, edge.u)
        from_v = dijkstra(network, edge.v)
        for vertex in network.vertices():
            expected = min(
                location.offset + from_u[vertex],
                (edge.length - location.offset) + from_v[vertex],
            )
            assert distances[vertex] <= expected + 1e-9


class TestPairDistance:
    def test_vertex_to_vertex(self):
        network = grid_network(4, 4, spacing=5.0)
        assert shortest_path_distance(network, 0, 15) == pytest.approx(30.0)

    def test_disconnected_returns_inf(self):
        network = RoadNetwork()
        a = network.add_vertex(Point(0, 0))
        b = network.add_vertex(Point(1, 0))
        c = network.add_vertex(Point(5, 5))
        d = network.add_vertex(Point(6, 5))
        network.add_edge(a, b)
        network.add_edge(c, d)
        assert shortest_path_distance(network, a, c) == math.inf

    def test_unknown_target_raises(self):
        network = grid_network(2, 2)
        with pytest.raises(RoadNetworkError):
            shortest_path_distance(network, 0, 999)
