"""Tests for repro.roadnet.network_voronoi."""

import pytest

from repro.errors import EmptyDatasetError, RoadNetworkError
from repro.geometry.point import Point
from repro.roadnet.generators import grid_network, place_objects, random_planar_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.network_voronoi import NetworkVoronoiDiagram
from repro.roadnet.shortest_path import dijkstra


class TestConstruction:
    def test_requires_objects(self):
        with pytest.raises(EmptyDatasetError):
            NetworkVoronoiDiagram(grid_network(2, 2), [])

    def test_unknown_object_vertex_raises(self):
        with pytest.raises(RoadNetworkError):
            NetworkVoronoiDiagram(grid_network(2, 2), [999])

    def test_object_count(self):
        network = grid_network(4, 4)
        objects = place_objects(network, 5, seed=100)
        diagram = NetworkVoronoiDiagram(network, objects)
        assert diagram.object_count() == 5
        assert diagram.object_vertices == objects


class TestVertexOwnership:
    def test_each_vertex_owned_by_its_nearest_object(self):
        network = grid_network(6, 6, spacing=10.0)
        objects = place_objects(network, 8, seed=101)
        diagram = NetworkVoronoiDiagram(network, objects)
        per_object = [dijkstra(network, vertex) for vertex in objects]
        for vertex in network.vertices():
            owner = diagram.vertex_owner(vertex)
            owner_distance = diagram.vertex_distance(vertex)
            best = min(per_object[i][vertex] for i in range(len(objects)))
            assert owner_distance == pytest.approx(best)
            assert per_object[owner][vertex] == pytest.approx(best)

    def test_object_vertices_own_themselves(self):
        network = grid_network(5, 5, spacing=10.0)
        objects = place_objects(network, 6, seed=102)
        diagram = NetworkVoronoiDiagram(network, objects)
        for index, vertex in enumerate(objects):
            assert diagram.vertex_distance(vertex) == pytest.approx(0.0)
            # The owner is an object at the same vertex (itself unless co-located).
            assert objects[diagram.vertex_owner(vertex)] == vertex


class TestEdgeOwnership:
    def test_split_edges_have_border_inside_the_edge(self):
        network = grid_network(6, 6, spacing=10.0)
        objects = place_objects(network, 6, seed=103)
        diagram = NetworkVoronoiDiagram(network, objects)
        found_split = False
        for edge in network.edges():
            ownership = diagram.edge_ownership(edge.edge_id)
            assert ownership is not None
            if ownership.is_split:
                found_split = True
                assert 0.0 <= ownership.border_offset <= edge.length
                # At the border point, the distances through the two owners
                # are equal.
                du = diagram.vertex_distance(edge.u) + ownership.border_offset
                dv = diagram.vertex_distance(edge.v) + (edge.length - ownership.border_offset)
                assert du == pytest.approx(dv)
        assert found_split, "expected at least one edge shared between two cells"

    def test_cell_lengths_sum_to_network_length(self):
        network = grid_network(5, 5, spacing=10.0)
        objects = place_objects(network, 5, seed=104)
        diagram = NetworkVoronoiDiagram(network, objects)
        total = sum(diagram.cell_length(i) for i in range(len(objects)))
        assert total == pytest.approx(network.total_length)


class TestNeighborRelation:
    def test_neighbor_map_is_symmetric(self):
        network = random_planar_network(40, extent=400.0, seed=105)
        objects = place_objects(network, 10, seed=106)
        diagram = NetworkVoronoiDiagram(network, objects)
        neighbor_map = diagram.neighbor_map()
        for index, neighbors in neighbor_map.items():
            assert index not in neighbors
            for other in neighbors:
                assert index in neighbor_map[other]

    def test_split_edge_owners_are_neighbors(self):
        network = grid_network(6, 6, spacing=10.0)
        objects = place_objects(network, 7, seed=107)
        diagram = NetworkVoronoiDiagram(network, objects)
        for edge in network.edges():
            ownership = diagram.edge_ownership(edge.edge_id)
            if ownership.is_split:
                assert ownership.owner_v in diagram.neighbors_of(ownership.owner_u)

    def test_every_object_has_a_neighbor_when_multiple_objects(self):
        network = grid_network(5, 5, spacing=10.0)
        objects = place_objects(network, 6, seed=108)
        diagram = NetworkVoronoiDiagram(network, objects)
        for index in range(len(objects)):
            assert diagram.neighbors_of(index)

    def test_colocated_objects_are_neighbors_and_share_neighbors(self):
        network = grid_network(4, 4, spacing=10.0)
        objects = [0, 0, 15]
        diagram = NetworkVoronoiDiagram(network, objects)
        assert 1 in diagram.neighbors_of(0)
        assert 0 in diagram.neighbors_of(1)
        assert diagram.neighbors_of(0) - {1} == diagram.neighbors_of(1) - {0}

    def test_influential_neighbor_set(self):
        network = grid_network(6, 6, spacing=10.0)
        objects = place_objects(network, 9, seed=109)
        diagram = NetworkVoronoiDiagram(network, objects)
        members = {0, 3}
        ins = diagram.influential_neighbor_set(members)
        expected = (diagram.neighbors_of(0) | diagram.neighbors_of(3)) - members
        assert ins == expected


class TestRestrictedSubnetwork:
    def test_subnetwork_covers_cells(self):
        network = grid_network(6, 6, spacing=10.0)
        objects = place_objects(network, 8, seed=110)
        diagram = NetworkVoronoiDiagram(network, objects)
        members = {0, 1}
        sub, vertex_map, edge_map = diagram.restricted_subnetwork(members)
        # Every edge owned (even partially) by a member must be present.
        for edge_id in diagram.cell_edges(members):
            assert edge_id in edge_map
        # The member objects' vertices must be present in the sub-network.
        for index in members:
            assert objects[index] in vertex_map

    def test_subnetwork_is_smaller_than_network(self):
        network = grid_network(10, 10, spacing=10.0)
        objects = place_objects(network, 20, seed=111)
        diagram = NetworkVoronoiDiagram(network, objects)
        sub, _, _ = diagram.restricted_subnetwork({0})
        assert sub.edge_count < network.edge_count
