"""Randomized equivalence tests for incremental NetworkVoronoiDiagram maintenance.

The incremental repairs (insert/remove/move) are validated against the
from-scratch construction, which remains the correctness oracle:

* on networks with irrational edge lengths (random planar graphs) network
  distances are tie-free, so vertex owners, edge ownership and the
  neighbour map must match the oracle *exactly*;
* on grid networks (every edge the same length) distance ties are endemic
  and the tie-breaking differs between the repair flood and the oracle's
  multi-source heap, so the tests compare distances exactly and check that
  every structure is consistent with the diagram's own (valid) owner
  choice — the "modulo distance ties" contract.

The delta contract (every object whose neighbour set changed is reported)
is what the road server's invalidation relies on, so it gets its own test.
"""

import math
import random

import pytest

from repro.errors import EmptyDatasetError, QueryError
from repro.roadnet.generators import grid_network, place_objects, random_planar_network
from repro.roadnet.network_voronoi import NetworkVoronoiDiagram
from repro.roadnet.shortest_path import dijkstra


def apply_random_stream(diagram, network, rng, steps):
    """Drive a mixed insert/remove/move stream; returns the last delta."""
    changed = set()
    for _ in range(steps):
        op = rng.random()
        active = diagram.active_object_indexes()
        if op < 0.4:
            _, changed = diagram.insert_object(rng.choice(network.vertices()))
        elif op < 0.7 and len(active) > 2:
            changed = diagram.remove_object(rng.choice(active))
        else:
            changed = diagram.move_object(rng.choice(active), rng.choice(network.vertices()))
    return changed


def oracle_for(diagram, network):
    """A from-scratch diagram over the active objects plus the index remap."""
    active = diagram.active_object_indexes()
    oracle = NetworkVoronoiDiagram(network, [diagram.object_vertex(i) for i in active])
    remap = {position: index for position, index in enumerate(active)}
    return oracle, remap


def assert_distances_match(diagram, oracle, network):
    for vertex in network.vertices():
        expected = oracle._vertex_distances.get(vertex, math.inf)
        actual = diagram._vertex_distances.get(vertex, math.inf)
        assert actual == pytest.approx(expected, abs=1e-9), vertex


def assert_self_consistent(diagram, network):
    """Structures must be exactly what a build from the diagram's own
    vertex owners would produce (tie-insensitive check)."""
    # Owners achieve the (oracle-exact) stored distance.
    distance_cache = {}
    for vertex, owner in diagram._vertex_owners.items():
        source = diagram.object_vertex(owner)
        if source not in distance_cache:
            distance_cache[source] = dijkstra(network, source)
        assert distance_cache[source][vertex] == pytest.approx(
            diagram._vertex_distances[vertex], abs=1e-9
        )
    # Edge ownership, inverted indexes and rep adjacency re-derived from the
    # vertex owners must equal the maintained state.
    owner_edges = {}
    rep_neighbors = {}
    for edge in network.edges():
        owner_u = diagram._vertex_owners.get(edge.u)
        owner_v = diagram._vertex_owners.get(edge.v)
        ownership = diagram.edge_ownership(edge.edge_id)
        if owner_u is None or owner_v is None:
            assert ownership is None
            continue
        assert ownership is not None
        assert (ownership.owner_u, ownership.owner_v) == (owner_u, owner_v)
        if owner_u != owner_v:
            du = diagram._vertex_distances[edge.u]
            dv = diagram._vertex_distances[edge.v]
            border = min(max((edge.length + dv - du) / 2.0, 0.0), edge.length)
            assert ownership.border_offset == pytest.approx(border, abs=1e-9)
            rep_neighbors.setdefault(owner_u, set()).add(owner_v)
            rep_neighbors.setdefault(owner_v, set()).add(owner_u)
        owner_edges.setdefault(owner_u, set()).add(edge.edge_id)
        owner_edges.setdefault(owner_v, set()).add(edge.edge_id)
    for rep, edges in owner_edges.items():
        assert diagram._owner_edges.get(rep, set()) == edges
    for rep, edges in diagram._owner_edges.items():
        if edges:
            assert owner_edges.get(rep) == edges
    for rep in owner_edges:
        assert diagram._rep_neighbors.get(rep, set()) == rep_neighbors.get(rep, set())
    # Lifted object-level sets match the group semantics.
    for index in diagram.active_object_indexes():
        vertex = diagram.object_vertex(index)
        group = diagram._vertex_objects[vertex]
        rep = group[0]
        adjacent = set()
        for neighbor_rep in rep_neighbors.get(rep, ()):
            adjacent.update(diagram._vertex_objects[diagram.object_vertex(neighbor_rep)])
        expected = (adjacent | set(group)) - {index}
        assert diagram.neighbors_of(index) == expected


class TestTieFreeEquivalence:
    """On irrational edge lengths the incremental diagram must equal the
    oracle exactly — owners, edge ownership, neighbour map, cell edges."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_stream_matches_oracle(self, seed):
        rng = random.Random(seed)
        network = random_planar_network(120, extent=2_000.0, seed=seed)
        objects = place_objects(network, 12, seed=seed + 40)
        diagram = NetworkVoronoiDiagram(network, objects)
        apply_random_stream(diagram, network, rng, steps=120)
        oracle, remap = oracle_for(diagram, network)
        assert_distances_match(diagram, oracle, network)
        # Owners compare by *vertex*: co-located objects (a move can land on
        # an occupied vertex) are a distance-0 tie, and the two builds may
        # elect different representatives of the same shared cell.
        for vertex in network.vertices():
            oracle_owner = oracle.vertex_owner(vertex)
            if oracle_owner is None:
                assert diagram.vertex_owner(vertex) is None
            else:
                assert diagram.object_vertex(
                    diagram.vertex_owner(vertex)
                ) == oracle.object_vertices[oracle_owner]
        for edge in network.edges():
            mine = diagram.edge_ownership(edge.edge_id)
            theirs = oracle.edge_ownership(edge.edge_id)
            if theirs is None:
                assert mine is None
                continue
            assert diagram.object_vertex(mine.owner_u) == oracle.object_vertices[theirs.owner_u]
            assert diagram.object_vertex(mine.owner_v) == oracle.object_vertices[theirs.owner_v]
            if theirs.is_split:
                assert mine.border_offset == pytest.approx(theirs.border_offset, abs=1e-9)
        # The lifted neighbour map is representative-independent, so it must
        # match exactly.
        oracle_map = {
            remap[position]: {remap[other] for other in neighbors}
            for position, neighbors in oracle.neighbor_map().items()
        }
        assert diagram.neighbor_map() == oracle_map
        # Inverted-index cell queries agree with the oracle's scans when
        # aggregated per co-located group (the group shares one cell).
        reverse = {index: position for position, index in remap.items()}
        groups = {}
        for index in diagram.active_object_indexes():
            groups.setdefault(diagram.object_vertex(index), set()).add(index)
        for vertex, group in groups.items():
            oracle_group = {reverse[index] for index in group}
            assert diagram.cell_edges(group) == oracle.cell_edges(oracle_group)
            mine_length = sum(diagram.cell_length(index) for index in group)
            oracle_length = sum(oracle.cell_length(position) for position in oracle_group)
            assert mine_length == pytest.approx(oracle_length, abs=1e-6)


class TestTieTolerantEquivalence:
    """Grid networks tie constantly: distances must still match the oracle
    exactly, and every structure must be consistent with the diagram's own
    owner assignment."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_stream_stays_consistent(self, seed):
        rng = random.Random(seed + 10)
        network = grid_network(9, 9, spacing=50.0)
        objects = place_objects(network, 10, seed=seed + 60)
        diagram = NetworkVoronoiDiagram(network, objects)
        for _ in range(4):
            apply_random_stream(diagram, network, rng, steps=30)
            oracle, _ = oracle_for(diagram, network)
            assert_distances_match(diagram, oracle, network)
            assert_self_consistent(diagram, network)

    def test_cell_lengths_still_sum_to_network_length(self):
        rng = random.Random(5)
        network = grid_network(8, 8, spacing=25.0)
        objects = place_objects(network, 9, seed=77)
        diagram = NetworkVoronoiDiagram(network, objects)
        apply_random_stream(diagram, network, rng, steps=80)
        total = sum(diagram.cell_length(i) for i in diagram.active_object_indexes())
        assert total == pytest.approx(network.total_length)


class TestDeltaContract:
    """Every object whose neighbour set changed must be reported — the road
    server's query invalidation is built on this."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_changed_sets_cover_every_difference(self, seed):
        rng = random.Random(seed + 20)
        network = (
            grid_network(9, 9, spacing=40.0)
            if seed % 2 == 0
            else random_planar_network(100, extent=1_500.0, seed=seed)
        )
        objects = place_objects(network, 10, seed=seed + 30)
        diagram = NetworkVoronoiDiagram(network, objects)
        shadow = diagram.neighbor_map()
        for step in range(150):
            op = rng.random()
            active = diagram.active_object_indexes()
            removed = None
            if op < 0.4:
                _, changed = diagram.insert_object(rng.choice(network.vertices()))
            elif op < 0.7 and len(active) > 2:
                removed = rng.choice(active)
                changed = diagram.remove_object(removed)
            else:
                changed = diagram.move_object(rng.choice(active), rng.choice(network.vertices()))
            now = diagram.neighbor_map()
            for index, neighbors in now.items():
                if shadow.get(index) != neighbors:
                    assert index in changed, (step, index)
            for index in shadow:
                if index not in now:
                    assert index == removed, (step, index)
            shadow = now


class TestColocatedObjects:
    def test_insert_onto_occupied_vertex_shares_the_cell(self):
        network = grid_network(4, 4, spacing=10.0)
        diagram = NetworkVoronoiDiagram(network, [0, 15])
        index, changed = diagram.insert_object(0)
        assert index == 2
        assert 0 in diagram.neighbors_of(index)
        assert index in diagram.neighbors_of(0)
        assert diagram.neighbors_of(index) - {0} == diagram.neighbors_of(0) - {index}
        assert index in changed and 0 in changed
        # The co-located object owns nothing itself (the representative does).
        assert diagram.cell_edges({index}) == set()
        assert diagram.cell_length(index) == 0.0

    def test_remove_non_representative_keeps_the_cell(self):
        network = grid_network(4, 4, spacing=10.0)
        diagram = NetworkVoronoiDiagram(network, [0, 0, 15])
        before = diagram.cell_edges({0})
        changed = diagram.remove_object(1)
        assert not diagram.is_active(1)
        assert diagram.cell_edges({0}) == before
        assert 1 not in diagram.neighbors_of(0)
        assert 0 in changed and 2 in changed

    def test_remove_representative_promotes_the_colocated_object(self):
        network = grid_network(4, 4, spacing=10.0)
        diagram = NetworkVoronoiDiagram(network, [0, 0, 15])
        cell_before = diagram.cell_edges({0})
        assert diagram.cell_edges({1}) == set()
        diagram.remove_object(0)
        # Object 1 inherits the whole cell and the adjacency.
        assert diagram.cell_edges({1}) == cell_before
        assert diagram.vertex_owner(0) == 1
        assert 2 in diagram.neighbors_of(1)
        oracle, remap = oracle_for(diagram, network)
        assert diagram.neighbor_map() == {
            remap[position]: {remap[other] for other in neighbors}
            for position, neighbors in oracle.neighbor_map().items()
        }

    def test_move_between_shared_vertices_matches_oracle(self):
        # A tie-free network so the lifted neighbour map must match exactly.
        network = random_planar_network(60, extent=800.0, seed=33)
        vertices = network.vertices()
        diagram = NetworkVoronoiDiagram(
            network, [vertices[0], vertices[0], vertices[40], vertices[20]]
        )
        # Move a co-located member onto another occupied vertex, then away.
        for destination in (vertices[40], vertices[7]):
            diagram.move_object(1, destination)
            oracle, remap = oracle_for(diagram, network)
            assert diagram.neighbor_map() == {
                remap[position]: {remap[other] for other in neighbors}
                for position, neighbors in oracle.neighbor_map().items()
            }


class TestMaintenanceModes:
    def test_rebuild_mode_reports_every_active_object(self):
        network = grid_network(5, 5, spacing=10.0)
        objects = place_objects(network, 6, seed=90)
        diagram = NetworkVoronoiDiagram(network, objects, maintenance="rebuild")
        index, changed = diagram.insert_object(network.vertices()[0])
        assert changed == set(diagram.active_object_indexes())
        changed = diagram.remove_object(index)
        assert changed == set(diagram.active_object_indexes())

    def test_rebuild_and_incremental_agree_on_tie_free_networks(self):
        network = random_planar_network(80, extent=1_000.0, seed=8)
        objects = place_objects(network, 8, seed=91)
        incremental = NetworkVoronoiDiagram(network, objects)
        rebuild = NetworkVoronoiDiagram(network, objects, maintenance="rebuild")
        rng = random.Random(9)
        script = []
        for _ in range(40):
            op = rng.random()
            active = incremental.active_object_indexes()
            if op < 0.4:
                script.append(("insert", rng.choice(network.vertices())))
            elif op < 0.7 and len(active) > 2:
                script.append(("remove", rng.choice(active)))
            else:
                script.append(("move", rng.choice(active), rng.choice(network.vertices())))
            operation = script[-1]
            for diagram in (incremental, rebuild):
                if operation[0] == "insert":
                    diagram.insert_object(operation[1])
                elif operation[0] == "remove":
                    diagram.remove_object(operation[1])
                else:
                    diagram.move_object(operation[1], operation[2])
        assert incremental.neighbor_map() == rebuild.neighbor_map()
        for index in incremental.active_object_indexes():
            assert incremental.cell_edges({index}) == rebuild.cell_edges({index})

    def test_unknown_maintenance_mode_raises(self):
        from repro.errors import ConfigurationError

        network = grid_network(3, 3)
        with pytest.raises(ConfigurationError):
            NetworkVoronoiDiagram(network, [0], maintenance="magic")


class TestBatchUpdate:
    def test_small_batch_matches_oracle(self):
        network = random_planar_network(80, extent=1_000.0, seed=12)
        objects = place_objects(network, 10, seed=13)
        diagram = NetworkVoronoiDiagram(network, objects)
        new_indexes, deleted, changed = diagram.batch_update(
            inserts=[network.vertices()[3]],
            deletes=[2],
            moves=[(4, network.vertices()[7])],
        )
        assert len(new_indexes) == 1 and deleted == [2]
        assert changed and all(diagram.is_active(index) for index in changed)
        oracle, remap = oracle_for(diagram, network)
        assert diagram.neighbor_map() == {
            remap[position]: {remap[other] for other in neighbors}
            for position, neighbors in oracle.neighbor_map().items()
        }

    def test_large_batch_takes_the_bulk_path_and_matches_oracle(self):
        network = random_planar_network(80, extent=1_000.0, seed=14)
        objects = place_objects(network, 10, seed=15)
        diagram = NetworkVoronoiDiagram(network, objects)
        rng = random.Random(16)
        inserts = [rng.choice(network.vertices()) for _ in range(20)]
        new_indexes, deleted, changed = diagram.batch_update(
            inserts=inserts, deletes=[0, 1, 2]
        )
        assert len(new_indexes) == 20 and set(deleted) == {0, 1, 2}
        assert changed == set(diagram.active_object_indexes())
        oracle, remap = oracle_for(diagram, network)
        assert diagram.neighbor_map() == {
            remap[position]: {remap[other] for other in neighbors}
            for position, neighbors in oracle.neighbor_map().items()
        }

    def test_draining_batch_is_rejected(self):
        network = grid_network(3, 3)
        diagram = NetworkVoronoiDiagram(network, [0, 1])
        with pytest.raises(EmptyDatasetError):
            diagram.batch_update(deletes=[0, 1])


class TestGuards:
    def test_remove_last_object_raises(self):
        network = grid_network(3, 3)
        diagram = NetworkVoronoiDiagram(network, [4])
        with pytest.raises(EmptyDatasetError):
            diagram.remove_object(0)

    def test_remove_twice_raises(self):
        network = grid_network(3, 3)
        diagram = NetworkVoronoiDiagram(network, [0, 4])
        diagram.remove_object(0)
        with pytest.raises(QueryError):
            diagram.remove_object(0)

    def test_tombstone_identity_is_stable(self):
        network = grid_network(4, 4)
        diagram = NetworkVoronoiDiagram(network, [0, 5, 15])
        diagram.remove_object(1)
        index, _ = diagram.insert_object(10)
        assert index == 3  # tombstone index 1 is never reused
        assert not diagram.is_active(1)
        assert diagram.active_object_indexes() == [0, 2, 3]

    def test_move_to_same_vertex_is_a_noop(self):
        network = grid_network(4, 4)
        diagram = NetworkVoronoiDiagram(network, [0, 15])
        assert diagram.move_object(0, 0) == set()
