"""Randomized equivalence tests for incremental NetworkVoronoiDiagram maintenance.

The incremental repairs (insert/remove/move) are validated against the
from-scratch construction, which remains the correctness oracle.  Both
paths share the deterministic owner-id tie rule — a vertex at exactly equal
distance from several objects belongs to the smallest object index among
them, and a cell shared by co-located objects is labelled by its smallest
member — so the comparison is *exact* everywhere:

* on networks with irrational edge lengths (random planar graphs) network
  distances are essentially tie-free and the rule is never exercised;
* on grid networks (every edge the same length) distance ties are endemic
  and the rule is exercised constantly — vertex owners, edge ownership and
  the neighbour map must still match the oracle exactly.  (These tests used
  to accept any self-consistent tie-break; the escape hatch is gone.)

The delta contract (every object whose neighbour set changed is reported)
is what the road server's invalidation relies on, so it gets its own test.
"""

import math
import random

import pytest

from repro.errors import EmptyDatasetError, QueryError
from repro.roadnet.generators import grid_network, place_objects, random_planar_network
from repro.roadnet.network_voronoi import NetworkVoronoiDiagram


def apply_random_stream(diagram, network, rng, steps):
    """Drive a mixed insert/remove/move stream; returns the last delta."""
    changed = set()
    for _ in range(steps):
        op = rng.random()
        active = diagram.active_object_indexes()
        if op < 0.4:
            _, changed = diagram.insert_object(rng.choice(network.vertices()))
        elif op < 0.7 and len(active) > 2:
            changed = diagram.remove_object(rng.choice(active))
        else:
            changed = diagram.move_object(rng.choice(active), rng.choice(network.vertices()))
    return changed


def oracle_for(diagram, network):
    """A from-scratch diagram over the active objects plus the index remap."""
    active = diagram.active_object_indexes()
    oracle = NetworkVoronoiDiagram(network, [diagram.object_vertex(i) for i in active])
    remap = {position: index for position, index in enumerate(active)}
    return oracle, remap


def assert_matches_oracle(diagram, network):
    """The diagram must equal a from-scratch build *exactly*.

    The oracle is built over the active objects only, so its indexes are a
    dense renumbering; the remap is order-preserving, which keeps the
    owner-id tie rule aligned between the two builds.
    """
    oracle, remap = oracle_for(diagram, network)
    reverse = {index: position for position, index in remap.items()}
    # Distances and owners, vertex by vertex.
    for vertex in network.vertices():
        expected_distance = oracle._vertex_distances.get(vertex, math.inf)
        actual_distance = diagram._vertex_distances.get(vertex, math.inf)
        assert actual_distance == pytest.approx(expected_distance, abs=1e-9), vertex
        oracle_owner = oracle.vertex_owner(vertex)
        expected_owner = None if oracle_owner is None else remap[oracle_owner]
        assert diagram.vertex_owner(vertex) == expected_owner, vertex
    # Edge ownership (and split borders).
    for edge in network.edges():
        mine = diagram.edge_ownership(edge.edge_id)
        theirs = oracle.edge_ownership(edge.edge_id)
        if theirs is None:
            assert mine is None
            continue
        assert (mine.owner_u, mine.owner_v) == (
            remap[theirs.owner_u],
            remap[theirs.owner_v],
        ), edge.edge_id
        assert mine.is_split == theirs.is_split
        if theirs.is_split:
            assert mine.border_offset == pytest.approx(theirs.border_offset, abs=1e-9)
    # The lifted object-level neighbour map.
    oracle_map = {
        remap[position]: {remap[other] for other in neighbors}
        for position, neighbors in oracle.neighbor_map().items()
    }
    assert diagram.neighbor_map() == oracle_map
    # Per-object cells from the inverted index (representatives included).
    for index in diagram.active_object_indexes():
        assert diagram.cell_edges({index}) == oracle.cell_edges({reverse[index]}), index
        assert diagram.cell_length(index) == pytest.approx(
            oracle.cell_length(reverse[index]), abs=1e-6
        )


class TestTieFreeEquivalence:
    """On irrational edge lengths the incremental diagram must equal the
    oracle exactly — owners, edge ownership, neighbour map, cell edges."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_stream_matches_oracle(self, seed):
        rng = random.Random(seed)
        network = random_planar_network(120, extent=2_000.0, seed=seed)
        objects = place_objects(network, 12, seed=seed + 40)
        diagram = NetworkVoronoiDiagram(network, objects)
        apply_random_stream(diagram, network, rng, steps=120)
        assert_matches_oracle(diagram, network)


class TestGridEquivalence:
    """Grid networks tie constantly: the deterministic owner-id rule makes
    the incremental diagram equal the oracle exactly anyway — no
    tie-tolerant escape hatch."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_stream_matches_oracle(self, seed):
        rng = random.Random(seed + 10)
        network = grid_network(9, 9, spacing=50.0)
        objects = place_objects(network, 10, seed=seed + 60)
        diagram = NetworkVoronoiDiagram(network, objects)
        for _ in range(4):
            apply_random_stream(diagram, network, rng, steps=30)
            assert_matches_oracle(diagram, network)

    def test_cell_lengths_still_sum_to_network_length(self):
        rng = random.Random(5)
        network = grid_network(8, 8, spacing=25.0)
        objects = place_objects(network, 9, seed=77)
        diagram = NetworkVoronoiDiagram(network, objects)
        apply_random_stream(diagram, network, rng, steps=80)
        total = sum(diagram.cell_length(i) for i in diagram.active_object_indexes())
        assert total == pytest.approx(network.total_length)


class TestDeltaContract:
    """Every object whose neighbour set changed must be reported — the road
    server's query invalidation is built on this."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_changed_sets_cover_every_difference(self, seed):
        rng = random.Random(seed + 20)
        network = (
            grid_network(9, 9, spacing=40.0)
            if seed % 2 == 0
            else random_planar_network(100, extent=1_500.0, seed=seed)
        )
        objects = place_objects(network, 10, seed=seed + 30)
        diagram = NetworkVoronoiDiagram(network, objects)
        shadow = diagram.neighbor_map()
        for step in range(150):
            op = rng.random()
            active = diagram.active_object_indexes()
            removed = None
            if op < 0.4:
                _, changed = diagram.insert_object(rng.choice(network.vertices()))
            elif op < 0.7 and len(active) > 2:
                removed = rng.choice(active)
                changed = diagram.remove_object(removed)
            else:
                changed = diagram.move_object(rng.choice(active), rng.choice(network.vertices()))
            now = diagram.neighbor_map()
            for index, neighbors in now.items():
                if shadow.get(index) != neighbors:
                    assert index in changed, (step, index)
            for index in shadow:
                if index not in now:
                    assert index == removed, (step, index)
            shadow = now


class TestColocatedObjects:
    def test_insert_onto_occupied_vertex_shares_the_cell(self):
        network = grid_network(4, 4, spacing=10.0)
        diagram = NetworkVoronoiDiagram(network, [0, 15])
        index, changed = diagram.insert_object(0)
        assert index == 2
        assert 0 in diagram.neighbors_of(index)
        assert index in diagram.neighbors_of(0)
        assert diagram.neighbors_of(index) - {0} == diagram.neighbors_of(0) - {index}
        assert index in changed and 0 in changed
        # The co-located object owns nothing itself (the representative does).
        assert diagram.cell_edges({index}) == set()
        assert diagram.cell_length(index) == 0.0

    def test_remove_non_representative_keeps_the_cell(self):
        network = grid_network(4, 4, spacing=10.0)
        diagram = NetworkVoronoiDiagram(network, [0, 0, 15])
        before = diagram.cell_edges({0})
        changed = diagram.remove_object(1)
        assert not diagram.is_active(1)
        assert diagram.cell_edges({0}) == before
        assert 1 not in diagram.neighbors_of(0)
        assert 0 in changed and 2 in changed

    def test_remove_representative_promotes_the_colocated_object(self):
        network = grid_network(4, 4, spacing=10.0)
        diagram = NetworkVoronoiDiagram(network, [0, 0, 15])
        diagram.remove_object(0)
        # Object 1 inherits the cell (re-fought under its own label) and
        # the adjacency; the result must match a from-scratch build.
        assert diagram.vertex_owner(0) == 1
        assert 2 in diagram.neighbors_of(1)
        assert_matches_oracle(diagram, network)

    def test_takeover_by_lower_index_mover_matches_oracle(self):
        # A move can land a *small* index on an occupied vertex: the group's
        # label shrinks and, on a grid, the smaller label wins border ties
        # the old one lost — the takeover must re-fight them.
        network = grid_network(7, 7, spacing=10.0)
        diagram = NetworkVoronoiDiagram(network, [24, 0, 48, 6, 42])
        diagram.move_object(0, 6)  # object 0 joins object 3's vertex
        group = diagram._vertex_objects[6]
        assert group == [0, 3]
        assert diagram.vertex_owner(6) == 0
        assert_matches_oracle(diagram, network)
        # And leaving again re-fights the cell under the successor's label.
        diagram.move_object(0, 24)
        assert diagram.vertex_owner(6) == 3
        assert_matches_oracle(diagram, network)

    def test_move_between_shared_vertices_matches_oracle(self):
        network = random_planar_network(60, extent=800.0, seed=33)
        vertices = network.vertices()
        diagram = NetworkVoronoiDiagram(
            network, [vertices[0], vertices[0], vertices[40], vertices[20]]
        )
        # Move a co-located member onto another occupied vertex, then away.
        for destination in (vertices[40], vertices[7]):
            diagram.move_object(1, destination)
            assert_matches_oracle(diagram, network)


class TestMaintenanceModes:
    def test_rebuild_mode_reports_every_active_object(self):
        network = grid_network(5, 5, spacing=10.0)
        objects = place_objects(network, 6, seed=90)
        diagram = NetworkVoronoiDiagram(network, objects, maintenance="rebuild")
        index, changed = diagram.insert_object(network.vertices()[0])
        assert changed == set(diagram.active_object_indexes())
        changed = diagram.remove_object(index)
        assert changed == set(diagram.active_object_indexes())

    @pytest.mark.parametrize(
        "make_network",
        [
            lambda: random_planar_network(80, extent=1_000.0, seed=8),
            lambda: grid_network(9, 9, spacing=50.0),
        ],
        ids=["tie-free-planar", "uniform-grid"],
    )
    def test_rebuild_and_incremental_agree(self, make_network):
        """The same stream through both modes ends in identical diagrams —
        including on uniform grids, where the owner-id tie rule is what
        keeps the two tie-breaks aligned."""
        network = make_network()
        objects = place_objects(network, 8, seed=91)
        incremental = NetworkVoronoiDiagram(network, objects)
        rebuild = NetworkVoronoiDiagram(network, objects, maintenance="rebuild")
        rng = random.Random(9)
        for _ in range(60):
            op = rng.random()
            active = incremental.active_object_indexes()
            if op < 0.4:
                operation = ("insert", rng.choice(network.vertices()))
            elif op < 0.7 and len(active) > 2:
                operation = ("remove", rng.choice(active))
            else:
                operation = ("move", rng.choice(active), rng.choice(network.vertices()))
            for diagram in (incremental, rebuild):
                if operation[0] == "insert":
                    diagram.insert_object(operation[1])
                elif operation[0] == "remove":
                    diagram.remove_object(operation[1])
                else:
                    diagram.move_object(operation[1], operation[2])
        assert incremental._vertex_owners == rebuild._vertex_owners
        assert incremental.neighbor_map() == rebuild.neighbor_map()
        for index in incremental.active_object_indexes():
            assert incremental.cell_edges({index}) == rebuild.cell_edges({index})

    def test_unknown_maintenance_mode_raises(self):
        from repro.errors import ConfigurationError

        network = grid_network(3, 3)
        with pytest.raises(ConfigurationError):
            NetworkVoronoiDiagram(network, [0], maintenance="magic")


class TestBatchUpdate:
    def test_small_batch_matches_oracle(self):
        network = random_planar_network(80, extent=1_000.0, seed=12)
        objects = place_objects(network, 10, seed=13)
        diagram = NetworkVoronoiDiagram(network, objects)
        new_indexes, deleted, changed = diagram.batch_update(
            inserts=[network.vertices()[3]],
            deletes=[2],
            moves=[(4, network.vertices()[7])],
        )
        assert len(new_indexes) == 1 and deleted == [2]
        assert changed and all(diagram.is_active(index) for index in changed)
        assert_matches_oracle(diagram, network)

    def test_small_batch_on_a_grid_matches_oracle(self):
        network = grid_network(8, 8, spacing=20.0)
        objects = place_objects(network, 12, seed=19)
        diagram = NetworkVoronoiDiagram(network, objects)
        diagram.batch_update(
            inserts=[network.vertices()[5]],
            deletes=[1],
            moves=[(3, network.vertices()[17]), (7, network.vertices()[44])],
        )
        assert_matches_oracle(diagram, network)

    def test_large_batch_takes_the_bulk_path_and_matches_oracle(self):
        network = random_planar_network(80, extent=1_000.0, seed=14)
        objects = place_objects(network, 10, seed=15)
        diagram = NetworkVoronoiDiagram(network, objects)
        rng = random.Random(16)
        inserts = [rng.choice(network.vertices()) for _ in range(20)]
        new_indexes, deleted, changed = diagram.batch_update(
            inserts=inserts, deletes=[0, 1, 2]
        )
        assert len(new_indexes) == 20 and set(deleted) == {0, 1, 2}
        assert changed == set(diagram.active_object_indexes())
        assert_matches_oracle(diagram, network)

    def test_draining_batch_is_rejected(self):
        network = grid_network(3, 3)
        diagram = NetworkVoronoiDiagram(network, [0, 1])
        with pytest.raises(EmptyDatasetError):
            diagram.batch_update(deletes=[0, 1])


class TestGuards:
    def test_remove_last_object_raises(self):
        network = grid_network(3, 3)
        diagram = NetworkVoronoiDiagram(network, [4])
        with pytest.raises(EmptyDatasetError):
            diagram.remove_object(0)

    def test_remove_twice_raises(self):
        network = grid_network(3, 3)
        diagram = NetworkVoronoiDiagram(network, [0, 4])
        diagram.remove_object(0)
        with pytest.raises(QueryError):
            diagram.remove_object(0)

    def test_tombstone_identity_is_stable(self):
        network = grid_network(4, 4)
        diagram = NetworkVoronoiDiagram(network, [0, 5, 15])
        diagram.remove_object(1)
        index, _ = diagram.insert_object(10)
        assert index == 3  # tombstone index 1 is never reused
        assert not diagram.is_active(1)
        assert diagram.active_object_indexes() == [0, 2, 3]

    def test_move_to_same_vertex_is_a_noop(self):
        network = grid_network(4, 4)
        diagram = NetworkVoronoiDiagram(network, [0, 15])
        assert diagram.move_object(0, 0) == set()
