"""Tests for repro.roadnet.location."""

import pytest

from repro.errors import RoadNetworkError
from repro.geometry.point import Point
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation


@pytest.fixture
def simple_network():
    network = RoadNetwork()
    a = network.add_vertex(Point(0, 0))
    b = network.add_vertex(Point(100, 0))
    c = network.add_vertex(Point(100, 50))
    e_ab = network.add_edge(a, b)  # length 100
    e_bc = network.add_edge(b, c)  # length 50
    return network, (a, b, c), (e_ab, e_bc)


class TestValidation:
    def test_valid_location(self, simple_network):
        network, _, (e_ab, _) = simple_network
        location = NetworkLocation(e_ab, 40.0).validated(network)
        assert location.offset == pytest.approx(40.0)

    def test_offset_out_of_range(self, simple_network):
        network, _, (e_ab, _) = simple_network
        with pytest.raises(RoadNetworkError):
            NetworkLocation(e_ab, 150.0).validated(network)
        with pytest.raises(RoadNetworkError):
            NetworkLocation(e_ab, -5.0).validated(network)

    def test_unknown_edge(self, simple_network):
        network, _, _ = simple_network
        with pytest.raises(RoadNetworkError):
            NetworkLocation(999, 0.0).validated(network)

    def test_small_negative_offset_is_clamped(self, simple_network):
        network, _, (e_ab, _) = simple_network
        location = NetworkLocation(e_ab, -1e-12).validated(network)
        assert location.offset == 0.0


class TestGeometry:
    def test_endpoint_distances(self, simple_network):
        network, (a, b, _), (e_ab, _) = simple_network
        u, du, v, dv = NetworkLocation(e_ab, 30.0).endpoint_distances(network)
        assert (u, v) == (a, b)
        assert du == pytest.approx(30.0)
        assert dv == pytest.approx(70.0)

    def test_position_interpolates_along_edge(self, simple_network):
        network, _, (e_ab, _) = simple_network
        assert NetworkLocation(e_ab, 25.0).position(network).almost_equal(Point(25.0, 0.0))

    def test_is_at_vertex(self, simple_network):
        network, _, (e_ab, _) = simple_network
        assert NetworkLocation(e_ab, 0.0).is_at_vertex(network)
        assert NetworkLocation(e_ab, 100.0).is_at_vertex(network)
        assert not NetworkLocation(e_ab, 50.0).is_at_vertex(network)

    def test_nearest_vertex(self, simple_network):
        network, (a, b, _), (e_ab, _) = simple_network
        assert NetworkLocation(e_ab, 10.0).nearest_vertex(network) == a
        assert NetworkLocation(e_ab, 90.0).nearest_vertex(network) == b

    def test_at_vertex_constructor(self, simple_network):
        network, (a, b, c), _ = simple_network
        location = NetworkLocation.at_vertex(network, b)
        assert location.is_at_vertex(network)
        assert location.position(network).almost_equal(Point(100.0, 0.0))

    def test_at_vertex_requires_incident_edge(self, simple_network):
        network, _, _ = simple_network
        isolated = network.add_vertex(Point(500, 500))
        with pytest.raises(RoadNetworkError):
            NetworkLocation.at_vertex(network, isolated)
