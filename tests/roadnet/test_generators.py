"""Tests for repro.roadnet.generators."""

import pytest

from repro.errors import ConfigurationError
from repro.roadnet.generators import (
    grid_network,
    place_objects,
    random_planar_network,
    ring_radial_network,
)


class TestGridNetwork:
    def test_vertex_and_edge_counts(self):
        network = grid_network(4, 5, spacing=10.0)
        assert network.vertex_count == 20
        # Horizontal edges: 4 rows * 4, vertical edges: 3 * 5.
        assert network.edge_count == 4 * 4 + 3 * 5

    def test_edges_have_spacing_length(self):
        network = grid_network(3, 3, spacing=25.0)
        assert all(edge.length == pytest.approx(25.0) for edge in network.edges())

    def test_is_connected(self):
        assert grid_network(6, 7).is_connected()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            grid_network(1, 5)
        with pytest.raises(ConfigurationError):
            grid_network(3, 3, spacing=0.0)


class TestRingRadialNetwork:
    def test_counts(self):
        rings, spokes = 3, 8
        network = ring_radial_network(rings, spokes, ring_spacing=10.0)
        assert network.vertex_count == 1 + rings * spokes
        # Radial edges: spokes * rings; ring edges: spokes per ring.
        assert network.edge_count == spokes * rings + spokes * rings

    def test_is_connected(self):
        assert ring_radial_network(2, 5).is_connected()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ring_radial_network(0, 5)
        with pytest.raises(ConfigurationError):
            ring_radial_network(2, 2)
        with pytest.raises(ConfigurationError):
            ring_radial_network(2, 5, ring_spacing=-1.0)


class TestRandomPlanarNetwork:
    def test_is_connected_and_planar_sized(self):
        network = random_planar_network(60, extent=500.0, removal_fraction=0.3, seed=130)
        assert network.is_connected()
        assert network.vertex_count == 60
        # Planarity bound on edge count.
        assert network.edge_count <= 3 * 60 - 6

    def test_removal_reduces_edges(self):
        dense = random_planar_network(50, extent=500.0, removal_fraction=0.0, seed=131)
        sparse = random_planar_network(50, extent=500.0, removal_fraction=0.4, seed=131)
        assert sparse.edge_count < dense.edge_count

    def test_reproducible(self):
        a = random_planar_network(30, seed=7)
        b = random_planar_network(30, seed=7)
        assert a.edge_count == b.edge_count
        assert [v for v in a.vertices()] == [v for v in b.vertices()]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_planar_network(3)
        with pytest.raises(ConfigurationError):
            random_planar_network(10, removal_fraction=1.0)


class TestPlaceObjects:
    def test_distinct_placement(self):
        network = grid_network(5, 5)
        objects = place_objects(network, 10, seed=132)
        assert len(objects) == 10
        assert len(set(objects)) == 10
        assert set(objects) <= set(network.vertices())

    def test_distinct_placement_capacity(self):
        network = grid_network(2, 2)
        with pytest.raises(ConfigurationError):
            place_objects(network, 5, distinct=True)

    def test_non_distinct_placement_allows_repeats(self):
        network = grid_network(2, 2)
        objects = place_objects(network, 10, seed=133, distinct=False)
        assert len(objects) == 10

    def test_count_validation(self):
        with pytest.raises(ConfigurationError):
            place_objects(grid_network(3, 3), 0)

    def test_reproducible(self):
        network = grid_network(6, 6)
        assert place_objects(network, 8, seed=1) == place_objects(network, 8, seed=1)
        assert place_objects(network, 8, seed=1) != place_objects(network, 8, seed=2)
