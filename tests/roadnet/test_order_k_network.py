"""Tests for repro.roadnet.order_k (order-k network Voronoi decomposition)."""

import math

import pytest

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.roadnet.generators import grid_network, place_objects, ring_radial_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation
from repro.roadnet.network_voronoi import NetworkVoronoiDiagram
from repro.roadnet.order_k import (
    cells_from_decomposition,
    network_mis,
    object_vertex_distances,
    order_k_edge_decomposition,
    order_k_set_at,
)
from repro.roadnet.shortest_path import distances_from_location


@pytest.fixture
def decorated_grid():
    """A 5x5 grid with 7 objects and precomputed object-vertex distances."""
    network = grid_network(5, 5, spacing=10.0)
    objects = place_objects(network, 7, seed=120)
    precomputed = object_vertex_distances(network, objects)
    return network, objects, precomputed


def brute_force_set_at(network, objects, location, k):
    vertex_distances = distances_from_location(network, location)
    pairs = sorted(
        (vertex_distances.get(vertex, math.inf), index) for index, vertex in enumerate(objects)
    )
    kth = pairs[k - 1][0]
    # Return every object within the k-th distance (tie-tolerant superset).
    return {index for distance, index in pairs if distance <= kth + 1e-9}, {
        index for distance, index in pairs if distance < kth - 1e-9
    }


class TestOrderKSetAt:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_brute_force(self, decorated_grid, k):
        network, objects, precomputed = decorated_grid
        for edge in network.edges()[::5]:
            location = NetworkLocation(edge.edge_id, edge.length * 0.37)
            members = order_k_set_at(network, objects, location, k, precomputed=precomputed)
            allowed, required = brute_force_set_at(network, objects, location, k)
            assert len(members) == k
            assert members <= allowed
            assert required <= members

    def test_validation(self, decorated_grid):
        network, objects, precomputed = decorated_grid
        location = NetworkLocation(network.edges()[0].edge_id, 1.0)
        with pytest.raises(QueryError):
            order_k_set_at(network, objects, location, 0)
        with pytest.raises(QueryError):
            order_k_set_at(network, objects, location, len(objects) + 1)


class TestDecomposition:
    def test_intervals_cover_each_edge(self, decorated_grid):
        network, objects, precomputed = decorated_grid
        decomposition = order_k_edge_decomposition(network, objects, 2, precomputed=precomputed)
        for edge in network.edges():
            intervals = decomposition[edge.edge_id]
            assert intervals, f"edge {edge.edge_id} has no intervals"
            assert intervals[0].start == pytest.approx(0.0)
            assert intervals[-1].end == pytest.approx(edge.length)
            for first, second in zip(intervals, intervals[1:]):
                assert first.end == pytest.approx(second.start)
                assert first.members != second.members

    def test_interval_members_match_point_evaluation(self, decorated_grid):
        network, objects, precomputed = decorated_grid
        k = 2
        decomposition = order_k_edge_decomposition(network, objects, k, precomputed=precomputed)
        for edge in network.edges()[::7]:
            for interval in decomposition[edge.edge_id]:
                middle = (interval.start + interval.end) / 2.0
                location = NetworkLocation(edge.edge_id, middle)
                members = order_k_set_at(network, objects, location, k, precomputed=precomputed)
                assert members == interval.members

    def test_order_1_decomposition_matches_network_voronoi_ownership(self, decorated_grid):
        network, objects, precomputed = decorated_grid
        decomposition = order_k_edge_decomposition(network, objects, 1, precomputed=precomputed)
        diagram = NetworkVoronoiDiagram(network, objects)
        for edge in network.edges():
            ownership = diagram.edge_ownership(edge.edge_id)
            intervals = decomposition[edge.edge_id]
            interval_owner_vertices = {
                objects[next(iter(i.members))] for i in intervals
            }
            ownership_vertices = {objects[o] for o in ownership.owners()}
            # The interior owners found by the decomposition must be among
            # the NVD edge owners (the NVD may additionally list an owner
            # whose share of the edge degenerates to a single endpoint).
            assert interval_owner_vertices <= ownership_vertices
            if ownership.is_split and 1e-6 < ownership.border_offset < edge.length - 1e-6:
                # A genuinely split edge must show both owners in its
                # interior decomposition.
                assert interval_owner_vertices == ownership_vertices

    def test_cells_group_intervals(self, decorated_grid):
        network, objects, precomputed = decorated_grid
        decomposition = order_k_edge_decomposition(network, objects, 2, precomputed=precomputed)
        cells = cells_from_decomposition(decomposition)
        total_intervals = sum(len(v) for v in decomposition.values())
        assert sum(len(v) for v in cells.values()) == total_intervals
        assert all(len(members) == 2 for members in cells)


class TestNetworkMIS:
    def test_mis_is_nonempty_and_disjoint(self, decorated_grid):
        network, objects, precomputed = decorated_grid
        k = 2
        location = NetworkLocation(network.edges()[12].edge_id, 3.0)
        members = order_k_set_at(network, objects, location, k, precomputed=precomputed)
        mis = network_mis(network, objects, k, members, precomputed=precomputed)
        assert mis
        assert not (mis & members)

    def test_mis_subset_of_ins_theorem_1(self, decorated_grid):
        """Theorem 1: MIS(Oknn) ⊆ I(Oknn) on road networks."""
        network, objects, precomputed = decorated_grid
        diagram = NetworkVoronoiDiagram(network, objects)
        for k in (1, 2, 3):
            decomposition = order_k_edge_decomposition(
                network, objects, k, precomputed=precomputed
            )
            for edge in network.edges()[::6]:
                location = NetworkLocation(edge.edge_id, edge.length * 0.41)
                members = order_k_set_at(network, objects, location, k, precomputed=precomputed)
                mis = network_mis(
                    network, objects, k, members, decomposition=decomposition
                )
                ins = diagram.influential_neighbor_set(members)
                assert mis <= ins, (
                    f"Theorem 1 violated for k={k}, members={sorted(members)}: "
                    f"MIS={sorted(mis)} INS={sorted(ins)}"
                )

    def test_mis_on_ring_radial_network(self):
        network = ring_radial_network(3, 6, ring_spacing=10.0)
        objects = place_objects(network, 8, seed=121)
        precomputed = object_vertex_distances(network, objects)
        diagram = NetworkVoronoiDiagram(network, objects)
        k = 2
        decomposition = order_k_edge_decomposition(network, objects, k, precomputed=precomputed)
        edge = network.edges()[4]
        location = NetworkLocation(edge.edge_id, edge.length / 2.0)
        members = order_k_set_at(network, objects, location, k, precomputed=precomputed)
        mis = network_mis(network, objects, k, members, decomposition=decomposition)
        ins = diagram.influential_neighbor_set(members)
        assert mis <= ins

    def test_wrong_member_count_raises(self, decorated_grid):
        network, objects, precomputed = decorated_grid
        with pytest.raises(QueryError):
            network_mis(network, objects, 2, {0}, precomputed=precomputed)
