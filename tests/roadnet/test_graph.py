"""Tests for repro.roadnet.graph."""

import pytest

from repro.errors import RoadNetworkError
from repro.geometry.point import Point
from repro.roadnet.graph import RoadNetwork


def triangle_network():
    """Three vertices connected in a triangle with explicit lengths."""
    network = RoadNetwork()
    a = network.add_vertex(Point(0, 0))
    b = network.add_vertex(Point(10, 0))
    c = network.add_vertex(Point(0, 10))
    network.add_edge(a, b, 10.0)
    network.add_edge(b, c, 15.0)
    network.add_edge(c, a, 10.0)
    return network, (a, b, c)


class TestConstruction:
    def test_vertex_and_edge_counts(self):
        network, _ = triangle_network()
        assert network.vertex_count == 3
        assert network.edge_count == 3
        assert network.total_length == pytest.approx(35.0)

    def test_default_edge_length_is_euclidean(self):
        network = RoadNetwork()
        a = network.add_vertex(Point(0, 0))
        b = network.add_vertex(Point(3, 4))
        edge_id = network.add_edge(a, b)
        assert network.edge(edge_id).length == pytest.approx(5.0)

    def test_edge_validation(self):
        network = RoadNetwork()
        a = network.add_vertex(Point(0, 0))
        b = network.add_vertex(Point(1, 0))
        with pytest.raises(RoadNetworkError):
            network.add_edge(a, 99)
        with pytest.raises(RoadNetworkError):
            network.add_edge(a, a)
        with pytest.raises(RoadNetworkError):
            network.add_edge(a, b, length=0.0)

    def test_has_vertex_and_has_vertices(self):
        network, (a, b, c) = triangle_network()
        assert network.has_vertex(a)
        assert not network.has_vertex(77)
        assert network.has_vertices([a, b, c])
        assert network.has_vertices([])
        assert not network.has_vertices([a, 77])

    def test_unknown_lookups_raise(self):
        network, _ = triangle_network()
        with pytest.raises(RoadNetworkError):
            network.vertex_position(77)
        with pytest.raises(RoadNetworkError):
            network.edge(77)
        with pytest.raises(RoadNetworkError):
            network.incident_edges(77)
        with pytest.raises(RoadNetworkError):
            network.degree(77)


class TestTopology:
    def test_neighbors_and_degree(self):
        network, (a, b, c) = triangle_network()
        assert network.degree(a) == 2
        neighbor_vertices = {vertex for vertex, _, _ in network.neighbors(a)}
        assert neighbor_vertices == {b, c}

    def test_find_edge(self):
        network, (a, b, c) = triangle_network()
        assert network.find_edge(a, b) is not None
        assert network.find_edge(a, b).length == pytest.approx(10.0)
        isolated = network.add_vertex(Point(50, 50))
        assert network.find_edge(a, isolated) is None

    def test_edge_other_endpoint(self):
        network, (a, b, _) = triangle_network()
        edge = network.find_edge(a, b)
        assert edge.other_endpoint(a) == b
        assert edge.other_endpoint(b) == a
        with pytest.raises(RoadNetworkError):
            edge.other_endpoint(1234)

    def test_connectivity(self):
        network, (a, _, _) = triangle_network()
        assert network.is_connected()
        network.add_vertex(Point(99, 99))  # isolated vertex
        assert not network.is_connected()
        assert a in network.connected_component(a)

    def test_empty_network_is_connected(self):
        assert RoadNetwork().is_connected()


class TestSubnetwork:
    def test_subnetwork_preserves_lengths_and_positions(self):
        network, (a, b, c) = triangle_network()
        edge_ab = network.find_edge(a, b).edge_id
        edge_bc = network.find_edge(b, c).edge_id
        sub, vertex_map, edge_map = network.subnetwork([edge_ab, edge_bc])
        assert sub.vertex_count == 3
        assert sub.edge_count == 2
        assert sub.edge(edge_map[edge_ab]).length == pytest.approx(10.0)
        assert sub.vertex_position(vertex_map[a]) == Point(0, 0)

    def test_subnetwork_of_single_edge(self):
        network, (a, b, _) = triangle_network()
        edge_ab = network.find_edge(a, b).edge_id
        sub, vertex_map, edge_map = network.subnetwork([edge_ab])
        assert sub.vertex_count == 2
        assert sub.edge_count == 1
        assert set(vertex_map) == {a, b}

    def test_subnetwork_empty(self):
        network, _ = triangle_network()
        sub, vertex_map, edge_map = network.subnetwork([])
        assert sub.vertex_count == 0
        assert sub.edge_count == 0
