"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_compare_plane(self, capsys):
        exit_code = main(["compare", "--space", "plane", "--n", "200", "--steps", "30"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "INS" in captured.out
        assert "Naive" in captured.out
        assert "recomputations" in captured.out

    def test_compare_road(self, capsys):
        exit_code = main(["compare", "--space", "road", "--k", "3", "--steps", "30"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "INS-road" in captured.out

    def test_demo_plane(self, capsys):
        exit_code = main(["demo-plane", "--frames", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "kNN" in captured.out
        assert "legend" in captured.out

    def test_demo_road(self, capsys):
        exit_code = main(["demo-road", "--k", "3", "--frames", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "legend" in captured.out

    def test_serve_euclidean_sharded(self, capsys):
        exit_code = main(
            [
                "serve", "--queries", "4", "--n", "150", "--steps", "10",
                "--workers", "2", "--check",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "communication bill" in captured.out
        assert "all answers correct" in captured.out

    def test_serve_road(self, capsys):
        exit_code = main(
            ["serve", "--metric", "road", "--queries", "2", "--k", "3", "--steps", "8"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "total    messages" in captured.out
