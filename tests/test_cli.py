"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_compare_plane(self, capsys):
        exit_code = main(["compare", "--space", "plane", "--n", "200", "--steps", "30"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "INS" in captured.out
        assert "Naive" in captured.out
        assert "recomputations" in captured.out

    def test_compare_road(self, capsys):
        exit_code = main(["compare", "--space", "road", "--k", "3", "--steps", "30"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "INS-road" in captured.out

    def test_demo_plane(self, capsys):
        exit_code = main(["demo-plane", "--frames", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "kNN" in captured.out
        assert "legend" in captured.out

    def test_demo_road(self, capsys):
        exit_code = main(["demo-road", "--k", "3", "--frames", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "legend" in captured.out

    def test_serve_euclidean_sharded(self, capsys):
        exit_code = main(
            [
                "serve", "--queries", "4", "--n", "150", "--steps", "10",
                "--workers", "2", "--check",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "communication bill" in captured.out
        assert "all answers correct" in captured.out

    def test_serve_road(self, capsys):
        exit_code = main(
            ["serve", "--metric", "road", "--queries", "2", "--k", "3", "--steps", "8"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "total    messages" in captured.out

    def test_serve_over_tcp_transport_with_per_session(self, capsys):
        exit_code = main(
            [
                "serve", "--queries", "3", "--n", "150", "--steps", "8",
                "--transport", "tcp", "--per-session",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "transport               : tcp" in captured.out
        assert "total    bytes" in captured.out
        assert "per-session breakdown" in captured.out
        assert "session    0" in captured.out

    def test_serve_over_process_transport(self, capsys):
        exit_code = main(
            [
                "serve", "--queries", "3", "--n", "150", "--steps", "8",
                "--transport", "process", "--workers", "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "transport               : process" in captured.out
        assert "workers                 : 2" in captured.out

    def test_serve_durably_then_recover_reports_health(self, tmp_path, capsys):
        wal_dir = str(tmp_path / "state")
        exit_code = main(
            [
                "serve", "--queries", "3", "--n", "150", "--steps", "8",
                "--wal-dir", wal_dir, "--snapshot-every", "20",
            ]
        )
        assert exit_code == 0
        capsys.readouterr()
        exit_code = main(["recover", "--wal-dir", wal_dir])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "verdict                 : recoverable" in captured.out
        assert "snapshots" in captured.out
        assert "write-ahead log" in captured.out

    def test_recover_flags_corruption_and_fails(self, tmp_path, capsys):
        from repro.durability import wal_path
        from repro.testing import flip_byte

        wal_dir = str(tmp_path / "state")
        assert main(
            ["serve", "--queries", "2", "--n", "150", "--steps", "6",
             "--wal-dir", wal_dir]
        ) == 0
        capsys.readouterr()
        # Mangle a record in the middle of the log: unrecoverable.
        flip_byte(wal_path(wal_dir), 40)
        exit_code = main(["recover", "--wal-dir", wal_dir])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "UNRECOVERABLE" in captured.out

    def test_client_against_a_listening_server(self, capsys):
        from repro.service import open_service
        from repro.transport import KNNServer
        from repro.workloads.datasets import uniform_points

        service = open_service(
            metric="euclidean", objects=uniform_points(200, seed=47)
        )
        with KNNServer(service) as server:
            host, port = server.address
            exit_code = main(
                [
                    "client", "--connect", f"{host}:{port}",
                    "--queries", "2", "--steps", "6", "--per-session",
                ]
            )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "server-side communication bill" in captured.out
        assert "codec-predicted match : True" in captured.out
        assert "per-session breakdown" in captured.out
