"""WAL framing: round trips, torn tails at every byte offset, corruption.

The log's two failure shapes must stay distinguishable forever: a file
that simply *ends early* (a crash mid-append — possible at any byte) is
repaired by truncation, while an intact record with mangled content (CRC
or sequence mismatch, impossible length) is corruption and must raise the
typed :class:`~repro.errors.WALCorruptError`.
"""

import os

import pytest

from repro.durability import WriteAheadLog, replay_wal, scan_wal
from repro.durability.wal import WAL_MAGIC, _HEADER
from repro.errors import ConfigurationError, WALCorruptError
from repro.geometry.point import Point
from repro.service.messages import PositionUpdate, UpdateBatch
from repro.testing import flip_byte, truncate_file
from repro.transport.codec import CloseSession, OpenSession, RefreshRequest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the CI image ships hypothesis
    HAVE_HYPOTHESIS = False


def sample_messages():
    """A little bit of every record kind the durable service logs."""
    return [
        OpenSession(position=Point(1.0, 2.0), k=3, rho=1.6),
        PositionUpdate(query_id=0, position=Point(4.5, -1.25)),
        RefreshRequest(query_id=0),
        UpdateBatch(inserts=(Point(9.0, 9.0),), deletes=(4,), moves=()),
        CloseSession(query_id=0),
    ]


def write_log(path, messages, fsync="off"):
    with WriteAheadLog(path, fsync=fsync) as wal:
        for message in messages:
            wal.append(message)


class TestRoundTrip:
    def test_append_scan_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        messages = sample_messages()
        write_log(path, messages)
        scan = scan_wal(path)
        assert [record.message for record in scan.records] == messages
        assert [record.seq for record in scan.records] == [1, 2, 3, 4, 5]
        assert scan.torn_bytes == 0
        assert scan.valid_bytes == os.path.getsize(path)

    def test_reopen_resumes_sequence(self, tmp_path):
        path = str(tmp_path / "wal.log")
        write_log(path, sample_messages()[:2])
        with WriteAheadLog(path) as wal:
            assert wal.next_seq == 3
            assert wal.append(RefreshRequest(query_id=1)) == 3
        assert [record.seq for record in scan_wal(path).records] == [1, 2, 3]

    def test_replay_after_seq_filters(self, tmp_path):
        path = str(tmp_path / "wal.log")
        write_log(path, sample_messages())
        assert [record.seq for record in replay_wal(path, after_seq=3)] == [4, 5]
        assert len(replay_wal(path)) == 5

    def test_fsync_policy_is_validated(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WriteAheadLog(str(tmp_path / "wal.log"), fsync="sometimes")

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        wal.close()
        with pytest.raises(ConfigurationError):
            wal.append(RefreshRequest(query_id=0))


class TestTornTail:
    """A cut at ANY byte offset must be survivable — the acceptance bar."""

    def test_cut_at_every_byte_offset(self, tmp_path):
        reference = str(tmp_path / "reference.log")
        messages = sample_messages()
        write_log(reference, messages)
        with open(reference, "rb") as handle:
            data = handle.read()
        full_scan = scan_wal(reference)
        boundaries = [record.offset for record in full_scan.records] + [
            full_scan.valid_bytes
        ]
        for cut in range(len(data)):
            path = str(tmp_path / "cut.log")
            with open(path, "wb") as handle:
                handle.write(data[:cut])
            scan = scan_wal(path)  # never raises: truncation is not corruption
            # The intact prefix is exactly the records that fit below the cut.
            survivors = sum(1 for boundary in boundaries[1:] if boundary <= cut)
            assert len(scan.records) == survivors, f"cut at {cut}"
            assert [r.message for r in scan.records] == messages[:survivors]
            assert scan.valid_bytes + scan.torn_bytes == cut
            # The writer repairs the tail and appending keeps working.
            with WriteAheadLog(path) as wal:
                assert wal.next_seq == survivors + 1
                wal.append(RefreshRequest(query_id=99))
            repaired = scan_wal(path)
            assert repaired.torn_bytes == 0
            assert len(repaired.records) == survivors + 1
            assert repaired.records[-1].message == RefreshRequest(query_id=99)
            os.unlink(path)

    def test_torn_tail_records_never_replay(self, tmp_path):
        path = str(tmp_path / "wal.log")
        write_log(path, sample_messages())
        truncate_file(path, os.path.getsize(path) - 3)
        assert len(replay_wal(path)) == 4


class TestCorruption:
    def corrupt_and_expect(self, path, offset):
        flip_byte(path, offset)
        with pytest.raises(WALCorruptError):
            scan_wal(path)
        # The writer must refuse it too: corruption is not repairable.
        with pytest.raises(WALCorruptError):
            WriteAheadLog(path)

    def test_flipped_payload_byte_fails_crc(self, tmp_path):
        path = str(tmp_path / "wal.log")
        write_log(path, sample_messages())
        middle = scan_wal(path).records[2]
        self.corrupt_and_expect(path, middle.offset + _HEADER.size + 1)

    def test_flipped_sequence_byte_is_corruption(self, tmp_path):
        path = str(tmp_path / "wal.log")
        write_log(path, sample_messages())
        middle = scan_wal(path).records[2]
        # Bytes 4..11 of the header hold the sequence number.
        self.corrupt_and_expect(path, middle.offset + 4 + 7)

    def test_flipped_crc_byte_is_corruption(self, tmp_path):
        path = str(tmp_path / "wal.log")
        write_log(path, sample_messages())
        middle = scan_wal(path).records[2]
        self.corrupt_and_expect(path, middle.offset + 12)

    def test_impossible_declared_length_is_corruption(self, tmp_path):
        path = str(tmp_path / "wal.log")
        write_log(path, sample_messages())
        # Flipping the length's high byte declares a gigabyte-scale payload:
        # unreachable for any legitimate writer, so corruption — not a tail.
        first = scan_wal(path).records[0]
        self.corrupt_and_expect(path, first.offset)

    def test_bad_magic_is_corruption(self, tmp_path):
        path = str(tmp_path / "wal.log")
        write_log(path, sample_messages())
        flip_byte(path, 2)
        with pytest.raises(WALCorruptError):
            scan_wal(path)

    def test_cut_inside_the_magic_is_still_a_torn_log(self, tmp_path):
        path = str(tmp_path / "wal.log")
        write_log(path, sample_messages())
        truncate_file(path, len(WAL_MAGIC) // 2)
        assert scan_wal(path).records == ()
        # Reopening re-seeds the magic so the repaired log stays readable.
        with WriteAheadLog(path) as wal:
            wal.append(RefreshRequest(query_id=0))
        assert len(scan_wal(path).records) == 1


if HAVE_HYPOTHESIS:

    finite = st.floats(
        allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
    )
    message_strategy = st.one_of(
        st.builds(
            PositionUpdate,
            query_id=st.integers(min_value=0, max_value=2**31 - 1),
            position=st.builds(Point, finite, finite),
        ),
        st.builds(RefreshRequest, query_id=st.integers(0, 2**31 - 1)),
        st.builds(CloseSession, query_id=st.integers(0, 2**31 - 1)),
        st.builds(
            OpenSession,
            position=st.builds(Point, finite, finite),
            k=st.integers(1, 64),
            rho=st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
        ),
    )

    class TestFramingProperty:
        @settings(max_examples=50, deadline=None)
        @given(messages=st.lists(message_strategy, max_size=12))
        def test_any_message_sequence_round_trips(self, tmp_path_factory, messages):
            directory = tmp_path_factory.mktemp("wal-prop")
            path = str(directory / "wal.log")
            write_log(path, messages)
            scan = scan_wal(path)
            assert [record.message for record in scan.records] == messages
            assert [record.seq for record in scan.records] == list(
                range(1, len(messages) + 1)
            )
            assert scan.torn_bytes == 0

        @settings(max_examples=25, deadline=None)
        @given(
            messages=st.lists(message_strategy, min_size=1, max_size=8),
            cut_fraction=st.floats(min_value=0.0, max_value=1.0),
        )
        def test_any_cut_is_a_prefix(self, tmp_path_factory, messages, cut_fraction):
            directory = tmp_path_factory.mktemp("wal-prop")
            path = str(directory / "wal.log")
            write_log(path, messages)
            size = os.path.getsize(path)
            truncate_file(path, int(size * cut_fraction))
            scan = scan_wal(path)
            assert [record.message for record in scan.records] == messages[
                : len(scan.records)
            ]
