"""No-downtime drills: rolling restarts, drain-and-handoff, group commit.

The acceptance bar of the rolling-restart work, from the test side:

* **Shard drain-and-handoff** — a process shard told to drain checkpoints,
  parks its sessions and is replaced by a worker that replays its log,
  while every other shard keeps serving; a run that rolled *every* shard
  is bit-identical (answers, message/object/byte counters, per-session
  bills) to one that never restarted anything.
* **Socket-server rolling restart** — :meth:`KNNServer.drain` parks every
  live session; a successor process recovers the directory, adopts them,
  and clients re-attach mid-stream with nothing lost.
* **Group-commit WAL** — ``fsync="group"`` gives ``"always"``-grade
  acknowledgement semantics (a reply is not sent until the record is on
  stable storage) while batching concurrent commits into shared fsyncs.
* **Segment rotation** — the log rotates into sealed segments under
  traffic, checkpoints reclaim them, and recovery replays the chain
  bit-identically.

Plus the sharp edges: orphan-claim races, wedged-worker shutdown, and
retry-jitter determinism.
"""

import os
import random
import signal
import socket
import threading
import time

import pytest

from repro.durability import (
    DurableKNNService,
    inventory,
    list_segments,
    recover_service,
)
from repro.durability.wal import WriteAheadLog, scan_chain
from repro.errors import ConfigurationError, QueryError
from repro.geometry.point import Point
from repro.service import KNNService
from repro.service.messages import PositionUpdate
from repro.simulation.server_sim import build_server, simulate_server
from repro.testing import FaultPlan, ShardDrain, WorkerKill
from repro.transport import (
    KNNServer,
    MessageStream,
    ProcessShardedDispatcher,
    RemoteService,
    ServiceSpec,
    connect,
)
from repro.transport import procpool as procpool_module
from repro.transport.codec import (
    OpenSession,
    SessionOpened,
    StatsRequest,
    StatsResponse,
)
from repro.core.stats import CommunicationStats
from repro.workloads.datasets import uniform_points

from durability_drivers import (
    ScenarioDriver,
    build_scenario,
    counters_of,
)


def _per_session_dicts(run):
    return {
        query_id: stats.as_dict()
        for query_id, stats in run.per_session_communication.items()
    }


def assert_runs_identical(rolled, reference):
    assert rolled.results == reference.results
    assert rolled.communication.as_dict() == reference.communication.as_dict()
    assert _per_session_dicts(rolled) == _per_session_dicts(reference)


# ----------------------------------------------------------------------
# Tentpole 1: drain-and-handoff of process shards
# ----------------------------------------------------------------------
class TestRollingShardDrain:
    @pytest.mark.parametrize("metric", ["euclidean", "road"])
    def test_rolling_every_shard_is_invisible(self, tmp_path, metric):
        """Each shard drained once mid-stream == never restarted at all."""
        scenario = build_scenario(metric)
        reference = simulate_server(scenario, transport="process", workers=2)
        plan = FaultPlan.rolling(workers=2, start_epoch=1, stride=1)
        rolled = simulate_server(
            scenario,
            transport="process",
            workers=2,
            wal_dir=str(tmp_path / "state"),
            faults=plan,
        )
        assert rolled.drains == 2
        assert len(rolled.handoff_seconds) == 2
        assert all(latency > 0.0 for latency in rolled.handoff_seconds)
        assert rolled.kills_injected == 0
        assert_runs_identical(rolled, reference)

    def test_drains_and_kills_share_a_run(self, tmp_path):
        """Graceful drains compose with violent kills in one fault plan."""
        scenario = build_scenario("euclidean")
        reference = simulate_server(scenario, transport="process", workers=2)
        plan = FaultPlan(
            kills=(WorkerKill(epoch=2, worker=0, phase="after_batch"),),
            drains=(
                ShardDrain(epoch=1, worker=1),
                ShardDrain(epoch=3, worker=0),
            ),
        )
        rolled = simulate_server(
            scenario,
            transport="process",
            workers=2,
            wal_dir=str(tmp_path / "state"),
            faults=plan,
        )
        assert rolled.kills_injected == 1
        assert rolled.drains == 2
        assert_runs_identical(rolled, reference)

    def test_explicit_drain_repeatedly_on_one_shard(self, tmp_path):
        """drain_worker is a plain method; the same shard can roll twice."""
        spec = ServiceSpec(
            metric="euclidean", objects=tuple(uniform_points(80, seed=13))
        )
        with ProcessShardedDispatcher(
            spec, workers=2, wal_dir=str(tmp_path / "state")
        ) as pool:
            sessions = [pool.open_session(Point(i, i), k=3) for i in range(4)]
            before = pool.advance(
                [(session, Point(40.0, 40.0)) for session in sessions]
            )
            pool.drain_worker(1)
            pool.drain_worker(1)
            after = pool.advance(
                [(session, Point(40.0, 40.0)) for session in sessions]
            )
            # Same positions, same index: the drained shard's sessions
            # answer identically to their own pre-drain answers.
            for first, second in zip(before, after):
                assert first.result.knn == second.result.knn
            assert pool.drains == 2
            assert pool.respawns == 0  # graceful: not a crash recovery
            assert len(pool.handoff_seconds) == 2

    def test_drain_requires_wal_dir(self):
        spec = ServiceSpec(
            metric="euclidean", objects=tuple(uniform_points(50, seed=13))
        )
        with ProcessShardedDispatcher(spec, workers=1) as pool:
            with pytest.raises(ConfigurationError, match="wal_dir"):
                pool.drain_worker(0)

    def test_drain_validates_the_worker_index(self, tmp_path):
        spec = ServiceSpec(
            metric="euclidean", objects=tuple(uniform_points(50, seed=13))
        )
        with ProcessShardedDispatcher(
            spec, workers=1, wal_dir=str(tmp_path / "state")
        ) as pool:
            with pytest.raises(ConfigurationError, match="index"):
                pool.drain_worker(1)

    def test_shard_drain_validation_and_plan_helpers(self):
        with pytest.raises(ConfigurationError):
            ShardDrain(epoch=0, worker=0)
        with pytest.raises(ConfigurationError):
            ShardDrain(epoch=1, worker=-1)
        with pytest.raises(ConfigurationError):
            FaultPlan.rolling(workers=0)
        plan = FaultPlan.rolling(workers=3, start_epoch=2, stride=3)
        assert plan.drain_count == 3
        assert [drain.epoch for drain in plan.drains] == [2, 5, 8]
        assert [drain.worker for drain in plan.drains] == [0, 1, 2]
        assert plan.drains_for(5) == [1]
        assert plan.drains_for(4) == []

    def test_random_plans_with_drains_keep_their_kills(self):
        """Adding drains to a seeded plan never reshuffles its kills."""
        base = FaultPlan.random(seed=5, epochs=10, workers=3, kills=2)
        extended = FaultPlan.random(
            seed=5, epochs=10, workers=3, kills=2, drains=3
        )
        assert extended.kills == base.kills
        assert extended.drain_count == 3
        assert extended == FaultPlan.random(
            seed=5, epochs=10, workers=3, kills=2, drains=3
        )


# ----------------------------------------------------------------------
# Tentpole 2: rolling restart of the socket server
# ----------------------------------------------------------------------
class TestServerDrainRestart:
    def _tcp_run(self, wal_dir, scenario, drain_at=None):
        """Drive the scenario over TCP; optionally drain+restart mid-way.

        Returns ``(answers, aggregate_dict, per_session_dicts)`` read
        through the final connection — recovery restores the counters, so
        a restarted run reports exactly what an uninterrupted one does.
        """
        service = DurableKNNService(
            build_server(scenario), wal_dir, wire_billing=True
        )
        server = KNNServer(service).start()
        remote = connect(server.address)
        driver = ScenarioDriver(scenario, "euclidean")
        driver.open_sessions(remote)
        stop = scenario.timestamps
        try:
            if drain_at is None:
                driver.run(remote, 1, stop)
            else:
                driver.run(remote, 1, drain_at)
                session_specs = [
                    (session.query_id, session.k) for session in driver.sessions
                ]
                server.drain()
                # Zero sessions dropped: every live session is parked.
                assert sorted(server.orphans) == sorted(
                    query_id for query_id, _ in session_specs
                )
                try:
                    remote._stream.close()
                except Exception:
                    pass
                # The successor: recover the directory, adopt, re-attach.
                service = recover_service(wal_dir, wire_billing=True)
                server = KNNServer(service, adopt_sessions=True).start()
                remote = connect(server.address)
                driver.sessions = [
                    remote.attach_session(query_id, k=k)
                    for query_id, k in session_specs
                ]
                driver.run(remote, drain_at, stop)
            aggregate = remote.communication().as_dict()
            per_session = {
                query_id: stats.as_dict()
                for query_id, stats in remote.per_session_communication().items()
            }
        finally:
            try:
                remote.close()
            except Exception:
                pass
            server.stop()
            service.close_wal()
        return driver.answers, aggregate, per_session

    def test_mid_stream_drain_restart_is_invisible(self, tmp_path):
        """Drain the TCP server mid-run; the successor picks up the
        sessions and the completed run is bit-identical to one that never
        restarted — answers, aggregate bill and per-session bills."""
        scenario = build_scenario("euclidean")
        continuous = self._tcp_run(str(tmp_path / "ref"), scenario)
        rolled = self._tcp_run(
            str(tmp_path / "rolled"), scenario, drain_at=5
        )
        assert rolled[0] == continuous[0]
        assert rolled[1] == continuous[1]
        assert rolled[2] == continuous[2]

    def test_client_drain_call_parks_every_session(self, tmp_path):
        """RemoteService.drain(): checkpointed ack, sessions parked."""
        service = DurableKNNService(
            build_server(build_scenario("euclidean")),
            str(tmp_path / "state"),
            wire_billing=True,
        )
        server = KNNServer(service).start()
        try:
            remote = connect(server.address)
            first = remote.open_session(Point(10.0, 10.0), k=3)
            second = remote.open_session(Point(90.0, 90.0), k=3)
            first.update(Point(12.0, 10.0))
            ack = remote.drain()
            assert ack.session_ids == (first.query_id, second.query_id)
            assert ack.wal_seq == service.wal.last_seq
            assert remote.closed
            # The connection parked both sessions instead of closing them.
            deadline = time.monotonic() + 5.0
            while (
                len(server.orphans) < 2 and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert sorted(server.orphans) == [
                first.query_id,
                second.query_id,
            ]
            assert len(service.sessions()) == 2
        finally:
            server.stop()
            service.close_wal()

    def test_drained_server_releases_a_recoverable_log(self, tmp_path):
        """KNNServer.drain() checkpoints: recovery needs no replay."""
        wal_dir = str(tmp_path / "state")
        service = DurableKNNService(
            build_server(build_scenario("euclidean")), wal_dir,
            wire_billing=True,
        )
        server = KNNServer(service).start()
        remote = connect(server.address)
        session = remote.open_session(Point(10.0, 10.0), k=3)
        answer = session.update(Point(30.0, 10.0))
        server.drain()
        assert server.draining
        report = inventory(wal_dir)
        assert report["healthy"]
        assert report["replay_records"] == 0  # checkpoint covered the log
        recovered = recover_service(wal_dir, wire_billing=True)
        adopted = {s.query_id: s for s in recovered.sessions()}
        assert list(adopted) == [session.query_id]
        # The recovered session is mid-stream: same position, same answer.
        response = adopted[session.query_id].update(Point(30.0, 10.0))
        assert response.result.knn == answer.result.knn
        recovered.close_wal()


# ----------------------------------------------------------------------
# Orphan pool: claim races
# ----------------------------------------------------------------------
class TestOrphanClaimRace:
    def test_exactly_one_connection_claims_a_parked_session(self, tmp_path):
        """Two connections race to adopt the same recovered session: the
        claim is atomic, so exactly one wins and the loser gets the typed
        unknown-session error (not a shared or duplicated session)."""
        service = DurableKNNService(
            build_server(build_scenario("euclidean")),
            str(tmp_path / "state"),
            wire_billing=True,
        )
        target = service.open_session(Point(50.0, 50.0), k=3)
        server = KNNServer(service, adopt_sessions=True).start()
        try:
            outcomes = []
            barrier = threading.Barrier(2)

            def racer():
                remote = connect(server.address)
                handle = remote.attach_session(target.query_id, k=3)
                barrier.wait()
                try:
                    handle.update(Point(55.0, 50.0))
                    outcomes.append("won")
                except QueryError:
                    outcomes.append("lost")
                finally:
                    try:
                        remote._stream.close()
                    except Exception:
                        pass

            threads = [threading.Thread(target=racer) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
            assert sorted(outcomes) == ["lost", "won"]
        finally:
            server.stop()
            service.close_wal()


# ----------------------------------------------------------------------
# Tentpole 3: group-commit WAL
# ----------------------------------------------------------------------
class TestGroupCommit:
    def test_group_matches_always_bit_for_bit(self, tmp_path):
        """Same scenario under fsync='always' and fsync='group': identical
        answers, counters and recovered state — only the fsync count may
        differ.  Group commit changes *when* the disk syncs, never what
        the service says."""
        scenario = build_scenario("euclidean")
        outcomes = {}
        for policy in ("always", "group"):
            wal_dir = str(tmp_path / policy)
            service = DurableKNNService(
                build_server(scenario), wal_dir, fsync=policy
            )
            driver = ScenarioDriver(scenario, "euclidean")
            driver.open_sessions(service)
            driver.run(service, 1, scenario.timestamps)
            service.wal.wait_durable(service.wal.last_seq)
            fsyncs = service.wal.fsync_count
            appends = service.wal.append_count
            assert service.wal.synced_seq == service.wal.last_seq
            service.close_wal()
            recovered = recover_service(wal_dir, fsync=policy)
            outcomes[policy] = (
                driver.answers,
                counters_of(recovered),
                fsyncs,
                appends,
            )
            recovered.close_wal()
        always, group = outcomes["always"], outcomes["group"]
        assert group[0] == always[0]
        assert group[1] == always[1]
        assert group[3] == always[3]  # same appends...
        assert group[2] <= always[2]  # ...never more fsyncs

    def test_concurrent_appends_share_fsyncs(self, tmp_path):
        """The headline property: N writers committing concurrently under
        fsync='group' are acknowledged durably with far fewer fsyncs than
        one-per-append — and the log chain stays perfectly intact."""
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path, fsync="group")
        writers, per_writer = 8, 25

        def hammer():
            for _ in range(per_writer):
                seq = log.append(PositionUpdate(query_id=1, position=Point(1.0, 2.0)))
                log.wait_durable(seq)

        threads = [threading.Thread(target=hammer) for _ in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = writers * per_writer
        assert log.append_count == total
        assert log.synced_seq == log.last_seq  # every ack was durable
        assert log.fsync_count * 2 <= total  # >=2x fewer fsyncs than always
        log.close()
        scan = scan_chain(path)
        assert len(scan.records) == total

    def test_durability_token_only_exists_under_group(self, tmp_path):
        """The ack-barrier seam: a token (and a real barrier) only under
        fsync='group'; every other policy keeps its original reply path."""
        engine = build_server(build_scenario("euclidean"))
        plain = KNNService(engine)
        assert plain.durability_token() is None
        plain.durability_barrier(None)  # no-op by contract
        for policy, expects_token in (
            ("group", True),
            ("batch", False),
            ("off", False),
        ):
            service = DurableKNNService(
                build_server(build_scenario("euclidean")),
                str(tmp_path / policy),
                fsync=policy,
            )
            token = service.durability_token()
            if expects_token:
                assert token == service.wal.last_seq
                service.durability_barrier(token)
                assert service.wal.synced_seq >= token
            else:
                assert token is None
                service.durability_barrier(token)
            service.close_wal()


# ----------------------------------------------------------------------
# Satellite: segment rotation + purge under live traffic
# ----------------------------------------------------------------------
class TestSegmentRotationUnderTraffic:
    def test_rotation_purge_and_recovery(self, tmp_path):
        """A rotating, checkpointing log under a full scenario: segments
        seal, checkpoints reclaim them, and the chain still recovers the
        exact final state."""
        scenario = build_scenario("euclidean")
        wal_dir = str(tmp_path / "state")
        service = DurableKNNService(
            build_server(scenario),
            wal_dir,
            snapshot_every=40,
            segment_bytes=512,
        )
        driver = ScenarioDriver(scenario, "euclidean")
        driver.open_sessions(service)
        driver.run(service, 1, scenario.timestamps)
        assert service.wal.rotations >= 1
        live_counters = counters_of(service)
        live_epoch = service.epoch
        # An explicit checkpoint purges every sealed segment it covers.
        service.checkpoint()
        assert list_segments(wal_dir) == []
        service.close_wal()
        report = inventory(wal_dir)
        assert report["healthy"]
        assert report["segments"]["count"] == 0
        recovered = recover_service(wal_dir)
        assert recovered.epoch == live_epoch
        assert counters_of(recovered) == live_counters
        recovered.close_wal()

    def test_recovery_replays_across_sealed_segments(self, tmp_path):
        """With checkpoints off, recovery walks snapshot + the whole
        segment chain — rotation must never change what replay sees."""
        scenario = build_scenario("euclidean")
        plain_dir = str(tmp_path / "plain")
        rotated_dir = str(tmp_path / "rotated")
        answers = {}
        for wal_dir, segment_bytes in (
            (plain_dir, None),
            (rotated_dir, 384),
        ):
            service = DurableKNNService(
                build_server(scenario), wal_dir, segment_bytes=segment_bytes
            )
            driver = ScenarioDriver(scenario, "euclidean")
            driver.open_sessions(service)
            driver.run(service, 1, scenario.timestamps)
            service.close_wal()
            answers[wal_dir] = (driver.answers, counters_of(service))
        assert answers[rotated_dir] == answers[plain_dir]
        assert len(list_segments(rotated_dir)) >= 1  # it really rotated
        recovered = recover_service(rotated_dir)
        reference = recover_service(plain_dir)
        assert counters_of(recovered) == counters_of(reference)
        recovered.close_wal()
        reference.close_wal()


# ----------------------------------------------------------------------
# Satellite: shutdown escalation never hangs on a wedged worker
# ----------------------------------------------------------------------
class TestShutdownEscalation:
    def test_close_never_hangs_on_a_sigstopped_worker(self, monkeypatch):
        """A SIGSTOPped worker ignores EOF and SIGTERM; close() must walk
        the whole join -> terminate -> kill ladder and still return."""
        monkeypatch.setattr(procpool_module, "SHUTDOWN_GRACE_SECONDS", 0.5)
        spec = ServiceSpec(
            metric="euclidean", objects=tuple(uniform_points(60, seed=3))
        )
        pool = ProcessShardedDispatcher(spec, workers=2)
        session = pool.open_session(Point(0.0, 0.0), k=3)
        pool.advance([(session, Point(5.0, 5.0))])
        victim = pool._processes[0]
        os.kill(victim.pid, signal.SIGSTOP)
        started = time.monotonic()
        pool.close()
        elapsed = time.monotonic() - started
        assert elapsed < 10.0
        assert all(not process.is_alive() for process in pool._processes)


# ----------------------------------------------------------------------
# Satellite: deterministic retry jitter
# ----------------------------------------------------------------------
def _predict_backoffs(rng, count, base=0.05):
    """The sleep sequence the client's retry loop derives from ``rng``."""
    delays = []
    delay = base
    for _ in range(count):
        delays.append(delay + rng.uniform(0.0, delay))
        delay *= 2
    return delays


def _stub_remote(stats_delays, **kwargs):
    """A RemoteService against an in-test peer that answers stats slowly."""
    theirs, ours = socket.socketpair()

    def serve(sock, delays):
        stream = MessageStream(sock)
        pending = list(delays)
        try:
            while True:
                received = stream.receive()
                if received is None:
                    return
                message, _ = received
                if isinstance(message, OpenSession):
                    stream.send(SessionOpened(query_id=0))
                elif isinstance(message, StatsRequest):
                    delay = pending.pop(0) if pending else 0.0
                    if delay:
                        time.sleep(delay)
                    stream.send(
                        StatsResponse(
                            aggregate=CommunicationStats(), per_session=()
                        )
                    )
        except Exception:
            pass

    threading.Thread(target=serve, args=(ours, stats_delays), daemon=True).start()
    kwargs.setdefault("request_timeout", 0.2)
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("backoff", 0.05)
    return RemoteService(MessageStream(theirs), endpoint="stub", **kwargs)


class TestRetryJitterDeterminism:
    def test_injected_rng_and_sleep_make_backoff_exact(self):
        """The backoff delays are a pure function of the injected RNG —
        recorded by a fake sleeper, predicted by an identical RNG."""
        recorded = []
        remote = _stub_remote(
            stats_delays=[0.45],
            retry_rng=random.Random(123),
            retry_sleep=recorded.append,
        )
        remote.communication()
        # How many attempts time out depends on wall-clock scheduling, but
        # every backoff must be the next draw of the injected RNG with the
        # delay doubling from the configured base.
        assert recorded == _predict_backoffs(random.Random(123), len(recorded))
        assert len(recorded) >= 1
        remote.close()

    def test_same_seed_same_delays(self):
        """Two clients with the same retry_seed back off identically."""
        sequences = []
        for _ in range(2):
            recorded = []
            remote = _stub_remote(
                stats_delays=[0.45],
                retries=3,
                retry_seed=9,
                retry_sleep=recorded.append,
            )
            remote.communication()
            sequences.append(tuple(recorded))
            remote.close()
            assert recorded == _predict_backoffs(random.Random(9), len(recorded))
            assert len(recorded) >= 1
        # Both runs sample prefixes of the same seeded sequence.
        shared = min(len(sequences[0]), len(sequences[1]))
        assert sequences[0][:shared] == sequences[1][:shared]
