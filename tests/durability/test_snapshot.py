"""Snapshot container: checksums, atomic visibility, fallback, round trips.

The low-level container must refuse any damaged file with the typed
:class:`~repro.errors.SnapshotError`, and the high-level payload (a full
serving engine of either metric, in either invalidation mode) must round
trip bit-identically — asserted by checkpointing a driven service and
recovering from the checkpoint with an empty replay suffix.
"""

import os

import pytest

from durability_drivers import (
    ScenarioDriver,
    build_scenario,
    build_server,
    counters_of,
    reference_run,
)
from repro.durability import (
    DurableKNNService,
    list_snapshots,
    load_latest_snapshot,
    read_snapshot,
    recover_service,
    write_snapshot,
)
from repro.errors import SnapshotError
from repro.testing import flip_byte, truncate_file


class TestContainer:
    def test_write_read_round_trip(self, tmp_path):
        directory = str(tmp_path)
        payload = {"answer": 42, "values": [1.5, 2.5]}
        path = write_snapshot(directory, payload, wal_seq=17)
        assert os.path.basename(path) == "snapshot-000000000017.snap"
        wal_seq, restored = read_snapshot(path)
        assert wal_seq == 17
        assert restored == payload

    def test_list_snapshots_sorted_by_seq(self, tmp_path):
        directory = str(tmp_path)
        for seq in (30, 5, 17):
            write_snapshot(directory, {"seq": seq}, wal_seq=seq)
        assert [seq for seq, _ in list_snapshots(directory)] == [5, 17, 30]

    def test_no_tmp_leftovers_after_write(self, tmp_path):
        write_snapshot(str(tmp_path), {"x": 1}, wal_seq=1)
        assert not [name for name in os.listdir(tmp_path) if name.endswith(".tmp")]

    def test_flipped_byte_is_a_typed_error(self, tmp_path):
        path = write_snapshot(str(tmp_path), {"x": 1}, wal_seq=1)
        flip_byte(path, os.path.getsize(path) - 1)
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_truncated_header_is_a_typed_error(self, tmp_path):
        path = write_snapshot(str(tmp_path), {"x": 1}, wal_seq=1)
        truncate_file(path, 10)
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_truncated_payload_is_a_typed_error(self, tmp_path):
        path = write_snapshot(str(tmp_path), {"x": "y" * 100}, wal_seq=1)
        truncate_file(path, os.path.getsize(path) - 5)
        with pytest.raises(SnapshotError):
            read_snapshot(path)


class TestLatestFallback:
    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        directory = str(tmp_path)
        write_snapshot(directory, {"gen": "old"}, wal_seq=10)
        newest = write_snapshot(directory, {"gen": "new"}, wal_seq=20)
        flip_byte(newest, os.path.getsize(newest) - 1)
        wal_seq, payload, path = load_latest_snapshot(directory)
        assert wal_seq == 10
        assert payload == {"gen": "old"}
        assert path.endswith("snapshot-000000000010.snap")

    def test_every_snapshot_corrupt_is_a_typed_error(self, tmp_path):
        directory = str(tmp_path)
        for seq in (1, 2):
            path = write_snapshot(directory, {"seq": seq}, wal_seq=seq)
            flip_byte(path, os.path.getsize(path) - 1)
        with pytest.raises(SnapshotError):
            load_latest_snapshot(directory)

    def test_empty_directory_is_a_typed_error(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_latest_snapshot(str(tmp_path / "missing"))


class TestEngineRoundTrip:
    """The payload that matters: full engines, both metrics, both modes."""

    @pytest.mark.parametrize("metric", ["euclidean", "road"])
    @pytest.mark.parametrize("invalidation", ["delta", "flag"])
    def test_checkpointed_engine_continues_bit_identically(
        self, tmp_path, metric, invalidation
    ):
        reference_driver, reference_service = reference_run(metric, invalidation)

        scenario = build_scenario(metric)
        wal_dir = str(tmp_path / "state")
        service = DurableKNNService(
            build_server(scenario, invalidation=invalidation), wal_dir
        )
        driver = ScenarioDriver(scenario, metric)
        driver.open_sessions(service)
        half = scenario.timestamps // 2
        driver.run(service, 1, half)
        # Checkpoint, then continue from *the snapshot alone*: the replay
        # suffix is empty, so any divergence is the snapshot's fault.
        service.checkpoint()
        service.close_wal()
        recovered = recover_service(wal_dir)
        driver.rebind(recovered)
        driver.run(recovered, half, scenario.timestamps)

        assert driver.answers == reference_driver.answers
        assert counters_of(recovered) == counters_of(reference_service)
        assert recovered.invalidation == invalidation
        assert recovered.metric == metric
