"""The restart-and-replay oracle: recovery is bit-identical, always.

A service killed at an arbitrary (seeded) step and recovered from its
snapshot + WAL suffix must continue with bit-identical kNN answers *and*
identical communication counters to a twin that never crashed — for both
metrics, both invalidation modes, and over the real socket server.
"""

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from durability_drivers import (
    ScenarioDriver,
    build_scenario,
    build_server,
    counters_of,
    reference_run,
)
from repro.durability import (
    DurableKNNService,
    has_durable_state,
    inventory,
    recover_service,
)
from repro.errors import DurabilityError, SnapshotError
from repro.geometry.point import Point


class TestRestartAndReplayOracle:
    @pytest.mark.parametrize("metric", ["euclidean", "road"])
    @pytest.mark.parametrize("invalidation", ["delta", "flag"])
    @pytest.mark.parametrize("crash_step", [2, 6])
    def test_recovered_run_is_bit_identical(
        self, tmp_path, metric, invalidation, crash_step
    ):
        reference_driver, reference_service = reference_run(metric, invalidation)

        scenario = build_scenario(metric)
        wal_dir = str(tmp_path / "state")
        service = DurableKNNService(
            build_server(scenario, invalidation=invalidation), wal_dir
        )
        driver = ScenarioDriver(scenario, metric)
        driver.open_sessions(service)
        driver.run(service, 1, crash_step)

        # Crash: nothing is closed gracefully — the sessions stay open in
        # the log, like a SIGKILLed server.  Only the file handle goes.
        service.close_wal()
        del service

        recovered = recover_service(wal_dir)
        driver.rebind(recovered)
        driver.run(recovered, crash_step, scenario.timestamps)

        assert driver.answers == reference_driver.answers
        assert driver.counts == reference_driver.counts
        assert counters_of(recovered) == counters_of(reference_service)
        assert recovered.epoch == reference_service.epoch
        assert recovered.object_count == reference_service.object_count

    def test_cold_rebuild_from_initial_snapshot_matches(self, tmp_path):
        """Full-log replay from the seq-0 snapshot lands in the same state."""
        reference_driver, reference_service = reference_run("euclidean", "delta")

        scenario = build_scenario("euclidean")
        wal_dir = str(tmp_path / "state")
        service = DurableKNNService(
            build_server(scenario, invalidation="delta"),
            wal_dir,
            snapshot_every=20,  # several checkpoints land mid-run
        )
        driver = ScenarioDriver(scenario, "euclidean")
        driver.open_sessions(service)
        driver.run(service, 1, scenario.timestamps)
        service.close_wal()

        cold = recover_service(wal_dir, use_latest_snapshot=False)
        assert counters_of(cold) == counters_of(reference_service)
        warm = recover_service(wal_dir)
        assert counters_of(warm) == counters_of(reference_service)
        assert {s.query_id for s in cold.sessions()} == {
            s.query_id for s in warm.sessions()
        }

    def test_recovery_mid_epoch_between_sessions(self, tmp_path):
        """Crashing between two sessions' updates of the same step is fine:
        each logged update replays, each unlogged one never happened."""
        scenario = build_scenario("euclidean")
        wal_dir = str(tmp_path / "state")
        service = DurableKNNService(
            build_server(scenario, invalidation="delta"), wal_dir
        )
        driver = ScenarioDriver(scenario, "euclidean")
        driver.open_sessions(service)
        # Advance only the first two sessions of step 1 by hand.
        partial = [
            session.update(trajectory[1])
            for session, trajectory in list(
                zip(driver.sessions, scenario.trajectories)
            )[:2]
        ]
        service.close_wal()
        recovered = recover_service(wal_dir)
        by_id = {s.query_id: s for s in recovered.sessions()}
        assert set(by_id) == {s.query_id for s in driver.sessions}
        # Re-delivering an already-applied position is a 0-cost echo.
        for session, trajectory, earlier in zip(
            driver.sessions, scenario.trajectories, partial
        ):
            again = by_id[session.query_id].update(trajectory[1])
            assert again.knn == earlier.knn
            assert again.round_trips == 0


class TestDurableServiceGuards:
    def test_refuses_a_populated_directory(self, tmp_path):
        wal_dir = str(tmp_path / "state")
        scenario = build_scenario("euclidean")
        service = DurableKNNService(build_server(scenario), wal_dir)
        service.close_wal()
        assert has_durable_state(wal_dir)
        with pytest.raises(DurabilityError):
            DurableKNNService(build_server(scenario), wal_dir)

    def test_refuses_an_engine_with_queries(self, tmp_path):
        from repro.service import KNNService

        scenario = build_scenario("euclidean")
        engine = build_server(scenario)
        plain = KNNService(engine)
        plain.open_session(scenario.trajectories[0][0], k=3)
        with pytest.raises(DurabilityError):
            DurableKNNService(engine, str(tmp_path / "state"))

    def test_recovering_an_empty_directory_is_a_typed_error(self, tmp_path):
        with pytest.raises(SnapshotError):
            recover_service(str(tmp_path / "nothing-here"))

    def test_inventory_reports_health(self, tmp_path):
        wal_dir = str(tmp_path / "state")
        scenario = build_scenario("euclidean")
        service = DurableKNNService(build_server(scenario), wal_dir)
        driver = ScenarioDriver(scenario, "euclidean")
        driver.open_sessions(service)
        driver.run(service, 1, 4)
        service.close_wal()
        report = inventory(wal_dir)
        assert report["healthy"]
        assert report["latest_valid_snapshot_seq"] == 0
        assert report["replay_records"] == report["wal"]["records"] > 0


SERVER_SCRIPT = """
import sys
from repro.durability import DurableKNNService, has_durable_state, recover_service
from repro.service import KNNService
from repro.transport import KNNServer
from repro.workloads.datasets import uniform_points
from repro.core.server import MovingKNNServer

wal_dir, port = sys.argv[1], int(sys.argv[2])
if has_durable_state(wal_dir):
    service = recover_service(wal_dir, wire_billing=True)
else:
    engine = MovingKNNServer(uniform_points(80, extent=1000.0, seed=5))
    service = DurableKNNService(engine, wal_dir, wire_billing=True)
server = KNNServer(service, port=port, adopt_sessions=True).start()
print("READY", flush=True)
import time
time.sleep(60)
"""


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _spawn_server(wal_dir, port):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [env.get("PYTHONPATH"), os.path.join(os.getcwd(), "src")])
    )
    process = subprocess.Popen(
        [sys.executable, "-c", SERVER_SCRIPT, wal_dir, str(port)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = process.stdout.readline()
    if "READY" not in line:
        rest = process.stdout.read()
        process.kill()
        raise AssertionError(f"server failed to start: {line}{rest}")
    return process


class TestSocketServerCrashRestart:
    def test_sigkill_restart_reattach(self, tmp_path):
        """The full outage drill over TCP: crash, recover, re-attach."""
        from repro.transport import connect

        wal_dir = str(tmp_path / "state")
        port = _free_port()
        server = _spawn_server(wal_dir, port)
        positions = [Point(100.0 + 40.0 * step, 500.0) for step in range(8)]
        try:
            remote = connect(f"127.0.0.1:{port}")
            session = remote.open_session(positions[0], k=4)
            query_id = session.query_id
            before = [session.update(position) for position in positions[1:4]]

            os.kill(server.pid, signal.SIGKILL)
            server.wait()
            try:
                remote.close()
            except Exception:
                pass

            report = inventory(wal_dir)
            assert report["healthy"]

            server = _spawn_server(wal_dir, port)
            remote = connect(f"127.0.0.1:{port}")
            # A probe that connects and disconnects first must not destroy
            # the orphaned session (the health-check-eats-the-state bug).
            socket.create_connection(("127.0.0.1", port), timeout=2.0).close()
            time.sleep(0.05)
            session = remote.attach_session(query_id, k=4)
            after = [session.update(position) for position in positions[4:]]

            # The continuation equals a never-crashed in-process run.
            from repro.core.server import MovingKNNServer
            from repro.service import KNNService
            from repro.workloads.datasets import uniform_points

            twin = KNNService(
                MovingKNNServer(uniform_points(80, extent=1000.0, seed=5))
            )
            twin_session = twin.open_session(positions[0], k=4)
            expected = [twin_session.update(position) for position in positions[1:]]
            answers = [
                (response.knn, response.knn_distances)
                for response in before + after
            ]
            assert answers == [
                (response.knn, response.knn_distances) for response in expected
            ]
            remote.close()
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()

    def test_duplicate_attach_is_refused(self, tmp_path):
        from repro.errors import QueryError
        from repro.transport import connect

        wal_dir = str(tmp_path / "state")
        port = _free_port()
        server = _spawn_server(wal_dir, port)
        try:
            remote = connect(f"127.0.0.1:{port}")
            session = remote.open_session(Point(10.0, 10.0), k=3)
            with pytest.raises(QueryError):
                remote.attach_session(session.query_id, k=3)
            remote.close()
        finally:
            server.kill()
            server.wait()
