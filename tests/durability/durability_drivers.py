"""Shared scenario drivers for the durability suite.

The restart-and-replay oracle needs to crash a service at an *arbitrary*
step and continue afterwards, which ``simulate_server`` (one closed run)
cannot express.  :class:`ScenarioDriver` is the same loop opened up: it
realises the identical seeded update stream (it reuses the simulation's
own churn samplers) but hands the test control over when each step runs
and against which service object — so a test can drive to step *c*, crash
the service, recover a new one from its WAL, re-bind, and finish the run.

Two drivers created from the same scenario produce bit-identical update
streams as long as their engine states stay bit-identical — the exact
property the oracle asserts.
"""

import random

from repro.simulation.server_sim import (
    _euclidean_churn_batch,
    _population_floor,
    _road_churn_batch,
    build_server,
)
from repro.workloads.scenarios import (
    ChurnSpec,
    euclidean_server_scenario,
    road_server_scenario,
)

#: Small but non-trivial: every churn kind fires, several epochs, mixed k
#: (mirrors the transport-equivalence suite's scale).
EUCLIDEAN = dict(
    churn=ChurnSpec(interval=2, inserts=1, deletes=1, moves=1),
    queries=4,
    object_count=150,
    k=3,
    steps=10,
    seed=29,
)
ROAD = dict(
    churn=ChurnSpec(interval=2, inserts=1, deletes=1, moves=1),
    queries=3,
    object_count=20,
    k=3,
    steps=8,
    seed=31,
)


def build_scenario(metric):
    if metric == "euclidean":
        return euclidean_server_scenario(**EUCLIDEAN)
    return road_server_scenario(**ROAD)


class ScenarioDriver:
    """Drive one service through a server scenario, one step at a time.

    The driver models the *client side* of a crash: its churn RNG and
    trajectories live outside the service, so killing and recovering the
    service mid-run leaves the update stream's future untouched — exactly
    like a real client that outlives a crashed server.
    """

    def __init__(self, scenario, metric):
        self.scenario = scenario
        self.euclidean = metric == "euclidean"
        self.rng = random.Random(scenario.seed + 977)
        self.counts = {"inserts": 0, "deletes": 0, "moves": 0}
        self.answers = {}
        self.sessions = []
        self.floor = 1

    def open_sessions(self, service):
        """Timestamp 0: register every query at its trajectory start."""
        self.sessions = [
            service.open_session(trajectory[0], k=k, rho=self.scenario.rho)
            for trajectory, k in zip(self.scenario.trajectories, self.scenario.ks)
        ]
        for session in self.sessions:
            self.answers[session.query_id] = []
        self.floor = _population_floor(self.sessions)

    def rebind(self, service):
        """Point the loop at a recovered service's session handles."""
        recovered = {session.query_id: session for session in service.sessions()}
        self.sessions = [recovered[session.query_id] for session in self.sessions]

    def step(self, service, step):
        """One timestamp: maybe one churn epoch, then advance every session."""
        scenario = self.scenario
        if scenario.churn.interval and step % scenario.churn.interval == 0:
            sampler = _euclidean_churn_batch if self.euclidean else _road_churn_batch
            batch = sampler(
                service.active_object_indexes(),
                self.floor,
                scenario,
                self.rng,
                self.counts,
            )
            if batch is not None:
                service.apply(batch)
        for session, trajectory in zip(self.sessions, scenario.trajectories):
            response = session.update(trajectory[step])
            self.answers[session.query_id].append(
                (response.knn, response.knn_distances)
            )

    def run(self, service, start, stop):
        for step in range(start, stop):
            self.step(service, step)


def counters_of(service):
    """Aggregate + per-session communication, in comparable dict form."""
    return (
        service.communication.as_dict(),
        {
            query_id: stats.as_dict()
            for query_id, stats in service.engine.per_query_communication().items()
        },
    )


def reference_run(metric, invalidation):
    """Drive the whole scenario on a plain in-process service."""
    from repro.service import KNNService

    scenario = build_scenario(metric)
    service = KNNService(
        build_server(scenario, invalidation=invalidation)
    )
    driver = ScenarioDriver(scenario, metric)
    driver.open_sessions(service)
    driver.run(service, 1, scenario.timestamps)
    return driver, service
