"""Fault injection: killed shards rejoin bit-identically; clients retry.

The acceptance bar from the other side: with a ``FaultPlan`` killing
workers mid-run, a process-sharded run must still return bit-identical
answers and identical message/object *and byte* counters to a fault-free
run — and the client-side timeout/retry machinery must stay honest about
what it resent and drained.
"""

import os
import signal
import socket
import threading
import time

import pytest

from repro.core.stats import CommunicationStats
from repro.errors import (
    ConfigurationError,
    ConnectionLost,
    RequestTimeout,
)
from repro.geometry.point import Point
from repro.simulation.server_sim import simulate_server
from repro.testing import FaultPlan, FaultyStream, WorkerKill
from repro.transport import MessageStream, RemoteService, ServiceSpec
from repro.transport.codec import (
    OpenSession,
    PositionUpdate,
    SessionOpened,
    StatsRequest,
    StatsResponse,
)
from repro.transport.procpool import ProcessShardedDispatcher
from repro.workloads.scenarios import ChurnSpec, euclidean_server_scenario

from durability_drivers import EUCLIDEAN, ROAD, build_scenario


def faulty_equals_reference(metric, plan, workers, tmp_path):
    scenario = build_scenario(metric)
    reference = simulate_server(scenario, transport="process", workers=workers)
    faulty = simulate_server(
        scenario,
        transport="process",
        workers=workers,
        wal_dir=str(tmp_path / "state"),
        faults=plan,
    )
    assert faulty.kills_injected == plan.kill_count
    assert faulty.respawns >= plan.kill_count
    assert faulty.results == reference.results
    assert (
        faulty.communication.as_dict() == reference.communication.as_dict()
    )
    assert {
        query_id: stats.as_dict()
        for query_id, stats in faulty.per_session_communication.items()
    } == {
        query_id: stats.as_dict()
        for query_id, stats in reference.per_session_communication.items()
    }
    return faulty


class TestKilledShardsRejoin:
    @pytest.mark.parametrize("phase", ["before_batch", "after_batch"])
    def test_single_kill_each_phase(self, tmp_path, phase):
        plan = FaultPlan(kills=(WorkerKill(epoch=2, worker=1, phase=phase),))
        faulty_equals_reference("euclidean", plan, workers=2, tmp_path=tmp_path)

    def test_kills_in_both_phases_same_run(self, tmp_path):
        plan = FaultPlan(
            kills=(
                WorkerKill(epoch=1, worker=1, phase="before_batch"),
                WorkerKill(epoch=3, worker=0, phase="after_batch"),
            )
        )
        faulty_equals_reference("euclidean", plan, workers=2, tmp_path=tmp_path)

    def test_seeded_random_plan_on_road_metric(self, tmp_path):
        plan = FaultPlan.random(seed=2026, epochs=3, workers=2, kills=2)
        assert plan.kill_count == 2
        faulty_equals_reference("road", plan, workers=2, tmp_path=tmp_path)

    def test_fault_plans_are_reproducible(self):
        assert FaultPlan.random(seed=7, epochs=10, workers=4, kills=3) == (
            FaultPlan.random(seed=7, epochs=10, workers=4, kills=3)
        )


class TestFaultConfiguration:
    def test_faults_require_process_transport(self):
        scenario = build_scenario("euclidean")
        plan = FaultPlan(kills=(WorkerKill(epoch=1, worker=0),))
        with pytest.raises(ConfigurationError):
            simulate_server(scenario, faults=plan)
        with pytest.raises(ConfigurationError):
            simulate_server(scenario, transport="tcp", faults=plan)

    def test_faults_require_a_wal_dir(self):
        scenario = build_scenario("euclidean")
        spec = ServiceSpec.from_scenario(scenario)
        plan = FaultPlan(kills=(WorkerKill(epoch=1, worker=0),))
        with pytest.raises(ConfigurationError):
            ProcessShardedDispatcher(spec, workers=2, faults=plan)

    def test_invalid_phase_is_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerKill(epoch=1, worker=0, phase="mid_batch")


class TestUnrecoverableWorkerDeath:
    def test_dead_worker_without_wal_is_a_typed_error(self):
        scenario = euclidean_server_scenario(
            churn=ChurnSpec(interval=0, inserts=0, deletes=0, moves=0),
            queries=2,
            object_count=60,
            k=3,
            steps=4,
            seed=11,
        )
        spec = ServiceSpec.from_scenario(scenario)
        pool = ProcessShardedDispatcher(spec, workers=2)
        try:
            sessions = [
                pool.open_session(trajectory[0], k=3)
                for trajectory in scenario.trajectories
            ]
            os.kill(pool._processes[1].pid, signal.SIGKILL)
            pool._processes[1].join(10.0)
            with pytest.raises(ConnectionLost):
                for _ in range(5):  # the EOF may take a beat to surface
                    pool.advance(
                        [
                            (session, trajectory[1])
                            for session, trajectory in zip(
                                sessions, scenario.trajectories
                            )
                        ]
                    )
                    time.sleep(0.1)
        finally:
            started = time.monotonic()
            pool.close()
            # Shutdown must not hang on the dead worker (the PR6 fix).
            assert time.monotonic() - started < 20.0


# ----------------------------------------------------------------------
# Client-side timeout / retry / duplicate-drain machinery
# ----------------------------------------------------------------------
def stub_pair():
    """A RemoteService wired to an in-test scripted peer."""
    ours, theirs = socket.socketpair()
    return MessageStream(theirs), ours


def run_stub(sock, stats_delays):
    """Serve a scripted peer: opens sessions, answers stats with delays."""
    stream = MessageStream(sock)
    delays = list(stats_delays)
    try:
        while True:
            received = stream.receive()
            if received is None:
                return
            message, _ = received
            if isinstance(message, OpenSession):
                stream.send(SessionOpened(query_id=0))
            elif isinstance(message, StatsRequest):
                delay = delays.pop(0) if delays else 0.0
                if delay:
                    time.sleep(delay)
                stream.send(
                    StatsResponse(aggregate=CommunicationStats(), per_session=())
                )
            # PositionUpdate: never answered — the stub plays a hung server.
    except Exception:
        pass


class TestClientRetries:
    def make_remote(self, stats_delays, **kwargs):
        stream, peer_sock = stub_pair()
        thread = threading.Thread(
            target=run_stub, args=(peer_sock, stats_delays), daemon=True
        )
        thread.start()
        kwargs.setdefault("request_timeout", 0.2)
        kwargs.setdefault("retries", 2)
        kwargs.setdefault("backoff", 0.02)
        return RemoteService(stream, endpoint="stub", **kwargs)

    def test_slow_response_is_retried_and_duplicate_drained(self):
        remote = self.make_remote(stats_delays=[0.45])
        stats = remote.communication()  # first answer blows the timeout
        assert isinstance(stats, CommunicationStats)
        assert remote.timeouts >= 1
        assert remote.resends >= 1
        # The resends left duplicate responses in flight; the next request
        # drains them before reading its own answer.
        assert remote.duplicate_frames == 0
        remote.communication()
        assert remote.duplicate_frames == remote.resends
        assert remote.duplicate_bytes > 0
        remote.close()

    def test_unanswered_idempotent_request_times_out_after_retries(self):
        remote = self.make_remote(stats_delays=[3600.0], retries=1)
        with pytest.raises(RequestTimeout):
            remote.communication()
        assert remote.timeouts == 2  # the original and its one retry
        assert remote.resends == 1
        remote.close()

    def test_mutating_requests_are_never_resent(self):
        remote = self.make_remote(stats_delays=[])
        session = remote.open_session(Point(0.0, 0.0), k=2)
        with pytest.raises(RequestTimeout):
            session.update(Point(1.0, 0.0))  # the stub never answers these
        assert remote.timeouts == 1
        assert remote.resends == 0  # replaying a PositionUpdate is unsafe
        remote.close()

    def test_dropped_send_is_retried_then_honestly_desynced(self):
        remote = self.make_remote(stats_delays=[])
        # Losing the request itself (ordinal 0) means the peer only ever
        # saw the resend.  The retry succeeds...
        remote._stream = FaultyStream(remote._stream, drop_sends=(0,))
        stats = remote.communication()
        assert isinstance(stats, CommunicationStats)
        assert remote._stream.dropped == 1
        assert remote.timeouts == 1
        assert remote.resends == 1
        # ...but the client cannot distinguish a lost request from a slow
        # response, so it books one expected duplicate that will never
        # arrive — and honestly times out draining it on the next request
        # instead of fabricating stream synchrony.  (On a real socket a
        # sent frame is never silently lost: either it is delivered or the
        # connection surfaces ConnectionLost, so this stays hypothetical.)
        with pytest.raises(RequestTimeout):
            remote.communication()
        remote.close()

    def test_no_timeout_configured_means_no_retry_machinery(self):
        remote = self.make_remote(stats_delays=[0.3], request_timeout=None)
        stats = remote.communication()  # waits as long as it takes
        assert isinstance(stats, CommunicationStats)
        assert remote.timeouts == 0
        assert remote.resends == 0
        remote.close()
