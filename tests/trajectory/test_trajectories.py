"""Tests for repro.trajectory (Euclidean and road trajectories)."""

import math

import pytest

from repro.errors import ConfigurationError, RoadNetworkError
from repro.geometry.point import Point
from repro.geometry.primitives import BoundingBox
from repro.roadnet.generators import grid_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation
from repro.trajectory.euclidean import (
    circular_trajectory,
    linear_trajectory,
    random_waypoint_trajectory,
)
from repro.trajectory.road import network_random_walk


class TestLinearTrajectory:
    def test_endpoints_and_length(self):
        trajectory = linear_trajectory(Point(0, 0), Point(10, 0), steps=5)
        assert len(trajectory) == 6
        assert trajectory[0] == Point(0, 0)
        assert trajectory[-1] == Point(10, 0)

    def test_equal_spacing(self):
        trajectory = linear_trajectory(Point(0, 0), Point(10, 10), steps=10)
        steps = [a.distance_to(b) for a, b in zip(trajectory, trajectory[1:])]
        assert all(step == pytest.approx(steps[0]) for step in steps)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            linear_trajectory(Point(0, 0), Point(1, 1), steps=0)


class TestCircularTrajectory:
    def test_stays_on_circle(self):
        center = Point(5, 5)
        trajectory = circular_trajectory(center, radius=3.0, steps=20)
        assert len(trajectory) == 21
        for position in trajectory:
            assert center.distance_to(position) == pytest.approx(3.0)

    def test_full_revolution_returns_to_start(self):
        trajectory = circular_trajectory(Point(0, 0), radius=2.0, steps=8, revolutions=1.0)
        assert trajectory[0].almost_equal(trajectory[-1], tolerance=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            circular_trajectory(Point(0, 0), radius=0.0, steps=5)
        with pytest.raises(ConfigurationError):
            circular_trajectory(Point(0, 0), radius=1.0, steps=0)


class TestRandomWaypointTrajectory:
    def test_length_and_containment(self):
        box = BoundingBox(0, 0, 100, 100)
        trajectory = random_waypoint_trajectory(box, steps=50, step_length=5.0, seed=210)
        assert len(trajectory) == 51
        for position in trajectory:
            assert box.contains_point(position)

    def test_constant_speed(self):
        box = BoundingBox(0, 0, 1000, 1000)
        trajectory = random_waypoint_trajectory(box, steps=100, step_length=7.0, seed=211)
        for a, b in zip(trajectory, trajectory[1:]):
            assert a.distance_to(b) <= 7.0 + 1e-9

    def test_reproducibility(self):
        box = BoundingBox(0, 0, 100, 100)
        first = random_waypoint_trajectory(box, steps=20, step_length=3.0, seed=5)
        second = random_waypoint_trajectory(box, steps=20, step_length=3.0, seed=5)
        different = random_waypoint_trajectory(box, steps=20, step_length=3.0, seed=6)
        assert first == second
        assert first != different

    def test_fixed_start(self):
        box = BoundingBox(0, 0, 100, 100)
        start = Point(10, 10)
        trajectory = random_waypoint_trajectory(box, steps=5, step_length=1.0, seed=7, start=start)
        assert trajectory[0] == start

    def test_validation(self):
        box = BoundingBox(0, 0, 1, 1)
        with pytest.raises(ConfigurationError):
            random_waypoint_trajectory(box, steps=0, step_length=1.0)
        with pytest.raises(ConfigurationError):
            random_waypoint_trajectory(box, steps=5, step_length=0.0)


class TestNetworkRandomWalk:
    def test_length_and_valid_locations(self):
        network = grid_network(5, 5, spacing=10.0)
        walk = network_random_walk(network, steps=40, step_length=4.0, seed=212)
        assert len(walk) == 41
        for location in walk:
            edge = network.edge(location.edge_id)
            assert -1e-9 <= location.offset <= edge.length + 1e-9

    def test_constant_network_speed(self):
        """Consecutive positions are exactly step_length apart along the walk,
        which upper-bounds their network distance."""
        from repro.roadnet.shortest_path import distances_from_location

        network = grid_network(4, 4, spacing=10.0)
        step = 3.0
        walk = network_random_walk(network, steps=30, step_length=step, seed=213)
        for a, b in zip(walk, walk[1:]):
            distances = distances_from_location(network, a)
            edge_b = network.edge(b.edge_id)
            network_distance = min(
                distances[edge_b.u] + b.offset,
                distances[edge_b.v] + (edge_b.length - b.offset),
            )
            if a.edge_id == b.edge_id:
                # The direct along-edge path does not pass through a vertex.
                network_distance = min(network_distance, abs(a.offset - b.offset))
            assert network_distance <= step + 1e-6

    def test_fixed_start(self):
        network = grid_network(3, 3, spacing=10.0)
        start = NetworkLocation(network.edges()[0].edge_id, 2.0)
        walk = network_random_walk(network, steps=5, step_length=1.0, seed=214, start=start)
        assert walk[0] == start

    def test_reproducibility(self):
        network = grid_network(4, 4, spacing=10.0)
        assert network_random_walk(network, steps=10, step_length=2.0, seed=1) == (
            network_random_walk(network, steps=10, step_length=2.0, seed=1)
        )

    def test_validation(self):
        network = grid_network(3, 3)
        with pytest.raises(ConfigurationError):
            network_random_walk(network, steps=0, step_length=1.0)
        with pytest.raises(ConfigurationError):
            network_random_walk(network, steps=5, step_length=0.0)
        with pytest.raises(RoadNetworkError):
            network_random_walk(RoadNetwork(), steps=5, step_length=1.0)
