"""Unit tests for the continuous-query subsystem (``repro.queries``).

Covers the kind registry, the two new processors against their brute-force
oracles and the ``invalidation="flag"`` blanket contract, the per-kind
communication accounting of the serving engine, and the satellite
delta-invalidation hooks retrofitted onto
:class:`~repro.baselines.order_k_region.OrderKSafeRegionProcessor` and
:class:`~repro.core.influential.InfluentialSetMonitor`.
"""

import random

import pytest

from repro.baselines.order_k_region import OrderKSafeRegionProcessor
from repro.core.influential import (
    InfluentialSetMonitor,
    influential_neighbor_set_from_points,
)
from repro.core.server import MovingKNNServer
from repro.errors import ConfigurationError, QueryError
from repro.geometry.point import Point
from repro.geometry.voronoi import VoronoiDiagram
from repro.queries import (
    InfluentialResult,
    InfluentialSitesProcessor,
    OrderKRegionProcessor,
    QueryKind,
    RegionResult,
    query_kind,
    query_kinds,
    register_query_kind,
)
from repro.service.service import open_service


def random_points(count, seed, span=100.0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, span), rng.uniform(0, span)) for _ in range(count)]


def random_walk(rng, start, steps, step=8.0, span=100.0):
    positions = [start]
    for _ in range(steps):
        last = positions[-1]
        positions.append(
            Point(
                min(span, max(0.0, last.x + rng.uniform(-step, step))),
                min(span, max(0.0, last.y + rng.uniform(-step, step))),
            )
        )
    return positions


def brute_knn(points, indexes, position, k):
    ranked = sorted(indexes, key=lambda i: (position.distance_to(points[i]), i))
    return ranked[:k]


class TestRegistry:
    def test_shipped_kinds(self):
        assert query_kinds() == ["influential", "knn", "region"]

    def test_unknown_kind_is_a_typed_error(self):
        with pytest.raises(ConfigurationError, match="unknown query kind"):
            query_kind("isochrone")

    def test_unnamed_kind_is_rejected(self):
        class Nameless(QueryKind):
            def build_processor(self, server, k, rho):  # pragma: no cover
                raise NotImplementedError

            def oracle_answer(self, points, position, k):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ConfigurationError):
            register_query_kind(Nameless())

    def test_kinds_resolve_to_their_processors(self):
        server = MovingKNNServer(random_points(30, seed=1))
        influential = query_kind("influential").build_processor(server, k=3, rho=1.6)
        region = query_kind("region").build_processor(server, k=3, rho=1.6)
        assert isinstance(influential, InfluentialSitesProcessor)
        assert isinstance(region, OrderKRegionProcessor)

    def test_engine_rejects_unknown_kind(self):
        server = MovingKNNServer(random_points(30, seed=1))
        with pytest.raises(ConfigurationError, match="unknown query kind"):
            server.register_query(Point(50, 50), k=3, kind="isochrone")


class TestInfluentialSitesProcessor:
    def test_sites_match_the_brute_force_oracle_under_churn(self):
        points = random_points(50, seed=5)
        server = MovingKNNServer(points)
        query_id = server.register_query(Point(50, 50), k=3, kind="influential")
        rng = random.Random(17)
        for step, position in enumerate(random_walk(rng, Point(50, 50), 25)):
            result = server.update_position(query_id, position)
            assert isinstance(result, InfluentialResult)
            active = sorted(server.vortree.active_indexes())
            live = server.vortree.positions
            # The oracle: INS of the exact ranked kNN over the active
            # population, computed from scratch on remapped indexes.
            local_of = {index: local for local, index in enumerate(active)}
            members = brute_knn(live, active, position, 3)
            oracle = influential_neighbor_set_from_points(
                [live[index] for index in active],
                [local_of[index] for index in members],
            )
            assert set(result.knn) == set(members)
            assert result.site_set == {active[local] for local in oracle}
            assert result.sites == tuple(sorted(result.site_set))
            if step % 5 == 4:
                server.insert_object(
                    Point(rng.uniform(0, 100), rng.uniform(0, 100))
                )
            if step % 7 == 6:
                victims = [i for i in server.vortree.active_indexes()
                           if i not in result.knn]
                server.delete_object(rng.choice(victims))

    def test_flag_and_delta_modes_agree(self):
        points = random_points(40, seed=8)
        runs = {}
        for invalidation in ("delta", "flag"):
            server = MovingKNNServer(points, invalidation=invalidation)
            query_id = server.register_query(Point(40, 60), k=3, kind="influential")
            rng = random.Random(23)
            answers = []
            for step, position in enumerate(random_walk(rng, Point(40, 60), 20)):
                result = server.update_position(query_id, position)
                answers.append((set(result.knn), result.sites))
                if step % 4 == 3:
                    # The Euclidean server only churns via insert/delete;
                    # both modes draw the same rng sequence, so the data
                    # sets stay identical across the comparison.
                    server.insert_object(
                        Point(rng.uniform(0, 100), rng.uniform(0, 100))
                    )
                    victims = [
                        i
                        for i in sorted(server.vortree.active_indexes())
                        if i not in result.knn
                    ]
                    server.delete_object(rng.choice(victims))
            runs[invalidation] = answers
        assert runs["delta"] == runs["flag"]


class TestOrderKRegionProcessor:
    def test_members_are_exact_and_events_mark_region_changes(self):
        points = random_points(45, seed=3)
        server = MovingKNNServer(points)
        query_id = server.register_query(Point(50, 50), k=3, kind="region")
        rng = random.Random(31)
        # Registration already computed the first answer (with its "enter"
        # event), so the first update in the loop is judged against it only
        # once ``previous`` is known — i.e. from the second iteration on.
        previous = None
        events = set()
        for position in random_walk(rng, Point(50, 50), 30):
            result = server.update_position(query_id, position)
            assert isinstance(result, RegionResult)
            active = sorted(server.vortree.active_indexes())
            live = server.vortree.positions
            expected = brute_knn(live, active, position, 3)
            # Region answers re-rank on every timestamp: exact tuples.
            assert list(result.knn) == expected
            if previous is not None:
                if set(result.knn) != previous:
                    assert result.event == "enter"
                    assert set(result.departed) == previous - set(result.knn)
                else:
                    assert result.event == "stay"
                    assert result.departed == ()
            events.add(result.event)
            previous = set(result.knn)
        assert {"stay", "enter"} <= events

    def test_validation_is_cheap_inside_the_region(self):
        points = random_points(60, seed=12)
        server = MovingKNNServer(points)
        query_id = server.register_query(Point(50, 50), k=2, kind="region")
        server.update_position(query_id, Point(50, 50))
        stats = server.stats_for(query_id)
        recomputes = stats.full_recomputations
        # A vanishing movement cannot leave the order-k cell.
        result = server.update_position(query_id, Point(50.0001, 50.0001))
        assert result.was_valid
        assert result.event == "stay"
        assert stats.full_recomputations == recomputes

    def test_delta_and_flag_modes_agree_bit_exactly(self):
        points = random_points(40, seed=29)
        runs = {}
        for invalidation in ("delta", "flag"):
            server = MovingKNNServer(points, invalidation=invalidation)
            query_id = server.register_query(Point(30, 70), k=3, kind="region")
            rng = random.Random(41)
            answers = []
            for step, position in enumerate(random_walk(rng, Point(30, 70), 22)):
                result = server.update_position(query_id, position)
                answers.append(
                    (result.knn, result.event, result.departed, result.knn_distances)
                )
                if step % 3 == 2:
                    server.insert_object(
                        Point(rng.uniform(0, 100), rng.uniform(0, 100))
                    )
                    victims = [
                        i
                        for i in sorted(server.vortree.active_indexes())
                        if i not in result.knn
                    ]
                    server.delete_object(rng.choice(victims))
            absorbed = server.stats_for(query_id).absorbed_updates
            runs[invalidation] = (answers, absorbed)
        assert runs["delta"][0] == runs["flag"][0]
        # The delta mode must actually absorb something to be worth having.
        assert runs["delta"][1] >= runs["flag"][1]


class TestPerKindAccounting:
    def test_counters_split_by_kind_and_sum_to_aggregate(self):
        service = open_service(objects=random_points(50, seed=7))
        sessions = [
            service.open_query(Point(50, 50), kind="knn", k=3),
            service.open_query(Point(20, 30), kind="influential", k=3),
            service.open_query(Point(70, 40), kind="region", k=3),
        ]
        rng = random.Random(19)
        for _ in range(10):
            for session in sessions:
                session.update(Point(rng.uniform(0, 100), rng.uniform(0, 100)))
        by_kind = service.engine.communication_by_kind()
        assert set(by_kind) == {"knn", "influential", "region"}
        totals = service.engine.communication
        assert sum(c.uplink_messages for c in by_kind.values()) == (
            totals.uplink_messages
        )
        assert sum(c.downlink_messages for c in by_kind.values()) == (
            totals.downlink_messages
        )
        for kind, counters in by_kind.items():
            assert counters.uplink_messages > 0, kind
        assert service.engine.kind_for(sessions[1].query_id) == "influential"
        service.close()

    def test_session_reports_its_kind(self):
        service = open_service(objects=random_points(30, seed=2))
        with service.open_query(Point(10, 10), kind="region", k=2) as session:
            assert session.kind == "region"
            assert "region" in repr(session)
        service.close()


class TestOrderKSafeRegionHooks:
    """Satellite: the standalone baseline honours the delta contract."""

    @pytest.mark.parametrize("seed", [9, 21, 33])
    def test_delta_equals_flag_oracle_under_churn(self, seed):
        rng = random.Random(seed)
        points = random_points(50, seed=seed + 100)
        shadow = list(points)
        delta = OrderKSafeRegionProcessor(points, k=3)
        flag = OrderKSafeRegionProcessor(shadow, k=3)
        position = Point(50, 50)
        delta.initialize(position)
        flag.initialize(position)
        for step, position in enumerate(random_walk(rng, position, 30)):
            if step % 3 == 1:
                index = rng.randrange(len(points))
                moved = Point(rng.uniform(0, 100), rng.uniform(0, 100))
                points[index] = moved
                shadow[index] = moved
                delta.notify_data_update(changed=(index,))
                flag.invalidate()
            if step % 10 == 7:
                alive = [
                    i
                    for i in range(len(points))
                    if i not in delta._removed and i not in delta._knn
                ]
                victim = rng.choice(alive)
                delta.notify_data_update(removed=(victim,))
                flag.notify_data_update(removed=(victim,))
                flag.invalidate()
            a = delta.update(position)
            b = flag.update(position)
            assert set(a.knn) == set(b.knn)
            assert a.knn_distances == pytest.approx(
                tuple(sorted(b.knn_distances)), abs=1e-9
            )
        assert delta.stats.absorbed_updates > 0
        assert delta.stats.full_recomputations <= flag.stats.full_recomputations

    def test_member_removal_forces_recompute(self):
        points = random_points(30, seed=4)
        processor = OrderKSafeRegionProcessor(points, k=3)
        result = processor.initialize(Point(50, 50))
        member = result.knn[0]
        processor.notify_data_update(removed=(member,))
        refreshed = processor.update(Point(50, 50))
        assert member not in refreshed.knn
        assert not refreshed.was_valid

    def test_population_guard_survives_removals(self):
        points = random_points(5, seed=6)
        processor = OrderKSafeRegionProcessor(points, k=3)
        processor.initialize(Point(50, 50))
        processor.notify_data_update(removed=(0, 1))
        with pytest.raises(QueryError):
            processor.update(Point(51, 51))


class TestInfluentialSetMonitor:
    """Satellite: the fixed-member INS monitor honours the delta contract."""

    def test_delta_equals_flag_oracle_under_churn(self):
        rng = random.Random(3)
        points = random_points(40, seed=44)
        members = (2, 7, 11)
        delta = InfluentialSetMonitor(points, members)
        flag = InfluentialSetMonitor(points, members)
        assert delta.influential_sites() == flag.influential_sites()
        before = VoronoiDiagram(points).neighbor_map()
        for _ in range(25):
            index = rng.randrange(len(points))
            if index in members:
                continue
            points[index] = Point(rng.uniform(0, 100), rng.uniform(0, 100))
            after = VoronoiDiagram(points).neighbor_map()
            changed = {
                i for i in range(len(points)) if before.get(i) != after.get(i)
            } | {index}
            before = after
            delta.notify_data_update(changed=changed)
            flag.invalidate()
            assert delta.influential_sites() == flag.influential_sites()
        assert delta.stats.absorbed_updates > 0
        assert delta.stats.full_recomputations < flag.stats.full_recomputations

    def test_member_removal_is_a_typed_error(self):
        points = random_points(20, seed=9)
        monitor = InfluentialSetMonitor(points, (5,))
        monitor.notify_data_update(removed=(5,))
        with pytest.raises(QueryError, match="removed"):
            monitor.influential_sites()

    def test_empty_member_set_is_rejected(self):
        with pytest.raises(QueryError):
            InfluentialSetMonitor(random_points(10, seed=1), ())
