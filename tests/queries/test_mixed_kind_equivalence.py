"""Mixed-kind equivalence: every path serves every kind identically.

The PR9 acceptance suite.  One seeded workload opens a kNN, an influential
and a region session side by side on the same service, interleaves their
position updates with data churn (inserts + moves), and must report
**bit-identical answers** — member tuples, distances, influential sites,
region events — and identical per-kind message/object counters

* in-process (the plain service surface),
* over a loopback TCP socket (typed `InfluentialResponse`/`RegionEvent`
  frames crossing the real codec),
* across multi-process engine shards under both replication modes, and
* across a crash-and-recover cycle (the WAL replays the mixed-kind
  session log, including the `OpenQuery` frames).

Byte counters are transport-specific by design and are asserted for
presence, not equality.
"""

import random

import pytest

from repro.core.server import MovingKNNServer
from repro.durability import DurableKNNService, recover_service
from repro.geometry.point import Point
from repro.queries.messages import InfluentialResponse, RegionEvent
from repro.service import KNNService, UpdateBatch, open_service
from repro.transport import (
    KNNServer,
    ProcessShardedDispatcher,
    ServiceSpec,
    connect,
)
from repro.workloads.datasets import uniform_points

OBJECTS = 70
DATA_SEED = 13
WORKLOAD_SEED = 47
STEPS = 9
CHURN_EVERY = 3
#: One session per kind, with deliberately non-uniform k.
KINDS = (("knn", 3), ("influential", 3), ("region", 2))


def data_objects():
    return uniform_points(OBJECTS, seed=DATA_SEED)


def canonical(kind, response):
    """A response reduced to its bit-comparable payload."""
    result = response.result
    record = (
        kind,
        tuple(result.knn),
        tuple(result.knn_distances),
        response.epoch,
    )
    if kind == "influential":
        return record + (response.sites,)
    if kind == "region":
        return record + (response.event, response.departed)
    return record


def kind_counters(engine):
    """Per-kind message/object counters (bytes excluded: transport-specific)."""
    return {
        kind: (
            stats.uplink_messages,
            stats.uplink_objects,
            stats.downlink_messages,
            stats.downlink_objects,
        )
        for kind, stats in engine.communication_by_kind().items()
    }


def session_counters(per_session):
    return {
        query_id: (
            stats.uplink_messages,
            stats.uplink_objects,
            stats.downlink_messages,
            stats.downlink_objects,
        )
        for query_id, stats in per_session.items()
    }


class MixedWorkload:
    """Drive the same seeded mixed-kind workload against any front door.

    The rng lives on the driver, not the service, so a run can be split
    across a crash: the recovered service resumes at exactly the position
    and churn stream the reference twin sees.
    """

    def __init__(self, seed=WORKLOAD_SEED):
        self.rng = random.Random(seed)
        self.records = []
        self.sessions = []
        # Original object indexes not yet consumed by a move (a Euclidean
        # move deletes its source index, so each one is movable only once).
        self._movable = list(range(OBJECTS))

    def open_sessions(self, opener):
        self.sessions = [
            (kind, opener(Point(50, 50), kind=kind, k=k)) for kind, k in KINDS
        ]

    def rebind(self, service):
        """Re-attach to the same query ids on a recovered service."""
        by_id = {session.query_id: session for session in service.sessions()}
        self.sessions = [
            (kind, by_id[session.query_id]) for kind, session in self.sessions
        ]

    def run(self, applier, start, stop):
        for step in range(start, stop):
            for kind, session in self.sessions:
                position = Point(
                    self.rng.uniform(0, 100), self.rng.uniform(0, 100)
                )
                self.records.append(canonical(kind, session.update(position)))
            if step % CHURN_EVERY == CHURN_EVERY - 1:
                mover = self._movable.pop(self.rng.randrange(len(self._movable)))
                applier(
                    UpdateBatch(
                        inserts=(
                            Point(
                                self.rng.uniform(0, 100),
                                self.rng.uniform(0, 100),
                            ),
                        ),
                        moves=(
                            (
                                mover,
                                Point(
                                    self.rng.uniform(0, 100),
                                    self.rng.uniform(0, 100),
                                ),
                            ),
                        ),
                    )
                )


def in_process_reference():
    service = open_service(metric="euclidean", objects=data_objects())
    workload = MixedWorkload()
    workload.open_sessions(service.open_query)
    workload.run(service.apply, 0, STEPS)
    return service, workload


class TestLoopbackEquivalence:
    def test_tcp_matches_in_process(self):
        reference_service, reference = in_process_reference()

        service = open_service(metric="euclidean", objects=data_objects())
        workload = MixedWorkload()
        with KNNServer(service) as server:
            with connect(server.address) as remote:
                workload.open_sessions(remote.open_query)
                workload.run(remote.apply, 0, STEPS)
                # The typed frames crossed the wire as their own classes.
                assert isinstance(
                    workload.sessions[1][1].last_response, InfluentialResponse
                )
                assert isinstance(workload.sessions[2][1].last_response, RegionEvent)
                # Snapshot before disconnecting: closing the remote sends a
                # goodbye per session, which the in-process twin never does.
                over_tcp = kind_counters(service.engine)

        assert workload.records == reference.records
        assert over_tcp == kind_counters(reference_service.engine)
        assert set(over_tcp) == {"knn", "influential", "region"}
        # Bytes are the one transport-specific dimension.
        assert reference_service.engine.communication.uplink_bytes == 0
        assert service.engine.communication.uplink_bytes > 0
        reference_service.close()

    def test_remote_sessions_report_their_kind(self):
        service = open_service(metric="euclidean", objects=data_objects())
        with KNNServer(service) as server:
            with connect(server.address) as remote:
                with remote.open_query(Point(10, 10), kind="region", k=2) as session:
                    assert session.kind == "region"
                    assert isinstance(session.update(Point(20, 20)), RegionEvent)


class TestProcessShardEquivalence:
    @pytest.mark.parametrize("replication", ["recompute", "delta"])
    def test_shards_match_in_process(self, replication):
        reference_service, reference = in_process_reference()

        spec = ServiceSpec(metric="euclidean", objects=tuple(data_objects()))
        workload = MixedWorkload()
        with ProcessShardedDispatcher(
            spec, workers=2, replication=replication
        ) as pool:
            workload.open_sessions(pool.open_query)
            workload.run(pool.apply, 0, STEPS)
            per_session = session_counters(pool.per_session_communication())

        assert workload.records == reference.records
        assert per_session == session_counters(
            reference_service.engine.per_query_communication()
        )
        reference_service.close()


class TestCrashRecoverEquivalence:
    @pytest.mark.parametrize("crash_step", [2, 5])
    def test_recovered_mixed_workload_is_bit_identical(self, tmp_path, crash_step):
        reference_service, reference = in_process_reference()

        wal_dir = str(tmp_path / "state")
        service = DurableKNNService(MovingKNNServer(data_objects()), wal_dir)
        workload = MixedWorkload()
        workload.open_sessions(service.open_query)
        workload.run(service.apply, 0, crash_step)

        # Crash: only the file handle goes — nothing says goodbye.
        service.close_wal()
        del service

        recovered = recover_service(wal_dir)
        assert {s.kind for s in recovered.sessions()} == {
            "knn",
            "influential",
            "region",
        }
        workload.rebind(recovered)
        workload.run(recovered.apply, crash_step, STEPS)

        assert workload.records == reference.records
        assert kind_counters(recovered.engine) == kind_counters(
            reference_service.engine
        )
        assert recovered.engine.epoch == reference_service.engine.epoch
        reference_service.close()
        recovered.close()

    def test_reference_twin_is_a_plain_service_too(self):
        """The reference construction used above really is the in-process
        surface: a KNNService over the engine, no durability wrapper."""
        service = KNNService(MovingKNNServer(data_objects()))
        with service.open_query(Point(50, 50), kind="influential", k=3) as session:
            assert session.kind == "influential"
            assert isinstance(session.update(Point(60, 60)), InfluentialResponse)
        service.close()
