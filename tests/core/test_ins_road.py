"""Tests for repro.core.ins_road (the INS processor on road networks)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.core.ins_road import INSRoadProcessor
from repro.core.objects import UpdateAction
from repro.roadnet.generators import grid_network, place_objects, random_planar_network
from repro.roadnet.location import NetworkLocation
from repro.roadnet.network_voronoi import NetworkVoronoiDiagram
from repro.roadnet.shortest_path import distances_from_location
from repro.trajectory.road import network_random_walk


@pytest.fixture(scope="module")
def road_setup():
    network = grid_network(8, 8, spacing=100.0)
    objects = place_objects(network, 20, seed=160)
    voronoi = NetworkVoronoiDiagram(network, objects)
    return network, objects, voronoi


def oracle_distances(network, objects, location):
    vertex_distances = distances_from_location(network, location)
    return {i: vertex_distances.get(v, math.inf) for i, v in enumerate(objects)}


def answer_is_correct(network, objects, location, result, k):
    distances = oracle_distances(network, objects, location)
    ordered = sorted(distances.values())
    kth = ordered[k - 1]
    slack = 1e-7 * max(kth, 1.0)
    if len(result.knn) != k:
        return False
    if any(distances[i] > kth + slack for i in result.knn):
        return False
    return all(i in set(result.knn) for i, d in distances.items() if d < kth - slack)


class TestConfiguration:
    def test_parameter_validation(self, road_setup):
        network, objects, voronoi = road_setup
        with pytest.raises(ConfigurationError):
            INSRoadProcessor(network, objects, k=0, voronoi=voronoi)
        with pytest.raises(ConfigurationError):
            INSRoadProcessor(network, objects, k=len(objects), voronoi=voronoi)
        with pytest.raises(ConfigurationError):
            INSRoadProcessor(network, objects, k=3, rho=0.2, voronoi=voronoi)
        with pytest.raises(ConfigurationError):
            INSRoadProcessor(network, objects, k=3, validation_mode="magic", voronoi=voronoi)

    def test_names_by_mode(self, road_setup):
        network, objects, voronoi = road_setup
        restricted = INSRoadProcessor(network, objects, k=3, voronoi=voronoi)
        exact = INSRoadProcessor(
            network, objects, k=3, validation_mode="exact", voronoi=voronoi
        )
        assert restricted.name == "INS-road"
        assert exact.name == "INS-road-exact"


class TestInitialization:
    def test_initial_answer_is_correct(self, road_setup):
        network, objects, voronoi = road_setup
        processor = INSRoadProcessor(network, objects, k=4, rho=1.6, voronoi=voronoi)
        edge = network.edges()[30]
        location = NetworkLocation(edge.edge_id, edge.length / 3.0)
        result = processor.initialize(location)
        assert answer_is_correct(network, objects, location, result, 4)
        assert result.action is UpdateAction.FULL_RECOMPUTE

    def test_guard_set_is_disjoint_from_knn(self, road_setup):
        network, objects, voronoi = road_setup
        processor = INSRoadProcessor(network, objects, k=4, rho=1.6, voronoi=voronoi)
        edge = network.edges()[10]
        result = processor.initialize(NetworkLocation(edge.edge_id, 10.0))
        assert not (result.guard_objects & result.knn_set)
        assert not (processor.influential_set & set(processor.prefetched_set))


@pytest.mark.parametrize("mode", ["restricted", "exact"])
class TestTrajectoryCorrectness:
    def test_every_answer_correct_along_walk(self, road_setup, mode):
        network, objects, voronoi = road_setup
        processor = INSRoadProcessor(
            network, objects, k=4, rho=1.6, validation_mode=mode, voronoi=voronoi
        )
        trajectory = network_random_walk(network, steps=120, step_length=30.0, seed=161)
        processor.initialize(trajectory[0])
        wrong = []
        for timestamp, location in enumerate(trajectory[1:], start=1):
            result = processor.update(location)
            if not answer_is_correct(network, objects, location, result, 4):
                wrong.append(timestamp)
        assert not wrong, f"incorrect answers at timestamps {wrong[:5]}"

    def test_recomputations_rarer_than_naive(self, road_setup, mode):
        network, objects, voronoi = road_setup
        processor = INSRoadProcessor(
            network, objects, k=4, rho=1.6, validation_mode=mode, voronoi=voronoi
        )
        trajectory = network_random_walk(network, steps=150, step_length=25.0, seed=162)
        processor.initialize(trajectory[0])
        for location in trajectory[1:]:
            processor.update(location)
        assert processor.stats.full_recomputations < len(trajectory) / 2


class TestModesAgree:
    def test_restricted_and_exact_report_equal_distance_profiles(self, road_setup):
        network, objects, voronoi = road_setup
        trajectory = network_random_walk(network, steps=60, step_length=40.0, seed=163)
        restricted = INSRoadProcessor(network, objects, k=3, rho=1.6, voronoi=voronoi)
        exact = INSRoadProcessor(
            network, objects, k=3, rho=1.6, validation_mode="exact", voronoi=voronoi
        )
        restricted.initialize(trajectory[0])
        exact.initialize(trajectory[0])
        for location in trajectory[1:]:
            first = restricted.update(location)
            second = exact.update(location)
            assert max(first.knn_distances) == pytest.approx(max(second.knn_distances))


class TestRandomPlanarNetwork:
    def test_correctness_on_irregular_network(self):
        network = random_planar_network(60, extent=800.0, seed=164)
        objects = place_objects(network, 15, seed=165)
        processor = INSRoadProcessor(network, objects, k=3, rho=1.6)
        trajectory = network_random_walk(network, steps=80, step_length=30.0, seed=166)
        processor.initialize(trajectory[0])
        for location in trajectory[1:]:
            result = processor.update(location)
            assert answer_is_correct(network, objects, location, result, 3)

    def test_theorem2_restricted_search_is_smaller(self):
        """Theorem 2: validation on the restricted sub-network settles fewer
        vertices than the same validation on the full network."""
        network = grid_network(15, 15, spacing=100.0)
        objects = place_objects(network, 60, seed=167)
        voronoi = NetworkVoronoiDiagram(network, objects)
        trajectory = network_random_walk(network, steps=60, step_length=25.0, seed=168)

        def settled(mode):
            processor = INSRoadProcessor(
                network, objects, k=4, rho=1.6, validation_mode=mode, voronoi=voronoi
            )
            processor.initialize(trajectory[0])
            for location in trajectory[1:]:
                processor.update(location)
            return processor.stats.settled_vertices

        assert settled("restricted") < settled("exact")
