"""Tests for repro.core.objects."""

import pytest

from repro.core.objects import QueryResult, UpdateAction


def make_result(**overrides):
    defaults = dict(
        timestamp=3,
        knn=(4, 1, 9),
        knn_distances=(1.0, 2.0, 3.0),
        guard_objects=frozenset({7, 8}),
        action=UpdateAction.NONE,
        was_valid=True,
    )
    defaults.update(overrides)
    return QueryResult(**defaults)


class TestUpdateAction:
    def test_communication_classification(self):
        assert not UpdateAction.NONE.requires_communication
        assert not UpdateAction.LOCAL_REORDER.requires_communication
        assert UpdateAction.INCREMENTAL.requires_communication
        assert UpdateAction.FULL_RECOMPUTE.requires_communication

    def test_values_are_stable(self):
        assert UpdateAction.FULL_RECOMPUTE.value == "full_recompute"
        assert UpdateAction.LOCAL_REORDER.value == "local_reorder"


class TestQueryResult:
    def test_k_and_set_views(self):
        result = make_result()
        assert result.k == 3
        assert result.knn_set == frozenset({1, 4, 9})

    def test_farthest_distance(self):
        assert make_result().farthest_distance == 3.0
        empty = make_result(knn=(), knn_distances=())
        assert empty.farthest_distance == 0.0

    def test_describe_mentions_validity(self):
        assert "valid" in make_result().describe()
        updated = make_result(was_valid=False, action=UpdateAction.FULL_RECOMPUTE)
        assert "full_recompute" in updated.describe()

    def test_results_are_immutable(self):
        result = make_result()
        with pytest.raises(AttributeError):
            result.timestamp = 5
