"""Randomized equivalence tests for the delta-scoped invalidation contract.

The acceptance property of the unified serving engine: driving the *same*
query/update stream through ``invalidation="delta"`` (each query settles
only the deltas that touched its held pool) and ``invalidation="flag"``
(the pre-delta blanket contract: every query refreshes fully on every
epoch) must produce identical answers — and both must agree with a
brute-force oracle over the current population — while the delta mode pays
strictly fewer full retrievals.  This holds on both metric sides of the
engine.
"""

import math
import random

import pytest

from repro.core.road_server import MovingRoadKNNServer
from repro.core.server import MovingKNNServer
from repro.geometry.point import Point
from repro.roadnet.generators import grid_network, place_objects
from repro.roadnet.shortest_path import distances_from_location
from repro.simulation.server_sim import simulate_server
from repro.simulation.simulator import check_knn_answer
from repro.trajectory.euclidean import random_waypoint_trajectory
from repro.trajectory.road import network_random_walk
from repro.workloads.datasets import data_space, uniform_points
from repro.workloads.scenarios import (
    ChurnSpec,
    euclidean_server_scenario,
    road_server_scenario,
)

MODES = ("delta", "flag")


class TestEuclideanEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_stream_same_answers_fewer_retrievals(self, seed):
        rng = random.Random(800 + seed)
        points = uniform_points(250, extent=1_000.0, seed=810 + seed)
        trajectories = [
            random_waypoint_trajectory(
                data_space(1_000.0), steps=30, step_length=35.0, seed=820 + seed + i
            )
            for i in range(3)
        ]
        servers = {mode: MovingKNNServer(points, invalidation=mode) for mode in MODES}
        ids = {
            mode: [
                server.register_query(trajectory[0], k=3 + i)
                for i, trajectory in enumerate(trajectories)
            ]
            for mode, server in servers.items()
        }
        for step in range(1, 30):
            # One mixed mutation batch, identical for both servers (the
            # object indexes align because the op sequence is identical).
            active = servers["delta"].vortree.active_indexes()
            inserts = [
                Point(rng.uniform(0.0, 1_000.0), rng.uniform(0.0, 1_000.0))
                for _ in range(rng.randrange(0, 3))
            ]
            deletes = rng.sample(active, rng.randrange(0, 3))
            for server in servers.values():
                server.batch_update(inserts=inserts, deletes=deletes)
            for i, trajectory in enumerate(trajectories):
                position = trajectory[step]
                answers = {
                    mode: servers[mode].update_position(ids[mode][i], position)
                    for mode in MODES
                }
                # The *set* must agree exactly; the tuple order may differ
                # (the delta mode keeps its held ordering while the flag
                # oracle re-retrieves nearest-first), so distances are
                # compared as sorted multisets.
                assert answers["delta"].knn_set == answers["flag"].knn_set, (seed, step, i)
                assert sorted(answers["delta"].knn_distances) == pytest.approx(
                    sorted(answers["flag"].knn_distances)
                )
                # Both agree with brute force over the current population.
                tree = servers["delta"].vortree
                all_distances = {
                    index: position.distance_to(tree.point(index))
                    for index in tree.active_indexes()
                }
                assert check_knn_answer(
                    answers["delta"].knn, all_distances, answers["delta"].k
                ), (seed, step, i)
        delta_retrievals = servers["delta"].aggregate_stats().full_recomputations
        flag_retrievals = servers["flag"].aggregate_stats().full_recomputations
        assert delta_retrievals < flag_retrievals

    def test_scenario_driver_equivalence(self):
        scenario = euclidean_server_scenario(
            data="clustered",
            churn=ChurnSpec(interval=2, inserts=1, deletes=1, moves=2),
            queries=4,
            object_count=200,
            k=4,
            steps=25,
            extent=1_000.0,
            seed=31,
        )
        runs = {
            mode: simulate_server(scenario, invalidation=mode, check_answers=True)
            for mode in MODES
        }
        assert runs["delta"].is_correct and runs["flag"].is_correct
        for query_id in runs["delta"].results:
            assert [r.knn_set for r in runs["delta"].results[query_id]] == [
                r.knn_set for r in runs["flag"].results[query_id]
            ]
        assert (
            runs["delta"].aggregate.full_recomputations
            < runs["flag"].aggregate.full_recomputations
        )
        # The delta mode absorbed at least some far-away updates for free.
        assert runs["delta"].aggregate.absorbed_updates > 0
        assert runs["flag"].aggregate.absorbed_updates == 0


def road_oracle_distances(server, position):
    vertex_distances = distances_from_location(server.network, position)
    return {
        index: vertex_distances.get(server.object_vertex(index), math.inf)
        for index in server.voronoi.active_object_indexes()
    }


class TestRoadEquivalence:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_same_stream_same_answers_fewer_retrievals(self, seed):
        rng = random.Random(900 + seed)
        network = grid_network(10, 10, spacing=50.0)
        objects = place_objects(network, 25, seed=910 + seed)
        trajectories = [
            network_random_walk(network, steps=25, step_length=30.0, seed=920 + seed + i)
            for i in range(2)
        ]
        servers = {
            mode: MovingRoadKNNServer(network, objects, invalidation=mode)
            for mode in MODES
        }
        ids = {
            mode: [
                server.register_query(trajectory[0], k=3)
                for trajectory in trajectories
            ]
            for mode, server in servers.items()
        }
        vertices = network.vertices()
        for step in range(1, 25):
            active = servers["delta"].voronoi.active_object_indexes()
            inserts = [rng.choice(vertices) for _ in range(rng.randrange(0, 2))]
            deletes = rng.sample(active, rng.randrange(0, 2)) if len(active) > 8 else []
            movable = [index for index in active if index not in set(deletes)]
            moves = [(rng.choice(movable), rng.choice(vertices))]
            for server in servers.values():
                server.batch_update(inserts=inserts, deletes=deletes, moves=moves)
            for i, trajectory in enumerate(trajectories):
                position = trajectory[step]
                answers = {
                    mode: servers[mode].update_position(ids[mode][i], position)
                    for mode in MODES
                }
                # Grid networks tie constantly, so compare tie-insensitive
                # distance multisets and check both against brute force.
                assert sorted(answers["delta"].knn_distances) == pytest.approx(
                    sorted(answers["flag"].knn_distances)
                ), (seed, step, i)
                all_distances = road_oracle_distances(servers["delta"], position)
                for mode in MODES:
                    assert check_knn_answer(
                        answers[mode].knn, all_distances, answers[mode].k
                    ), (mode, seed, step, i)
        delta_retrievals = servers["delta"].aggregate_stats().full_recomputations
        flag_retrievals = servers["flag"].aggregate_stats().full_recomputations
        assert delta_retrievals < flag_retrievals

    def test_scenario_driver_equivalence(self):
        scenario = road_server_scenario(
            churn="low", queries=3, rows=8, columns=8, object_count=18, k=3,
            steps=20, seed=41,
        )
        runs = {
            mode: simulate_server(scenario, invalidation=mode, check_answers=True)
            for mode in MODES
        }
        assert runs["delta"].is_correct and runs["flag"].is_correct
        for query_id in runs["delta"].results:
            delta_stream = runs["delta"].results[query_id]
            flag_stream = runs["flag"].results[query_id]
            for delta_result, flag_result in zip(delta_stream, flag_stream):
                assert sorted(delta_result.knn_distances) == pytest.approx(
                    sorted(flag_result.knn_distances)
                )
        assert (
            runs["delta"].aggregate.full_recomputations
            < runs["flag"].aggregate.full_recomputations
        )
