"""Tests for the INS processor's case-(i) incremental update mode and for
data-object updates (Section III, last paragraph)."""

import pytest

from repro.core.ins_euclidean import INSProcessor
from repro.core.objects import UpdateAction
from repro.geometry.point import Point
from repro.index.vortree import VoRTree
from repro.simulation.simulator import simulate
from repro.trajectory.euclidean import random_waypoint_trajectory
from repro.workloads.datasets import data_space, uniform_points


@pytest.fixture(scope="module")
def dataset():
    return uniform_points(500, extent=1_000.0, seed=400)


@pytest.fixture(scope="module")
def shared_vortree(dataset):
    return VoRTree(dataset)


@pytest.fixture(scope="module")
def trajectory():
    return random_waypoint_trajectory(
        data_space(1_000.0), steps=150, step_length=20.0, seed=401
    )


def oracle_for(points):
    return lambda q: {i: q.distance_to(p) for i, p in enumerate(points)}


class TestIncrementalMode:
    def test_answers_remain_exact(self, dataset, shared_vortree, trajectory):
        processor = INSProcessor(
            dataset, k=6, rho=1.6, vortree=shared_vortree, allow_incremental=True
        )
        run = simulate(processor, trajectory, oracle=oracle_for(dataset))
        assert run.is_correct

    def test_incremental_updates_replace_full_recomputations(
        self, dataset, shared_vortree, trajectory
    ):
        base = INSProcessor(dataset, k=6, rho=1.0, vortree=shared_vortree)
        incremental = INSProcessor(
            dataset, k=6, rho=1.0, vortree=shared_vortree, allow_incremental=True
        )
        simulate(base, trajectory)
        simulate(incremental, trajectory)
        assert incremental.stats.incremental_updates > 0
        assert incremental.stats.full_recomputations < base.stats.full_recomputations
        # Incremental fetches are much smaller than full retrievals, so the
        # total communication volume drops as well.
        assert incremental.stats.transmitted_objects < base.stats.transmitted_objects

    def test_incremental_action_is_reported(self, dataset, shared_vortree, trajectory):
        processor = INSProcessor(
            dataset, k=6, rho=1.0, vortree=shared_vortree, allow_incremental=True
        )
        run = simulate(processor, trajectory)
        actions = {result.action for result in run.results}
        assert UpdateAction.INCREMENTAL in actions

    def test_disabled_by_default(self, dataset, shared_vortree):
        processor = INSProcessor(dataset, k=4, vortree=shared_vortree)
        assert not processor.allow_incremental

    def test_incremental_mode_flag_exposed(self, dataset, shared_vortree):
        processor = INSProcessor(
            dataset, k=4, vortree=shared_vortree, allow_incremental=True
        )
        assert processor.allow_incremental


class TestObjectUpdates:
    def test_inserted_object_enters_the_answer(self, dataset):
        processor = INSProcessor(list(dataset), k=5, rho=1.6)
        query = Point(500.0, 500.0)
        processor.initialize(query)
        new_index = processor.insert_object(Point(500.3, 500.3))
        result = processor.update(query)
        assert new_index in result.knn
        assert result.action is UpdateAction.FULL_RECOMPUTE

    def test_deleted_object_leaves_the_answer(self, dataset):
        processor = INSProcessor(list(dataset), k=5, rho=1.6)
        query = Point(500.0, 500.0)
        first = processor.initialize(query)
        victim = first.knn[0]
        assert processor.delete_object(victim)
        result = processor.update(query)
        assert victim not in result.knn
        assert len(result.knn) == 5

    def test_answers_stay_correct_under_update_stream(self, dataset):
        points = list(dataset)
        processor = INSProcessor(points, k=5, rho=1.6)
        trajectory = random_waypoint_trajectory(
            data_space(1_000.0), steps=60, step_length=25.0, seed=402
        )
        processor.initialize(trajectory[0])
        active = {i: p for i, p in enumerate(points)}
        import random

        rng = random.Random(403)
        for step, position in enumerate(trajectory[1:], start=1):
            if step % 10 == 0:
                new_point = Point(rng.uniform(0, 1_000), rng.uniform(0, 1_000))
                new_index = processor.insert_object(new_point)
                active[new_index] = new_point
            if step % 15 == 0:
                victim = rng.choice(sorted(active))
                if processor.delete_object(victim):
                    del active[victim]
            result = processor.update(position)
            distances = {i: position.distance_to(p) for i, p in active.items()}
            kth = sorted(distances.values())[4]
            assert all(distances[i] <= kth + 1e-9 for i in result.knn)

    def test_delete_unknown_object_returns_false(self, dataset):
        processor = INSProcessor(list(dataset), k=3)
        assert not processor.delete_object(10_000)


class TestVoRTreeUpdates:
    def test_insert_and_query(self, dataset):
        tree = VoRTree(list(dataset[:50]))
        index, changed = tree.insert(Point(123.0, 456.0))
        assert index in changed
        assert tree.is_active(index)
        assert len(tree) == 51
        assert index in tree.nearest(Point(123.0, 456.0), 1)

    def test_delete_removes_from_queries_and_neighbors(self, dataset):
        tree = VoRTree(list(dataset[:50]))
        victim = tree.nearest(Point(500.0, 500.0), 1)[0]
        removed, changed = tree.delete(victim)
        assert removed and victim not in changed
        assert not tree.is_active(victim)
        assert victim not in tree.nearest(Point(500.0, 500.0), 10)
        for index in tree.active_indexes():
            assert victim not in tree.voronoi_neighbors(index)

    def test_delete_twice_returns_false(self, dataset):
        tree = VoRTree(list(dataset[:10]))
        assert tree.delete(3)[0]
        assert not tree.delete(3)[0]

    def test_cannot_delete_last_object(self):
        from repro.errors import QueryError

        tree = VoRTree([Point(0, 0), Point(1, 1)])
        assert tree.delete(0)[0]
        with pytest.raises(QueryError):
            tree.delete(1)

    def test_neighbor_lookup_of_deleted_object_raises(self, dataset):
        from repro.errors import QueryError

        tree = VoRTree(list(dataset[:20]))
        tree.delete(5)
        with pytest.raises(QueryError):
            tree.voronoi_neighbors(5)

    def test_neighbor_map_stays_consistent_after_updates(self, dataset):
        tree = VoRTree(list(dataset[:40]))
        tree.insert(Point(10.0, 990.0))
        tree.delete(0)
        tree.insert(Point(990.0, 10.0))
        active = tree.active_indexes()
        for index in active:
            for neighbor in tree.voronoi_neighbors(index):
                assert neighbor in active
                assert index in tree.voronoi_neighbors(neighbor)
