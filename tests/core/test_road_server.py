"""Tests for repro.core.road_server (and the INSRoadProcessor update hooks)."""

import math
import random

import pytest

from repro.errors import EmptyDatasetError, QueryError
from repro.core.road_server import MovingRoadKNNServer
from repro.core.objects import UpdateAction
from repro.roadnet.generators import grid_network, place_objects, random_planar_network
from repro.roadnet.knn import network_knn
from repro.roadnet.location import NetworkLocation
from repro.trajectory.road import network_random_walk


def reference_knn_distances(server, position, k):
    """Brute-force kNN distances over the server's current active objects."""
    nearest = network_knn(
        server.network,
        server.voronoi.vertex_assignments,
        position,
        k,
        objects_at_vertex=server.voronoi.vertex_objects(),
    )
    return sorted(distance for _, distance in nearest)


class TestLifecycle:
    def test_register_and_answer(self):
        network = grid_network(6, 6, spacing=50.0)
        objects = place_objects(network, 10, seed=1)
        server = MovingRoadKNNServer(network, objects)
        location = NetworkLocation(0, 10.0)
        query_id = server.register_query(location, k=3)
        assert server.query_count == 1
        result = server.answer(query_id)
        assert len(result.knn) == 3
        assert sorted(result.knn_distances) == pytest.approx(
            reference_knn_distances(server, location, 3)
        )

    def test_unknown_query_raises(self):
        network = grid_network(4, 4)
        server = MovingRoadKNNServer(network, place_objects(network, 5, seed=2))
        with pytest.raises(QueryError):
            server.update_position(99, NetworkLocation(0, 0.0))
        with pytest.raises(QueryError):
            server.unregister_query(99)

    def test_unregister(self):
        network = grid_network(4, 4)
        server = MovingRoadKNNServer(network, place_objects(network, 5, seed=3))
        query_id = server.register_query(NetworkLocation(0, 0.0), k=2)
        server.unregister_query(query_id)
        assert server.query_count == 0


class TestDataUpdates:
    def test_epoch_counts_batches_not_objects(self):
        network = grid_network(5, 5, spacing=10.0)
        server = MovingRoadKNNServer(network, place_objects(network, 6, seed=4))
        assert server.epoch == 0
        server.insert_object(3)
        assert server.epoch == 1
        server.batch_update(inserts=[7, 11], deletes=[0])
        assert server.epoch == 2

    def test_delete_unknown_returns_false(self):
        network = grid_network(4, 4)
        server = MovingRoadKNNServer(network, place_objects(network, 5, seed=5))
        assert server.delete_object(77) is False
        assert server.delete_object(2) is True
        assert server.delete_object(2) is False

    def test_updates_flag_queries_stale_without_copying(self):
        network = grid_network(6, 6, spacing=40.0)
        server = MovingRoadKNNServer(network, place_objects(network, 12, seed=6))
        query_id = server.register_query(NetworkLocation(0, 5.0), k=3)
        processor = next(iter(server)).processor
        assert not processor.state_stale
        server.insert_object(17)
        assert processor.state_stale
        server.update_position(query_id, NetworkLocation(0, 8.0))
        assert not processor.state_stale

    def test_removal_inside_prefetched_set_forces_recompute(self):
        network = grid_network(6, 6, spacing=40.0)
        server = MovingRoadKNNServer(network, place_objects(network, 12, seed=7))
        location = NetworkLocation(0, 5.0)
        query_id = server.register_query(location, k=3)
        processor = next(iter(server)).processor
        victim = processor.prefetched_set[0]
        server.delete_object(victim)
        result = server.update_position(query_id, location)
        assert result.action == UpdateAction.FULL_RECOMPUTE
        assert victim not in result.knn
        assert sorted(result.knn_distances) == pytest.approx(
            reference_knn_distances(server, location, 3)
        )

    def test_far_update_is_absorbed_for_free(self):
        # Large grid, query in one corner, insert in the opposite corner:
        # the delta cannot touch the query's pool, so no refresh happens.
        network = grid_network(20, 20, spacing=10.0)
        objects = place_objects(network, 60, seed=8)
        server = MovingRoadKNNServer(network, objects)
        location = NetworkLocation(0, 1.0)  # bottom-left corner edge
        query_id = server.register_query(location, k=2)
        processor = next(iter(server)).processor
        refreshes_before = processor.stats.ins_refreshes
        recomputes_before = processor.stats.full_recomputations
        server.insert_object(399)  # opposite corner vertex
        result = server.update_position(query_id, location)
        assert result.was_valid
        assert processor.stats.full_recomputations == recomputes_before
        assert processor.stats.ins_refreshes == refreshes_before

    def test_nearby_insert_enters_the_answer(self):
        network = grid_network(6, 6, spacing=40.0)
        objects = [20, 25, 30, 35]  # all objects far from vertex 0
        server = MovingRoadKNNServer(network, objects)
        location = NetworkLocation(0, 1.0)
        query_id = server.register_query(location, k=2)
        index = server.insert_object(1)  # right next to the query
        result = server.update_position(query_id, location)
        assert index in result.knn
        assert sorted(result.knn_distances) == pytest.approx(
            reference_knn_distances(server, location, 2)
        )


class TestAnswersMatchBruteForce:
    @pytest.mark.parametrize("validation_mode", ["restricted", "exact"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_update_stream_equivalence(self, validation_mode, seed):
        rng = random.Random(seed + 31)
        network = (
            grid_network(10, 10, spacing=50.0)
            if seed % 2 == 0
            else random_planar_network(120, extent=2_000.0, seed=seed)
        )
        objects = place_objects(network, 20, seed=seed + 13)
        trajectory = network_random_walk(network, steps=60, step_length=30.0, seed=seed + 17)
        server = MovingRoadKNNServer(network, objects)
        query_id = server.register_query(trajectory[0], k=4, validation_mode=validation_mode)
        for step in range(1, 60):
            op = rng.random()
            active = server.voronoi.active_object_indexes()
            if op < 0.3:
                server.insert_object(rng.choice(network.vertices()))
            elif op < 0.55 and len(active) > 7:
                server.delete_object(rng.choice(active))
            elif op < 0.8:
                server.move_object(rng.choice(active), rng.choice(network.vertices()))
            result = server.update_position(query_id, trajectory[step])
            assert sorted(result.knn_distances) == pytest.approx(
                reference_knn_distances(server, trajectory[step], 4)
            ), (validation_mode, seed, step)

    def test_batched_stream_equivalence(self):
        rng = random.Random(91)
        network = grid_network(10, 10, spacing=50.0)
        objects = place_objects(network, 25, seed=92)
        trajectory = network_random_walk(network, steps=25, step_length=40.0, seed=93)
        server = MovingRoadKNNServer(network, objects)
        query_id = server.register_query(trajectory[0], k=5)
        for step in range(1, 25):
            active = server.voronoi.active_object_indexes()
            server.batch_update(
                inserts=[rng.choice(network.vertices()) for _ in range(2)],
                deletes=[rng.choice(active)],
                moves=[(rng.choice(active[1:]), rng.choice(network.vertices()))],
            )
            result = server.update_position(query_id, trajectory[step])
            assert sorted(result.knn_distances) == pytest.approx(
                reference_knn_distances(server, trajectory[step], 5)
            ), step

    def test_rebuild_and_incremental_servers_answer_identically(self):
        rng_a, rng_b = random.Random(7), random.Random(7)
        network = random_planar_network(100, extent=1_500.0, seed=44)
        objects = place_objects(network, 15, seed=45)
        trajectory = network_random_walk(network, steps=30, step_length=30.0, seed=46)
        servers = {
            "incremental": MovingRoadKNNServer(network, objects, maintenance="incremental"),
            "rebuild": MovingRoadKNNServer(network, objects, maintenance="rebuild"),
        }
        rngs = {"incremental": rng_a, "rebuild": rng_b}
        ids = {
            mode: server.register_query(trajectory[0], k=3)
            for mode, server in servers.items()
        }
        for step in range(1, 30):
            results = {}
            for mode, server in servers.items():
                rng = rngs[mode]
                op = rng.random()
                active = server.voronoi.active_object_indexes()
                if op < 0.4:
                    server.insert_object(rng.choice(network.vertices()))
                elif op < 0.7 and len(active) > 5:
                    server.delete_object(rng.choice(active))
                else:
                    server.move_object(rng.choice(active), rng.choice(network.vertices()))
                results[mode] = server.update_position(ids[mode], trajectory[step])
            assert sorted(results["incremental"].knn_distances) == pytest.approx(
                sorted(results["rebuild"].knn_distances)
            ), step


class TestRestrictedEscapeFallback:
    def test_query_escaping_the_subnetwork_falls_back_to_the_full_network(self):
        # Query initialised in one corner of a large grid, then teleported to
        # the opposite corner: the new edge is not part of the cached
        # Theorem 2 sub-network, so _held_distances must fall back to the
        # full network (and still produce a correct answer).
        network = grid_network(15, 15, spacing=20.0)
        objects = place_objects(network, 40, seed=55)
        server = MovingRoadKNNServer(network, objects)
        start = NetworkLocation(0, 1.0)
        query_id = server.register_query(start, k=3, validation_mode="restricted")
        processor = next(iter(server)).processor
        far_edge = network.incident_edges(network.vertices()[-1])[0]
        far = NetworkLocation(far_edge.edge_id, far_edge.length / 2.0)
        # Precondition: the escape really leaves the cached sub-network.
        assert processor._map_location(far) is None
        result = server.update_position(query_id, far)
        assert all(math.isfinite(distance) for distance in result.knn_distances)
        assert sorted(result.knn_distances) == pytest.approx(
            reference_knn_distances(server, far, 3)
        )

    def test_escape_without_update_stays_correct_standalone(self):
        from repro.core.ins_road import INSRoadProcessor

        network = grid_network(12, 12, spacing=25.0)
        objects = place_objects(network, 30, seed=56)
        processor = INSRoadProcessor(network, objects, k=4, validation_mode="restricted")
        processor.initialize(NetworkLocation(0, 2.0))
        far_edge = network.incident_edges(network.vertices()[-1])[0]
        far = NetworkLocation(far_edge.edge_id, 1.0)
        assert processor._map_location(far) is None
        result = processor.update(far)
        expected = network_knn(network, objects, far, 4)
        assert sorted(result.knn_distances) == pytest.approx(
            sorted(distance for _, distance in expected)
        )


class TestColocatedObjectsThroughTheServer:
    def test_insert_move_delete_on_shared_vertices(self):
        network = grid_network(8, 8, spacing=30.0)
        vertices = network.vertices()
        objects = [vertices[0], vertices[0], vertices[63], vertices[27], vertices[36]]
        server = MovingRoadKNNServer(network, objects)
        location = NetworkLocation(0, 5.0)
        query_id = server.register_query(location, k=2)
        # Insert a third object onto the already-shared vertex.
        index = server.insert_object(vertices[0])
        result = server.update_position(query_id, location)
        assert sorted(result.knn_distances) == pytest.approx(
            reference_knn_distances(server, location, 2)
        )
        # Remove the original representative of the shared trio.
        assert server.delete_object(0)
        result = server.update_position(query_id, location)
        assert sorted(result.knn_distances) == pytest.approx(
            reference_knn_distances(server, location, 2)
        )
        # Move the remaining co-located member away, then back.
        server.move_object(1, vertices[14])
        server.move_object(index, vertices[14])
        result = server.update_position(query_id, location)
        assert sorted(result.knn_distances) == pytest.approx(
            reference_knn_distances(server, location, 2)
        )

    def test_last_object_cannot_be_deleted(self):
        network = grid_network(3, 3)
        server = MovingRoadKNNServer(network, [0, 4])
        assert server.delete_object(0)
        with pytest.raises(EmptyDatasetError):
            server.delete_object(1)


class TestPopulationGuards:
    def test_delete_below_a_registered_k_fails_at_the_mutation(self):
        network = grid_network(4, 4, spacing=10.0)
        server = MovingRoadKNNServer(network, [0, 3, 12, 15, 5, 10])
        server.register_query(NetworkLocation(0, 1.0), k=5)
        with pytest.raises(QueryError):
            server.delete_object(0)
        # The diagram was not mutated by the rejected delete.
        assert server.object_count == 6 and server.epoch == 0
        server.unregister_query(server.query_ids()[0])
        assert server.delete_object(0)

    def test_batch_below_a_registered_k_fails_before_mutating(self):
        network = grid_network(4, 4, spacing=10.0)
        server = MovingRoadKNNServer(network, [0, 3, 12, 15, 5, 10])
        server.register_query(NetworkLocation(0, 1.0), k=4)
        with pytest.raises(QueryError):
            server.batch_update(deletes=[0, 1])
        assert server.object_count == 6 and server.epoch == 0
        # Inserts in the same batch count toward the surviving population.
        result = server.batch_update(inserts=[7], deletes=[0, 1])
        assert server.object_count == 5 and len(result.new_indexes) == 1

    def test_failed_registration_leaves_no_zombie_query(self):
        from repro.errors import RoadNetworkError

        network = grid_network(4, 4, spacing=10.0)
        server = MovingRoadKNNServer(network, place_objects(network, 6, seed=21))
        with pytest.raises(RoadNetworkError):
            server.register_query(NetworkLocation(0, 1e9), k=2)
        assert server.query_count == 0


class TestAggregateStats:
    def test_stats_accumulate_across_queries(self):
        network = grid_network(8, 8, spacing=30.0)
        objects = place_objects(network, 15, seed=66)
        server = MovingRoadKNNServer(network, objects)
        trajectory = network_random_walk(network, steps=10, step_length=20.0, seed=67)
        first = server.register_query(trajectory[0], k=2)
        second = server.register_query(trajectory[0], k=4)
        for step in range(1, 10):
            server.update_position(first, trajectory[step])
            server.update_position(second, trajectory[step])
        total = server.aggregate_stats()
        per_query = server.per_query_stats()
        assert total.timestamps == sum(stats.timestamps for stats in per_query.values())
        assert total.timestamps == 20
