"""Tests for repro.core.ins_euclidean (the INS processor, 2-D plane)."""

import pytest

from repro.errors import ConfigurationError
from repro.core.ins_euclidean import INSProcessor
from repro.core.objects import UpdateAction
from repro.geometry.point import Point
from repro.index.vortree import VoRTree
from repro.trajectory.euclidean import linear_trajectory, random_waypoint_trajectory
from repro.workloads.datasets import data_space, uniform_points


def brute_knn(points, query, k):
    order = sorted(range(len(points)), key=lambda i: (query.distance_squared_to(points[i]), i))
    return order[:k]


@pytest.fixture(scope="module")
def dataset():
    return uniform_points(400, extent=1_000.0, seed=150)


@pytest.fixture(scope="module")
def shared_vortree(dataset):
    return VoRTree(dataset)


class TestConfiguration:
    def test_parameter_validation(self, dataset):
        with pytest.raises(ConfigurationError):
            INSProcessor(dataset, k=0)
        with pytest.raises(ConfigurationError):
            INSProcessor(dataset, k=len(dataset))
        with pytest.raises(ConfigurationError):
            INSProcessor(dataset, k=5, rho=0.5)

    def test_prefetch_count(self, dataset, shared_vortree):
        processor = INSProcessor(dataset, k=5, rho=1.6, vortree=shared_vortree)
        assert processor.prefetch_count == 8
        assert processor.rho == 1.6

    def test_prefetch_count_at_least_k(self, dataset, shared_vortree):
        processor = INSProcessor(dataset, k=5, rho=1.0, vortree=shared_vortree)
        assert processor.prefetch_count == 5

    def test_name(self, dataset, shared_vortree):
        assert INSProcessor(dataset, k=3, vortree=shared_vortree).name == "INS"


class TestInitialization:
    def test_initial_answer_is_correct(self, dataset, shared_vortree):
        processor = INSProcessor(dataset, k=5, rho=1.6, vortree=shared_vortree)
        query = Point(500.0, 500.0)
        result = processor.initialize(query)
        assert list(result.knn) == brute_knn(dataset, query, 5)
        assert result.action is UpdateAction.FULL_RECOMPUTE
        assert result.knn_distances == tuple(sorted(result.knn_distances))

    def test_initial_state_structure(self, dataset, shared_vortree):
        processor = INSProcessor(dataset, k=5, rho=1.6, vortree=shared_vortree)
        query = Point(300.0, 700.0)
        processor.initialize(query)
        # R contains the kNN set, the guard set is disjoint from the kNN set.
        assert set(processor.prefetched_set) >= set(
            brute_knn(dataset, query, 5)
        )
        assert len(processor.prefetched_set) == processor.prefetch_count
        assert not (processor.guard_set & set(brute_knn(dataset, query, 5)))
        # I(R) excludes R itself (Definition 4).
        assert not (processor.influential_set & set(processor.prefetched_set))

    def test_update_before_initialize_raises(self, dataset, shared_vortree):
        processor = INSProcessor(dataset, k=3, vortree=shared_vortree)
        with pytest.raises(RuntimeError):
            processor.update(Point(0, 0))


class TestValidationAndUpdate:
    def test_tiny_movement_keeps_answer_without_communication(self, dataset, shared_vortree):
        processor = INSProcessor(dataset, k=5, rho=1.6, vortree=shared_vortree)
        query = Point(500.0, 500.0)
        first = processor.initialize(query)
        second = processor.update(Point(500.01, 500.0))
        assert second.was_valid
        assert second.action is UpdateAction.NONE
        assert second.knn_set == first.knn_set
        assert processor.stats.full_recomputations == 1  # only the initial one

    def test_every_reported_answer_is_correct_along_trajectory(self, dataset, shared_vortree):
        processor = INSProcessor(dataset, k=5, rho=1.6, vortree=shared_vortree)
        trajectory = random_waypoint_trajectory(
            data_space(1_000.0), steps=150, step_length=15.0, seed=151
        )
        processor.initialize(trajectory[0])
        for position in trajectory[1:]:
            result = processor.update(position)
            expected = brute_knn(dataset, position, 5)
            expected_k = position.distance_to(dataset[expected[-1]])
            got_k = max(result.knn_distances)
            assert got_k == pytest.approx(expected_k, rel=1e-9)
            assert set(result.knn) == set(expected) or got_k == pytest.approx(expected_k)

    def test_recomputations_much_rarer_than_timestamps(self, dataset, shared_vortree):
        processor = INSProcessor(dataset, k=5, rho=1.6, vortree=shared_vortree)
        trajectory = random_waypoint_trajectory(
            data_space(1_000.0), steps=200, step_length=10.0, seed=152
        )
        processor.initialize(trajectory[0])
        for position in trajectory[1:]:
            processor.update(position)
        stats = processor.stats
        assert stats.timestamps == len(trajectory)
        assert stats.full_recomputations < stats.timestamps / 3

    def test_larger_rho_reduces_recomputations(self, dataset, shared_vortree):
        trajectory = random_waypoint_trajectory(
            data_space(1_000.0), steps=250, step_length=20.0, seed=153
        )

        def recomputations(rho):
            processor = INSProcessor(dataset, k=5, rho=rho, vortree=shared_vortree)
            processor.initialize(trajectory[0])
            for position in trajectory[1:]:
                processor.update(position)
            return processor.stats.full_recomputations

        assert recomputations(3.0) <= recomputations(1.0)

    def test_local_reorder_handles_prefetched_swaps(self, dataset, shared_vortree):
        processor = INSProcessor(dataset, k=5, rho=2.5, vortree=shared_vortree)
        trajectory = random_waypoint_trajectory(
            data_space(1_000.0), steps=200, step_length=15.0, seed=154
        )
        processor.initialize(trajectory[0])
        actions = [processor.update(position).action for position in trajectory[1:]]
        assert UpdateAction.LOCAL_REORDER in actions

    def test_stationary_query_never_recomputes(self, dataset, shared_vortree):
        processor = INSProcessor(dataset, k=5, rho=1.6, vortree=shared_vortree)
        query = Point(444.0, 333.0)
        processor.initialize(query)
        for _ in range(20):
            result = processor.update(query)
            assert result.was_valid
        assert processor.stats.full_recomputations == 1


class TestCostAccounting:
    def test_communication_counts_R_plus_INS(self, dataset, shared_vortree):
        processor = INSProcessor(dataset, k=5, rho=1.6, vortree=shared_vortree)
        processor.initialize(Point(500.0, 500.0))
        expected = len(processor.prefetched_set) + len(processor.influential_set)
        assert processor.stats.transmitted_objects == expected

    def test_validation_cost_is_linear_in_held_objects(self, dataset, shared_vortree):
        processor = INSProcessor(dataset, k=5, rho=1.6, vortree=shared_vortree)
        processor.initialize(Point(500.0, 500.0))
        held = len(processor.prefetched_set) + len(processor.influential_set)
        before = processor.stats.distance_computations
        processor.update(Point(500.5, 500.0))
        after = processor.stats.distance_computations
        assert after - before == held

    def test_stats_reset(self, dataset, shared_vortree):
        processor = INSProcessor(dataset, k=3, vortree=shared_vortree)
        processor.initialize(Point(100, 100))
        processor.reset_stats()
        assert processor.stats.timestamps == 0
        assert processor.stats.full_recomputations == 0
