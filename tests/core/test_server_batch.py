"""Tests for the MovingKNNServer batch-update epoch API.

``batch_update`` must be *answer-equivalent* to applying the same object
updates one by one, and both must agree with a brute-force oracle over the
surviving population (the same correctness bar the naive baseline meets by
construction).
"""

import random

import pytest

from repro.baselines.naive import NaiveProcessor
from repro.core.server import MovingKNNServer
from repro.geometry.point import Point
from repro.workloads.datasets import uniform_points


def brute_knn(tree, query, k):
    active = tree.active_indexes()
    order = sorted(
        active, key=lambda i: (query.distance_squared_to(tree.point(i)), i)
    )
    return order[:k]


@pytest.fixture(scope="module")
def dataset():
    return uniform_points(300, extent=1_000.0, seed=600)


class TestEpochCounter:
    def test_epoch_advances_once_per_batch(self, dataset):
        server = MovingKNNServer(dataset)
        assert server.epoch == 0
        server.insert_object(Point(1.0, 2.0))
        assert server.epoch == 1
        result = server.batch_update(
            inserts=[Point(3.0, 4.0), Point(5.0, 6.0)], deletes=[0, 1, 2]
        )
        assert server.epoch == 2
        assert result.epoch == 2
        assert len(result.new_indexes) == 2
        assert set(result.deleted_indexes) == {0, 1, 2}

    def test_noop_batch_does_not_advance_epoch(self, dataset):
        server = MovingKNNServer(dataset)
        result = server.batch_update(deletes=[99_999])
        assert server.epoch == 0
        assert result.new_indexes == ()
        assert result.deleted_indexes == ()


class TestBatchAnswers:
    def test_batch_answers_match_per_object_answers(self, dataset):
        """One batch epoch and N single updates yield identical answers."""
        batched = MovingKNNServer(dataset)
        sequential = MovingKNNServer(dataset)
        position = Point(480.0, 520.0)
        b_query = batched.register_query(position, k=6)
        s_query = sequential.register_query(position, k=6)

        rng = random.Random(601)
        inserts = [
            Point(rng.uniform(0.0, 1_000.0), rng.uniform(0.0, 1_000.0))
            for _ in range(4)
        ]
        deletes = rng.sample(range(len(dataset)), 5)

        batched.batch_update(inserts=inserts, deletes=deletes)
        for index in deletes:
            sequential.delete_object(index)
        for point in inserts:
            sequential.insert_object(point)

        batched_answer = batched.answer(b_query)
        sequential_answer = sequential.answer(s_query)
        assert batched_answer.knn == sequential_answer.knn
        assert batched_answer.knn_distances == pytest.approx(
            sequential_answer.knn_distances
        )

    def test_batch_stream_stays_correct_against_naive_oracle(self, dataset):
        """Drive a moving query through batched update epochs; every answer
        must match the naive per-timestamp recomputation (and brute force)
        over the current population."""
        k = 5
        server = MovingKNNServer(dataset, allow_incremental=False)
        naive = NaiveProcessor(list(dataset), k)
        position = Point(200.0, 200.0)
        query_id = server.register_query(position, k=k)
        naive.initialize(position)

        rng = random.Random(602)
        for step in range(1, 25):
            position = Point(200.0 + 25.0 * step, 200.0 + 20.0 * step)
            if step % 4 == 0:
                inserts = [
                    Point(rng.uniform(0.0, 1_000.0), rng.uniform(0.0, 1_000.0))
                    for _ in range(2)
                ]
                deletes = rng.sample(server.vortree.active_indexes(), 2)
                result = server.batch_update(inserts=inserts, deletes=deletes)
                for point, index in zip(inserts, result.new_indexes):
                    naive.rtree.insert(point, index)
                for index in result.deleted_indexes:
                    naive.rtree.delete(server.vortree.point(index), index)
            ins_answer = server.update_position(query_id, position)
            naive_answer = naive.update(position)
            expected = brute_knn(server.vortree, position, k)
            assert sorted(ins_answer.knn) == sorted(naive_answer.knn) == sorted(expected)

    def test_register_query_after_heavy_deletion(self, dataset):
        """Prefetch sizing must follow the active population, not the raw
        (tombstone-inclusive) point count."""
        server = MovingKNNServer(list(dataset)[:10])
        server.batch_update(deletes=[0, 1, 2, 3, 4])
        query_id = server.register_query(Point(500.0, 500.0), k=3, rho=2.0)
        answer = server.answer(query_id)
        assert len(answer.knn) == 3
        assert sorted(answer.knn) == sorted(brute_knn(server.vortree, Point(500.0, 500.0), 3))

    def test_queries_share_live_positions_with_the_tree(self, dataset):
        server = MovingKNNServer(dataset)
        query_id = server.register_query(Point(500.0, 500.0), k=3)
        processor = next(iter(server)).processor
        assert processor._points is server.vortree.positions
        index = server.insert_object(Point(501.0, 501.0))
        # No copying happened: the processor sees the new object through the
        # shared view immediately.
        assert processor._points[index] == Point(501.0, 501.0)
        assert index in server.answer(query_id).knn
