"""Tests for repro.core.server (the multi-query MkNN server)."""

import pytest

from repro.errors import ConfigurationError, EmptyDatasetError, QueryError
from repro.core.server import MovingKNNServer
from repro.geometry.point import Point
from repro.trajectory.euclidean import random_waypoint_trajectory
from repro.workloads.datasets import data_space, uniform_points


def brute_knn(points, active, query, k):
    order = sorted(active, key=lambda i: (query.distance_squared_to(points[i]), i))
    return order[:k]


@pytest.fixture(scope="module")
def dataset():
    return uniform_points(400, extent=1_000.0, seed=500)


class TestRegistration:
    def test_requires_data(self):
        with pytest.raises(EmptyDatasetError):
            MovingKNNServer([])

    def test_register_and_unregister(self, dataset):
        server = MovingKNNServer(dataset)
        first = server.register_query(Point(100, 100), k=3)
        second = server.register_query(Point(900, 900), k=5, rho=2.0)
        assert server.query_count == 2
        assert set(server.query_ids()) == {first, second}
        server.unregister_query(first)
        assert server.query_count == 1
        with pytest.raises(QueryError):
            server.unregister_query(first)

    def test_register_validates_k(self, dataset):
        server = MovingKNNServer(dataset)
        with pytest.raises(ConfigurationError):
            server.register_query(Point(0, 0), k=0)
        with pytest.raises(ConfigurationError):
            server.register_query(Point(0, 0), k=len(dataset))

    def test_unknown_query_update_raises(self, dataset):
        server = MovingKNNServer(dataset)
        with pytest.raises(QueryError):
            server.update_position(42, Point(0, 0))

    def test_unregistering_during_iteration_is_safe(self, dataset):
        """__iter__ walks a snapshot: draining the query set mid-walk must
        not raise 'dictionary changed size during iteration'."""
        server = MovingKNNServer(dataset)
        for i in range(5):
            server.register_query(Point(100.0 * i, 100.0), k=3)
        for record in server:
            server.unregister_query(record.query_id)
        assert server.query_count == 0
        # query_ids() is a snapshot list for the same reason.
        server.register_query(Point(0.0, 0.0), k=2)
        for query_id in server.query_ids():
            server.unregister_query(query_id)
        assert server.query_count == 0


class TestConcurrentQueries:
    def test_each_query_gets_its_own_correct_answers(self, dataset):
        server = MovingKNNServer(dataset)
        trajectories = {
            server.register_query(traj[0], k=3 + offset): traj
            for offset, traj in enumerate(
                random_waypoint_trajectory(
                    data_space(1_000.0), steps=40, step_length=30.0, seed=501 + offset
                )
                for offset in range(3)
            )
        }
        active = list(range(len(dataset)))
        for step in range(1, 41):
            for query_id, trajectory in trajectories.items():
                position = trajectory[step]
                result = server.update_position(query_id, position)
                k = result.k
                expected = brute_knn(dataset, active, position, k)
                expected_kth = position.distance_to(dataset[expected[-1]])
                assert max(result.knn_distances) == pytest.approx(expected_kth)

    def test_queries_share_the_vortree(self, dataset):
        server = MovingKNNServer(dataset)
        a = server.register_query(Point(100, 100), k=3)
        b = server.register_query(Point(200, 200), k=3)
        processors = [registered.processor for registered in server]
        assert processors[0].vortree is processors[1].vortree is server.vortree

    def test_aggregate_stats_sum_per_query_stats(self, dataset):
        server = MovingKNNServer(dataset)
        a = server.register_query(Point(100, 100), k=3)
        b = server.register_query(Point(800, 800), k=4)
        for step in range(1, 11):
            server.update_position(a, Point(100 + 10 * step, 100))
            server.update_position(b, Point(800 - 10 * step, 800))
        per_query = server.per_query_stats()
        aggregate = server.aggregate_stats()
        assert aggregate.timestamps == sum(s.timestamps for s in per_query.values())
        assert aggregate.full_recomputations == sum(
            s.full_recomputations for s in per_query.values()
        )


class TestServerSideObjectUpdates:
    def test_insert_reaches_every_query(self, dataset):
        server = MovingKNNServer(dataset)
        a = server.register_query(Point(500, 500), k=4)
        b = server.register_query(Point(505, 505), k=4)
        new_index = server.insert_object(Point(500.2, 500.2))
        for query_id in (a, b):
            result = server.answer(query_id)
            assert new_index in result.knn

    def test_delete_reaches_every_query(self, dataset):
        server = MovingKNNServer(dataset)
        a = server.register_query(Point(500, 500), k=4)
        victim = server.answer(a).knn[0]
        assert server.delete_object(victim)
        result = server.answer(a)
        assert victim not in result.knn
        assert server.object_count == len(dataset) - 1

    def test_delete_missing_object_is_noop(self, dataset):
        server = MovingKNNServer(dataset)
        server.register_query(Point(1, 1), k=2)
        assert not server.delete_object(99_999)
