"""Tests for repro.core.influential (IS / MIS / INS machinery)."""

import random

import pytest

from repro.errors import QueryError
from repro.core.influential import (
    influential_neighbor_set,
    influential_neighbor_set_from_points,
    is_closer_set,
    minimal_influential_set,
    verify_influential_set,
)
from repro.geometry.order_k import knn_indexes
from repro.geometry.point import Point
from repro.geometry.primitives import BoundingBox
from repro.geometry.voronoi import VoronoiDiagram
from repro.workloads.datasets import uniform_points


class TestIsCloserSet:
    def test_basic_relation(self):
        query = Point(0, 0)
        close = [Point(1, 0), Point(0, 1)]
        far = [Point(5, 0), Point(0, 7)]
        assert is_closer_set(query, close, far)
        assert not is_closer_set(query, far, close)

    def test_empty_sets_are_trivially_true(self):
        query = Point(0, 0)
        assert is_closer_set(query, [], [Point(1, 1)])
        assert is_closer_set(query, [Point(1, 1)], [])

    def test_equality_counts_as_closer(self):
        query = Point(0, 0)
        assert is_closer_set(query, [Point(1, 0)], [Point(0, 1)])


class TestINSComputation:
    def test_ins_matches_manual_union(self, small_points):
        diagram = VoronoiDiagram(small_points)
        members = {4, 6, 7}
        expected = set()
        for member in members:
            expected |= diagram.neighbors_of(member)
        expected -= members
        assert influential_neighbor_set(diagram.neighbor_map(), members) == expected
        assert influential_neighbor_set_from_points(small_points, members) == expected

    def test_ins_excludes_members(self, small_points):
        members = {0, 1}
        ins = influential_neighbor_set_from_points(small_points, members)
        assert not (ins & members)


class TestMISComputation:
    def test_mis_subset_of_ins_figure1_analogue(self, small_points):
        """The Figure 1 structural relationship on the 12-point layout."""
        query = Point(4.8, 5.2)
        members = knn_indexes(small_points, query, 3)
        mis = minimal_influential_set(small_points, members, reference=query)
        ins = influential_neighbor_set_from_points(small_points, members)
        assert mis
        assert mis <= ins

    def test_mis_smaller_or_equal_to_ins_random(self):
        points = uniform_points(100, extent=1_000.0, seed=140)
        rng = random.Random(7)
        for _ in range(5):
            query = Point(rng.uniform(200, 800), rng.uniform(200, 800))
            members = knn_indexes(points, query, 4)
            mis = minimal_influential_set(points, members, reference=query)
            ins = influential_neighbor_set_from_points(points, members)
            assert mis <= ins
            assert len(mis) <= len(ins)


class TestVerifyInfluentialSet:
    def _probes(self, center: Point, radius: float, count: int = 60):
        rng = random.Random(11)
        return [
            Point(center.x + rng.uniform(-radius, radius), center.y + rng.uniform(-radius, radius))
            for _ in range(count)
        ]

    def test_ins_is_an_influential_set(self, small_points):
        """Definition 1 holds for the INS (the paper's correctness claim)."""
        query = Point(4.8, 5.2)
        members = knn_indexes(small_points, query, 3)
        ins = influential_neighbor_set_from_points(small_points, members)
        assert verify_influential_set(
            small_points, members, ins, self._probes(query, 4.0)
        )

    def test_mis_is_an_influential_set(self, small_points):
        query = Point(4.8, 5.2)
        members = knn_indexes(small_points, query, 3)
        mis = minimal_influential_set(small_points, members, reference=query)
        assert verify_influential_set(
            small_points, members, mis, self._probes(query, 4.0)
        )

    def test_a_random_small_guard_set_usually_fails(self, small_points):
        """A guard set that misses MIS members cannot guarantee validity."""
        query = Point(4.8, 5.2)
        members = knn_indexes(small_points, query, 3)
        mis = minimal_influential_set(small_points, members, reference=query)
        # Remove one MIS member: probes just beyond that neighbour's bisector
        # will report "still guarded" while the true kNN set changed.
        weakened = set(mis)
        weakened.discard(sorted(mis)[0])
        others = [i for i in range(len(small_points)) if i not in set(members)]
        assert not verify_influential_set(
            small_points,
            members,
            weakened,
            self._probes(query, 6.0, count=300),
        ) or weakened == mis

    def test_guard_overlapping_members_raises(self, small_points):
        with pytest.raises(QueryError):
            verify_influential_set(small_points, [0, 1], [1, 2], [Point(0, 0)])
