"""Lockstep guard: stats dataclasses vs merge/as_dict/codec wire tuples.

Every time a counter is added to :class:`ProcessorStats` or
:class:`CommunicationStats`, four other places must learn about it —
``merge()``, ``snapshot()`` (comm), ``as_dict()`` and the codec's wire
field tuples (``_PROC_INT_FIELDS``/``_PROC_FLOAT_FIELDS``/
``_COMM_FIELDS``).  Forgetting one silently drops that counter from
aggregation or from the wire, which corrupts every cross-shard bill.
This module derives the expected coverage from ``dataclasses.fields``
itself, so the guard can never go stale: adding a field fails here until
every consumer handles it.
"""

import dataclasses

from repro.core.stats import CommunicationStats, ProcessorStats
from repro.transport.codec import (
    _COMM_FIELDS,
    _PROC_FLOAT_FIELDS,
    _PROC_INT_FIELDS,
)


def _field_names(cls):
    return [field.name for field in dataclasses.fields(cls)]


def _distinct_instance(cls, offset: int = 0):
    """An instance whose every field holds a distinct nonzero value."""
    values = {}
    for index, field in enumerate(dataclasses.fields(cls)):
        value = offset + 2 * index + 3
        values[field.name] = float(value) if _is_float(field) else value
    return cls(**values), values


def _is_float(field) -> bool:
    return field.type in (float, "float")


class TestCommunicationStatsLockstep:
    def test_wire_tuple_covers_every_field(self):
        assert set(_COMM_FIELDS) == set(_field_names(CommunicationStats))

    def test_merge_covers_every_field(self):
        base = CommunicationStats()
        other, values = _distinct_instance(CommunicationStats)
        base.merge(other)
        for name, value in values.items():
            assert getattr(base, name) == value, f"merge() drops {name}"

    def test_snapshot_covers_every_field(self):
        original, values = _distinct_instance(CommunicationStats, offset=100)
        copy = original.snapshot()
        assert copy is not original
        for name, value in values.items():
            assert getattr(copy, name) == value, f"snapshot() drops {name}"
        # And it really is independent.
        copy.uplink_messages += 1
        assert original.uplink_messages == values["uplink_messages"]

    def test_as_dict_covers_every_field(self):
        stats, values = _distinct_instance(CommunicationStats)
        rendered = stats.as_dict()
        for name, value in values.items():
            assert rendered[name] == value, f"as_dict() drops {name}"


class TestProcessorStatsLockstep:
    def test_wire_tuples_cover_every_field_exactly_once(self):
        wire = _PROC_INT_FIELDS + _PROC_FLOAT_FIELDS
        assert len(wire) == len(set(wire))
        assert set(wire) == set(_field_names(ProcessorStats))

    def test_wire_tuples_partition_by_declared_type(self):
        by_name = {
            field.name: field.type
            for field in dataclasses.fields(ProcessorStats)
        }
        for name in _PROC_INT_FIELDS:
            assert by_name[name] in (int, "int"), f"{name} shipped as u64 but not int"
        for name in _PROC_FLOAT_FIELDS:
            assert by_name[name] in (float, "float"), (
                f"{name} shipped as f64 but not float"
            )

    def test_merge_covers_every_field(self):
        base = ProcessorStats()
        other, values = _distinct_instance(ProcessorStats)
        base.merge(other)
        for name, value in values.items():
            assert getattr(base, name) == value, f"merge() drops {name}"

    def test_as_dict_covers_every_field(self):
        stats, values = _distinct_instance(ProcessorStats)
        rendered = stats.as_dict()
        for name, value in values.items():
            assert rendered[name] == value, f"as_dict() drops {name}"
