"""Tests for repro.core.stats."""

import time

import pytest

from repro.core.stats import ProcessorStats


class TestCounters:
    def test_defaults_are_zero(self):
        stats = ProcessorStats()
        assert stats.timestamps == 0
        assert stats.full_recomputations == 0
        assert stats.total_seconds == 0.0
        assert stats.recomputation_rate == 0.0

    def test_communication_events(self):
        stats = ProcessorStats(incremental_updates=2, full_recomputations=3)
        assert stats.communication_events == 5

    def test_recomputation_rate(self):
        stats = ProcessorStats(timestamps=10, full_recomputations=2)
        assert stats.recomputation_rate == pytest.approx(0.2)

    def test_merge(self):
        first = ProcessorStats(timestamps=5, validations=4, transmitted_objects=20)
        second = ProcessorStats(timestamps=3, validations=3, transmitted_objects=7)
        first.merge(second)
        assert first.timestamps == 8
        assert first.validations == 7
        assert first.transmitted_objects == 27

    def test_as_dict_contains_all_counters(self):
        stats = ProcessorStats(timestamps=2, full_recomputations=1)
        exported = stats.as_dict()
        assert exported["timestamps"] == 2
        assert exported["full_recomputations"] == 1
        assert "recomputation_rate" in exported
        assert "precomputation_seconds" in exported


class TestTimers:
    def test_construction_timer_accumulates(self):
        stats = ProcessorStats()
        with stats.time_construction():
            time.sleep(0.002)
        with stats.time_construction():
            time.sleep(0.002)
        assert stats.construction_seconds >= 0.003

    def test_validation_timer(self):
        stats = ProcessorStats()
        with stats.time_validation():
            time.sleep(0.002)
        assert stats.validation_seconds > 0.0
        assert stats.construction_seconds == 0.0

    def test_precomputation_timer(self):
        stats = ProcessorStats()
        with stats.time_precomputation():
            time.sleep(0.002)
        assert stats.precomputation_seconds > 0.0
        # Precomputation is not part of the online total.
        assert stats.total_seconds == stats.construction_seconds + stats.validation_seconds

    def test_timer_records_even_when_exception_raised(self):
        stats = ProcessorStats()
        with pytest.raises(RuntimeError):
            with stats.time_construction():
                raise RuntimeError("boom")
        assert stats.construction_seconds >= 0.0
