"""Tests for the top-level public API of the ``repro`` package."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing attribute {name}"

    def test_quickstart_docstring_flow(self):
        """The module docstring's quickstart snippet must actually work."""
        from repro import INSProcessor, uniform_points, random_waypoint_trajectory
        from repro.workloads.datasets import data_space
        from repro.simulation import simulate

        points = uniform_points(100, seed=1)
        trajectory = random_waypoint_trajectory(data_space(), steps=20, step_length=50.0)
        processor = INSProcessor(points, k=5, rho=1.6)
        run = simulate(processor, trajectory)
        assert run.timestamps == 21
        assert run.stats.full_recomputations >= 1

    def test_key_classes_are_exported(self):
        assert repro.INSProcessor.__name__ == "INSProcessor"
        assert repro.INSRoadProcessor.__name__ == "INSRoadProcessor"
        assert repro.VoRTree.__name__ == "VoRTree"
        assert repro.NetworkVoronoiDiagram.__name__ == "NetworkVoronoiDiagram"
