"""Tests for the top-level public API of the ``repro`` package."""

import pytest

import repro
import repro.durability
import repro.queries
import repro.service
import repro.transport


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [repro, repro.service, repro.transport, repro.durability, repro.queries],
        ids=[
            "repro",
            "repro.service",
            "repro.transport",
            "repro.durability",
            "repro.queries",
        ],
    )
    def test_all_is_consistent(self, module):
        """__all__ must be duplicate-free and every name must resolve."""
        assert len(module.__all__) == len(set(module.__all__)), "duplicate __all__ entry"
        for name in module.__all__:
            assert hasattr(module, name), (
                f"{module.__name__}.__all__ exports missing attribute {name}"
            )

    def test_service_surface_is_reexported_at_the_top_level(self):
        """Everything the service layer exports is reachable from ``repro``
        directly — the one front door — and is the same object."""
        for name in repro.service.__all__:
            assert name in repro.__all__, f"repro.__all__ is missing {name}"
            assert getattr(repro, name) is getattr(repro.service, name)

    def test_transport_user_surface_is_reexported_at_the_top_level(self):
        """The user-facing transport names (not the codec internals) are
        reachable from ``repro`` directly and are the same objects."""
        for name in (
            "connect",
            "KNNServer",
            "RemoteService",
            "RemoteSession",
            "ProcessShardedDispatcher",
            "ServiceSpec",
            "TransportError",
        ):
            assert name in repro.__all__, f"repro.__all__ is missing {name}"
            assert getattr(repro, name) is getattr(repro.transport, name)

    def test_durability_user_surface_is_reexported_at_the_top_level(self):
        """The crash-recovery entry points are reachable from ``repro``."""
        for name in (
            "DurableKNNService",
            "open_durable_service",
            "recover_service",
            "has_durable_state",
        ):
            assert name in repro.__all__, f"repro.__all__ is missing {name}"
            assert getattr(repro, name) is getattr(repro.durability, name)

    def test_queries_surface_is_reexported_at_the_top_level(self):
        """The continuous-query subsystem is reachable from ``repro``
        directly (all of it except the service-internal response_for)."""
        for name in repro.queries.__all__:
            if name in ("response_for", "InfluentialSitesKind", "KNNKind", "OrderKRegionKind"):
                continue
            assert name in repro.__all__, f"repro.__all__ is missing {name}"
            assert getattr(repro, name) is getattr(repro.queries, name)

    def test_query_kind_registry_lists_the_shipped_kinds(self):
        assert repro.query_kinds() == ["influential", "knn", "region"]
        for name in repro.query_kinds():
            kind = repro.query_kind(name)
            assert kind.name == name

    def test_new_response_frames_are_knn_response_subclasses(self):
        """The wire seam: widened responses ARE the kNN response class, so
        existing clients deliver them unchanged."""
        assert issubclass(repro.InfluentialResponse, repro.KNNResponse)
        assert issubclass(repro.RegionEvent, repro.KNNResponse)

    def test_durable_service_is_a_service_subclass(self):
        """The durability seam: a durable service IS the service class."""
        assert issubclass(repro.DurableKNNService, repro.KNNService)

    def test_remote_session_is_a_session_subclass(self):
        """The transport seam: remote handles ARE the session class."""
        assert issubclass(repro.transport.RemoteSession, repro.Session)

    def test_quickstart_docstring_flow(self):
        """The module docstring's quickstart snippet must actually work."""
        from repro import open_service, uniform_points, random_waypoint_trajectory
        from repro.workloads.datasets import data_space

        service = open_service(metric="euclidean", objects=uniform_points(100, seed=1))
        trajectory = random_waypoint_trajectory(data_space(), steps=20, step_length=50.0)
        with service.open_session(trajectory[0], k=5, rho=1.6) as session:
            for position in trajectory[1:]:
                response = session.update(position)
            assert len(response.knn) == 5
            assert session.stats.timestamps == 21
            assert session.communication.messages >= 2
        assert session.closed

    def test_processor_layer_still_works_directly(self):
        """The pre-service surface stays importable and functional."""
        from repro import INSProcessor, uniform_points, random_waypoint_trajectory
        from repro.workloads.datasets import data_space
        from repro.simulation import simulate

        points = uniform_points(100, seed=1)
        trajectory = random_waypoint_trajectory(data_space(), steps=20, step_length=50.0)
        processor = INSProcessor(points, k=5, rho=1.6)
        run = simulate(processor, trajectory)
        assert run.timestamps == 21
        assert run.stats.full_recomputations >= 1

    def test_key_classes_are_exported(self):
        assert repro.INSProcessor.__name__ == "INSProcessor"
        assert repro.INSRoadProcessor.__name__ == "INSRoadProcessor"
        assert repro.VoRTree.__name__ == "VoRTree"
        assert repro.NetworkVoronoiDiagram.__name__ == "NetworkVoronoiDiagram"
        assert repro.KNNService.__name__ == "KNNService"
        assert repro.Session.__name__ == "Session"
        assert repro.ShardedDispatcher.__name__ == "ShardedDispatcher"
