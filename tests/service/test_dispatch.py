"""Tests for the sharded session dispatcher."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.service import ShardedDispatcher, open_service
from repro.workloads.datasets import uniform_points
from repro.geometry.point import Point


class TestRun:
    def test_results_come_back_in_input_order(self):
        with ShardedDispatcher(workers=3) as dispatcher:
            results = dispatcher.run([(lambda i=i: i * i) for i in range(10)])
        assert results == [i * i for i in range(10)]

    def test_single_worker_runs_inline(self):
        thread_ids = []
        with ShardedDispatcher(workers=1) as dispatcher:
            dispatcher.run([lambda: thread_ids.append(threading.get_ident())])
        assert thread_ids == [threading.get_ident()]

    def test_tasks_spread_across_worker_threads(self):
        # A barrier forces two shards to be in flight at once, proving the
        # dispatch is actually concurrent (fast tasks could otherwise all be
        # serviced by a single pool thread).
        barrier = threading.Barrier(2, timeout=5.0)
        seen = set()

        def task():
            seen.add(threading.get_ident())
            barrier.wait()

        with ShardedDispatcher(workers=2) as dispatcher:
            dispatcher.run([task, task])
        assert len(seen) == 2

    def test_a_shard_failure_propagates(self):
        def boom():
            raise ValueError("shard failure")

        with ShardedDispatcher(workers=2) as dispatcher:
            with pytest.raises(ValueError, match="shard failure"):
                dispatcher.run([lambda: 1, boom, lambda: 3])

    def test_closed_dispatcher_rejects_work(self):
        dispatcher = ShardedDispatcher(workers=2)
        dispatcher.close()
        assert dispatcher.closed
        with pytest.raises(ConfigurationError):
            dispatcher.run([lambda: 1])

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigurationError):
            ShardedDispatcher(workers=0)


class TestAdvance:
    def _service_with_sessions(self, count=6):
        service = open_service(
            metric="euclidean", objects=uniform_points(150, seed=9)
        )
        sessions = [
            service.open_session(Point(100.0 * i, 200.0), k=3) for i in range(count)
        ]
        return service, sessions

    def test_duplicate_session_is_rejected(self):
        service, sessions = self._service_with_sessions(2)
        with ShardedDispatcher(workers=2) as dispatcher:
            with pytest.raises(ConfigurationError):
                dispatcher.advance(
                    [(sessions[0], Point(1.0, 1.0)), (sessions[0], Point(2.0, 2.0))]
                )
        service.close()

    def test_one_dispatch_may_span_several_services(self):
        # query_ids repeat across engines; distinct sessions must not be
        # mistaken for duplicates.
        service_a, sessions_a = self._service_with_sessions(1)
        service_b, sessions_b = self._service_with_sessions(1)
        assert sessions_a[0].query_id == sessions_b[0].query_id
        with ShardedDispatcher(workers=2) as dispatcher:
            responses = dispatcher.advance(
                [(sessions_a[0], Point(5.0, 5.0)), (sessions_b[0], Point(9.0, 9.0))]
            )
        assert len(responses) == 2
        service_a.close()
        service_b.close()

    def test_sharded_advance_matches_sequential(self):
        """workers=4 must produce bit-identical answers to workers=1."""
        moves = [Point(97.0 * i + 13.0, 211.0) for i in range(6)]
        runs = {}
        for workers in (1, 4):
            service, sessions = self._service_with_sessions(6)
            with ShardedDispatcher(workers=workers) as dispatcher:
                stream = [
                    dispatcher.advance(
                        [
                            (session, Point(move.x + 31.0 * step, move.y))
                            for session, move in zip(sessions, moves)
                        ]
                    )
                    for step in range(5)
                ]
            runs[workers] = [
                [(r.knn, r.knn_distances) for r in responses] for responses in stream
            ]
            service.close()
        assert runs[1] == runs[4]
