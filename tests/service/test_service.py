"""Tests for the metric-agnostic service facade and its session handles."""

import pytest

from repro.errors import ConfigurationError, QueryError
from repro.core.road_server import MovingRoadKNNServer
from repro.core.server import MovingKNNServer
from repro.geometry.point import Point
from repro.roadnet.generators import grid_network, place_objects
from repro.service import KNNService, UpdateBatch, open_service
from repro.trajectory.road import network_random_walk
from repro.workloads.datasets import uniform_points
from repro.workloads.scenarios import (
    default_euclidean_scenario,
    default_road_scenario,
    euclidean_server_scenario,
    road_server_scenario,
)


@pytest.fixture
def euclidean_service():
    return open_service(metric="euclidean", objects=uniform_points(150, seed=3))


@pytest.fixture
def road_service():
    network = grid_network(7, 7, spacing=50.0)
    objects = place_objects(network, 18, seed=4)
    return open_service(metric="road", network=network, objects=objects)


class TestOpenService:
    def test_one_code_path_serves_both_metrics(self, euclidean_service, road_service):
        assert euclidean_service.metric == "euclidean"
        assert isinstance(euclidean_service.engine, MovingKNNServer)
        assert road_service.metric == "road"
        assert isinstance(road_service.engine, MovingRoadKNNServer)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            open_service(metric="hyperbolic", objects=[Point(0.0, 0.0)])

    def test_missing_objects_rejected(self):
        with pytest.raises(ConfigurationError):
            open_service(metric="euclidean")

    def test_road_requires_a_network(self):
        with pytest.raises(ConfigurationError):
            open_service(metric="road", objects=[0, 1, 2])

    def test_euclidean_rejects_a_network(self):
        with pytest.raises(ConfigurationError):
            open_service(
                metric="euclidean",
                objects=uniform_points(10, seed=1),
                network=grid_network(3, 3),
            )

    def test_modes_are_forwarded(self):
        service = open_service(
            metric="euclidean",
            objects=uniform_points(20, seed=2),
            invalidation="flag",
            maintenance="rebuild",
        )
        assert service.invalidation == "flag"
        assert service.maintenance == "rebuild"

    def test_wrapping_a_foreign_engine_is_rejected(self):
        with pytest.raises(ConfigurationError):
            KNNService(object())


class TestFromScenario:
    @pytest.mark.parametrize(
        "factory, metric",
        [
            (lambda: default_euclidean_scenario(object_count=60, steps=5), "euclidean"),
            (lambda: default_road_scenario(rows=5, columns=5, object_count=12, steps=5), "road"),
            (
                lambda: euclidean_server_scenario(
                    queries=2, object_count=60, k=3, steps=5
                ),
                "euclidean",
            ),
            (
                lambda: road_server_scenario(
                    queries=2, rows=5, columns=5, object_count=10, steps=5
                ),
                "road",
            ),
        ],
        ids=["euclidean", "road", "euclidean-server", "road-server"],
    )
    def test_accepts_every_scenario_flavour(self, factory, metric):
        scenario = factory()
        service = KNNService.from_scenario(scenario)
        assert service.metric == metric == scenario.metric
        assert service.object_count > 0

    def test_rejects_a_non_scenario(self):
        with pytest.raises(ConfigurationError):
            KNNService.from_scenario(object())


class TestSessionLifecycle:
    def test_context_manager_auto_unregisters(self, euclidean_service):
        with euclidean_service.open_session(Point(100.0, 100.0), k=4) as session:
            assert not session.closed
            assert euclidean_service.session_count == 1
            assert euclidean_service.engine.query_count == 1
            assert session.k == 4 and session.rho == 1.6
        assert session.closed
        assert euclidean_service.session_count == 0
        assert euclidean_service.engine.query_count == 0

    def test_close_is_idempotent(self, euclidean_service):
        session = euclidean_service.open_session(Point(50.0, 50.0), k=3)
        session.close()
        session.close()
        assert euclidean_service.session_count == 0

    def test_closed_session_rejects_updates(self, euclidean_service):
        session = euclidean_service.open_session(Point(50.0, 50.0), k=3)
        session.close()
        with pytest.raises(QueryError):
            session.update(Point(60.0, 60.0))
        with pytest.raises(QueryError):
            session.stats
        with pytest.raises(QueryError):
            session.communication

    def test_update_and_refresh_answer(self, euclidean_service):
        with euclidean_service.open_session(Point(100.0, 100.0), k=3) as session:
            response = session.update(Point(110.0, 100.0))
            assert len(response.knn) == 3
            assert session.last_response is response
            refreshed = session.refresh()
            assert refreshed.knn == response.knn

    def test_misaddressed_message_rejected(self, euclidean_service):
        from repro.service import PositionUpdate

        with euclidean_service.open_session(Point(10.0, 10.0), k=3) as session:
            with pytest.raises(QueryError):
                session.send(PositionUpdate(query_id=999, position=Point(1.0, 1.0)))

    def test_road_session_options_pass_through(self, road_service):
        walk = network_random_walk(
            road_service.engine.network, steps=4, step_length=25.0, seed=8
        )
        with road_service.open_session(
            walk[0], k=3, validation_mode="exact"
        ) as session:
            response = session.update(walk[1])
            assert len(response.knn) == 3

    def test_closing_sessions_while_iterating_the_engine(self, euclidean_service):
        """The ServingEngine iterates over a snapshot: unregistering mid-walk
        must not raise 'dictionary changed size during iteration'."""
        sessions = [
            euclidean_service.open_session(Point(30.0 * i, 40.0), k=3)
            for i in range(5)
        ]
        engine = euclidean_service.engine
        for record in engine:
            engine.unregister_query(record.query_id)
        assert engine.query_count == 0

    def test_service_close_closes_every_session(self, euclidean_service):
        sessions = [
            euclidean_service.open_session(Point(20.0 * i, 20.0), k=3)
            for i in range(3)
        ]
        euclidean_service.close()
        assert all(session.closed for session in sessions)
        assert euclidean_service.closed
        with pytest.raises(QueryError):
            euclidean_service.open_session(Point(1.0, 1.0), k=2)


class TestUpdateBatches:
    def test_euclidean_moves_decompose_into_delete_and_reinsert(self, euclidean_service):
        count_before = euclidean_service.object_count
        result = euclidean_service.apply(
            UpdateBatch(moves=((0, Point(9_000.0, 9_000.0)),))
        )
        assert result.deleted_indexes == (0,)
        assert len(result.new_indexes) == 1
        assert euclidean_service.object_count == count_before
        moved = result.new_indexes[0]
        assert euclidean_service.engine.vortree.point(moved) == Point(9_000.0, 9_000.0)

    def test_road_moves_are_native(self, road_service):
        target = road_service.engine.network.vertices()[0]
        road_service.apply(UpdateBatch(moves=((2, target),)))
        assert road_service.engine.object_vertex(2) == target

    def test_batch_advances_one_epoch_and_bills_its_payload(self, euclidean_service):
        comm_before = euclidean_service.communication.snapshot()
        epoch_before = euclidean_service.epoch
        batch = UpdateBatch(inserts=(Point(1.0, 1.0), Point(2.0, 2.0)), deletes=(3,))
        euclidean_service.apply(batch)
        assert euclidean_service.epoch == epoch_before + 1
        comm = euclidean_service.communication
        assert comm.uplink_messages - comm_before.uplink_messages == 1
        assert comm.uplink_objects - comm_before.uplink_objects == batch.payload_size() == 3

    def test_move_billing_follows_the_metric(self, euclidean_service, road_service):
        """A road move is one native record; a Euclidean move decomposes
        into delete + reinsert and is billed as two (see payload_size)."""
        road_batch = UpdateBatch(
            moves=((2, road_service.engine.network.vertices()[0]),)
        )
        before = road_service.communication.snapshot()
        road_service.apply(road_batch)
        assert (
            road_service.communication.uplink_objects - before.uplink_objects
            == road_batch.payload_size()
            == 1
        )
        euclidean_batch = UpdateBatch(moves=((0, Point(8_000.0, 8_000.0)),))
        before = euclidean_service.communication.snapshot()
        euclidean_service.apply(euclidean_batch)
        assert (
            euclidean_service.communication.uplink_objects - before.uplink_objects
            == 2 * euclidean_batch.payload_size()
            == 2
        )

    def test_single_object_helpers(self, road_service):
        vertices = road_service.engine.network.vertices()
        index = road_service.insert(vertices[3])
        assert road_service.engine.object_vertex(index) == vertices[3]
        road_service.move(index, vertices[5])
        assert road_service.engine.object_vertex(index) == vertices[5]
        assert road_service.delete(index) is True
        assert road_service.delete(index) is False

    def test_population_guard_protects_open_sessions(self):
        service = open_service(metric="euclidean", objects=uniform_points(6, seed=5))
        with service.open_session(Point(100.0, 100.0), k=4) as session:
            with pytest.raises(QueryError):
                service.apply(UpdateBatch(deletes=(0, 1, 2)))
            # Nothing was applied: the session still answers correctly.
            assert len(session.update(Point(120.0, 100.0)).knn) == 4


class TestCommunicationReporting:
    def test_per_session_and_aggregate_accounting(self, euclidean_service):
        with euclidean_service.open_session(Point(100.0, 100.0), k=3) as session:
            comm = session.communication
            # Registration: one uplink request, one response carrying R + I(R).
            assert comm.uplink_messages == 1
            assert comm.downlink_messages == 1
            assert comm.downlink_objects == session.stats.transmitted_objects
            assert comm.downlink_objects > 0
            session.update(Point(101.0, 100.0))
            per_session = euclidean_service.per_session_communication()
            assert set(per_session) == {session.query_id}
            snapshot = session.communication.snapshot()
        # Closing bills the goodbye message into the aggregate only.
        aggregate = euclidean_service.communication
        assert aggregate.uplink_messages == snapshot.uplink_messages + 1
        assert euclidean_service.per_session_communication() == {}

    def test_responses_annotate_their_own_cost(self, euclidean_service):
        with euclidean_service.open_session(Point(100.0, 100.0), k=3) as session:
            before = session.communication.snapshot()
            response = session.update(Point(4_000.0, 4_000.0))  # far: forces a retrieval
            after = session.communication
            assert response.round_trips >= 1
            assert response.objects_shipped == (
                after.downlink_objects - before.downlink_objects
            )
            quiet = session.update(Point(4_000.5, 4_000.0))  # barely moved: free
            assert quiet.round_trips == 0
            assert quiet.objects_shipped == 0
