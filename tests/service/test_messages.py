"""Tests for the typed message protocol and its communication accounting."""

import pytest

from repro.core.objects import QueryResult, UpdateAction
from repro.core.stats import CommunicationStats
from repro.geometry.point import Point
from repro.service import KNNResponse, PositionUpdate, UpdateBatch


def _result(knn=(3, 1, 2), action=UpdateAction.NONE, was_valid=True):
    return QueryResult(
        timestamp=4,
        knn=tuple(knn),
        knn_distances=tuple(float(i) for i in range(1, len(knn) + 1)),
        guard_objects=frozenset({7, 8}),
        action=action,
        was_valid=was_valid,
    )


class TestPositionUpdate:
    def test_positions_are_not_object_payload(self):
        message = PositionUpdate(query_id=3, position=Point(1.0, 2.0))
        assert message.payload_size() == 0


class TestKNNResponse:
    def test_payload_is_the_shipped_objects(self):
        response = KNNResponse(
            query_id=1, result=_result(), objects_shipped=9, round_trips=1, epoch=5
        )
        assert response.payload_size() == 9

    def test_delegates_the_result_fields(self):
        result = _result(action=UpdateAction.FULL_RECOMPUTE, was_valid=False)
        response = KNNResponse(
            query_id=1, result=result, objects_shipped=12, round_trips=1, epoch=2
        )
        assert response.knn == result.knn
        assert response.knn_distances == result.knn_distances
        assert response.knn_set == frozenset(result.knn)
        assert response.guard_objects == result.guard_objects
        assert response.action is UpdateAction.FULL_RECOMPUTE
        assert response.was_valid is False
        assert response.k == len(result.knn)
        assert response.describe() == result.describe()

    def test_a_locally_validated_step_ships_nothing(self):
        response = KNNResponse(
            query_id=1, result=_result(), objects_shipped=0, round_trips=0, epoch=0
        )
        assert response.payload_size() == 0
        assert response.round_trips == 0


class TestUpdateBatch:
    def test_payload_counts_one_record_per_mutation(self):
        batch = UpdateBatch(
            inserts=(Point(1.0, 1.0), Point(2.0, 2.0)),
            deletes=(4,),
            moves=((5, Point(3.0, 3.0)),),
        )
        assert batch.payload_size() == 4
        assert not batch.is_empty

    def test_normalises_arbitrary_iterables(self):
        batch = UpdateBatch(inserts=[7, 8], deletes=iter([1]), moves=[(2, 9)])
        assert batch.inserts == (7, 8)
        assert batch.deletes == (1,)
        assert batch.moves == ((2, 9),)

    def test_empty_batch(self):
        assert UpdateBatch().is_empty
        assert UpdateBatch().payload_size() == 0


class TestCommunicationStats:
    def test_totals_and_as_dict(self):
        stats = CommunicationStats(
            uplink_messages=3, uplink_objects=2, downlink_messages=5, downlink_objects=40
        )
        assert stats.messages == 8
        assert stats.objects_transmitted == 42
        assert stats.as_dict()["messages"] == 8
        assert stats.as_dict()["objects_transmitted"] == 42

    def test_merge_accumulates(self):
        total = CommunicationStats()
        total.merge(CommunicationStats(uplink_messages=1, downlink_objects=10))
        total.merge(CommunicationStats(downlink_messages=2, downlink_objects=5))
        assert total.uplink_messages == 1
        assert total.downlink_messages == 2
        assert total.downlink_objects == 15

    def test_snapshot_is_independent(self):
        live = CommunicationStats(uplink_messages=1)
        frozen = live.snapshot()
        live.uplink_messages += 5
        assert frozen.uplink_messages == 1
