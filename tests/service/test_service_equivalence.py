"""Service-vs-direct-server equivalence.

The service layer is a pure facade: driving the same scenario through
:class:`~repro.service.session.Session` handles and through raw
:class:`~repro.core.server.MovingKNNServer` /
:class:`~repro.core.road_server.MovingRoadKNNServer` calls must yield
*identical* answers and *identical*
:class:`~repro.core.stats.CommunicationStats` — on both metrics.  The
accounting lives in the engine, so any drift between the two surfaces
(an extra exchange, a missed payload) fails here.
"""

import random

import pytest

from repro.core.road_server import MovingRoadKNNServer
from repro.core.server import MovingKNNServer
from repro.geometry.point import Point
from repro.roadnet.generators import grid_network, place_objects
from repro.service import KNNService, UpdateBatch
from repro.trajectory.road import network_random_walk
from repro.workloads.datasets import data_space, uniform_points
from repro.trajectory.euclidean import random_waypoint_trajectory

STEPS = 10
QUERIES = 3
K = 3
RHO = 1.6


def euclidean_workload(seed=21):
    """(initial points, per-query trajectories, scripted update batches)."""
    rng = random.Random(seed)
    points = uniform_points(120, seed=seed)
    trajectories = [
        random_waypoint_trajectory(
            data_space(), steps=STEPS, step_length=400.0, seed=seed + i
        )
        for i in range(QUERIES)
    ]
    batches = {
        step: UpdateBatch(
            inserts=tuple(
                Point(rng.uniform(0.0, 10_000.0), rng.uniform(0.0, 10_000.0))
                for _ in range(2)
            ),
            deletes=(step,),
            moves=((step + 20, Point(rng.uniform(0.0, 10_000.0), rng.uniform(0.0, 10_000.0))),),
        )
        for step in range(2, STEPS, 3)
    }
    return points, trajectories, batches


def road_workload(seed=22):
    rng = random.Random(seed)
    network = grid_network(8, 8, spacing=50.0)
    objects = place_objects(network, 24, seed=seed)
    trajectories = [
        network_random_walk(network, steps=STEPS, step_length=60.0, seed=seed + i)
        for i in range(QUERIES)
    ]
    vertices = network.vertices()
    batches = {
        step: UpdateBatch(
            inserts=(rng.choice(vertices),),
            deletes=(step,),
            moves=((step + 10, rng.choice(vertices)),),
        )
        for step in range(2, STEPS, 3)
    }
    return network, objects, trajectories, batches


def drive_sessions(service, trajectories, batches):
    """The new surface: session handles + typed messages, closed at the end."""
    answers = []
    sessions = [
        service.open_session(trajectory[0], k=K, rho=RHO)
        for trajectory in trajectories
    ]
    for step in range(1, STEPS):
        if step in batches:
            service.apply(batches[step])
        for session, trajectory in zip(sessions, trajectories):
            response = session.update(trajectory[step])
            answers.append((response.knn, response.knn_distances))
    for session in sessions:
        session.close()
    return answers


def drive_raw_euclidean(server, trajectories, batches):
    """The old surface: raw query ids against the server, by hand."""
    answers = []
    query_ids = [
        server.register_query(trajectory[0], k=K, rho=RHO)
        for trajectory in trajectories
    ]
    for step in range(1, STEPS):
        if step in batches:
            batch = batches[step]
            # The documented Euclidean decomposition of a move.
            server.batch_update(
                inserts=tuple(batch.inserts)
                + tuple(position for _, position in batch.moves),
                deletes=tuple(batch.deletes) + tuple(index for index, _ in batch.moves),
            )
        for query_id, trajectory in zip(query_ids, trajectories):
            result = server.update_position(query_id, trajectory[step])
            answers.append((result.knn, result.knn_distances))
    for query_id in query_ids:
        server.unregister_query(query_id)
    return answers


def drive_raw_road(server, trajectories, batches):
    answers = []
    query_ids = [
        server.register_query(trajectory[0], k=K, rho=RHO)
        for trajectory in trajectories
    ]
    for step in range(1, STEPS):
        if step in batches:
            batch = batches[step]
            server.batch_update(
                inserts=batch.inserts, deletes=batch.deletes, moves=batch.moves
            )
        for query_id, trajectory in zip(query_ids, trajectories):
            result = server.update_position(query_id, trajectory[step])
            answers.append((result.knn, result.knn_distances))
    for query_id in query_ids:
        server.unregister_query(query_id)
    return answers


class TestServiceVsDirectServer:
    @pytest.mark.parametrize("invalidation", ["delta", "flag"])
    def test_euclidean_answers_and_communication_identical(self, invalidation):
        points, trajectories, batches = euclidean_workload()
        service = KNNService(MovingKNNServer(points, invalidation=invalidation))
        session_answers = drive_sessions(service, trajectories, batches)

        raw_server = MovingKNNServer(points, invalidation=invalidation)
        raw_answers = drive_raw_euclidean(raw_server, trajectories, batches)

        assert session_answers == raw_answers
        assert (
            service.communication.as_dict() == raw_server.communication.as_dict()
        )
        assert service.communication.messages > 0
        assert service.communication.objects_transmitted > 0

    @pytest.mark.parametrize("invalidation", ["delta", "flag"])
    def test_road_answers_and_communication_identical(self, invalidation):
        network, objects, trajectories, batches = road_workload()
        service = KNNService(
            MovingRoadKNNServer(network, objects, invalidation=invalidation)
        )
        session_answers = drive_sessions(service, trajectories, batches)

        raw_server = MovingRoadKNNServer(network, objects, invalidation=invalidation)
        raw_answers = drive_raw_road(raw_server, trajectories, batches)

        assert session_answers == raw_answers
        assert (
            service.communication.as_dict() == raw_server.communication.as_dict()
        )
        assert service.communication.messages > 0

    def test_per_session_counters_sum_into_the_run_total(self):
        points, trajectories, batches = euclidean_workload()
        service = KNNService(MovingKNNServer(points))
        sessions = [
            service.open_session(trajectory[0], k=K, rho=RHO)
            for trajectory in trajectories
        ]
        for step in range(1, STEPS):
            if step in batches:
                service.apply(batches[step])
            for session, trajectory in zip(sessions, trajectories):
                session.update(trajectory[step])
        total = service.communication
        per_session = service.per_session_communication()
        epochs = len(batches)
        assert sum(c.uplink_messages for c in per_session.values()) == (
            total.uplink_messages - epochs  # the update stream is unattributed
        )
        assert sum(c.downlink_objects for c in per_session.values()) == (
            total.downlink_objects
        )
        assert sum(c.uplink_objects for c in per_session.values()) == 0
