"""Tests for repro.simulation.simulator."""

import pytest

from repro.core.ins_euclidean import INSProcessor
from repro.baselines.naive import NaiveProcessor
from repro.geometry.point import Point
from repro.simulation.simulator import check_knn_answer, simulate
from repro.trajectory.euclidean import random_waypoint_trajectory
from repro.workloads.datasets import data_space, uniform_points


@pytest.fixture(scope="module")
def dataset():
    return uniform_points(200, extent=1_000.0, seed=230)


@pytest.fixture(scope="module")
def trajectory():
    return random_waypoint_trajectory(data_space(1_000.0), steps=40, step_length=25.0, seed=231)


def oracle_for(points):
    return lambda q: {i: q.distance_to(p) for i, p in enumerate(points)}


class TestCheckKnnAnswer:
    def test_accepts_exact_answer(self):
        distances = {0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0}
        assert check_knn_answer([0, 1], distances, k=2)

    def test_rejects_wrong_member(self):
        distances = {0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0}
        assert not check_knn_answer([0, 3], distances, k=2)

    def test_rejects_wrong_cardinality(self):
        distances = {0: 1.0, 1: 2.0, 2: 3.0}
        assert not check_knn_answer([0], distances, k=2)
        assert not check_knn_answer([0, 0], distances, k=2)

    def test_accepts_tied_alternatives(self):
        distances = {0: 1.0, 1: 2.0, 2: 2.0, 3: 5.0}
        assert check_knn_answer([0, 1], distances, k=2)
        assert check_knn_answer([0, 2], distances, k=2)
        assert not check_knn_answer([1, 2], distances, k=2)

    def test_rejects_missing_strictly_closer_object(self):
        distances = {0: 1.0, 1: 1.5, 2: 3.0}
        assert not check_knn_answer([0, 2], distances, k=2)


class TestSimulate:
    def test_empty_trajectory_raises(self, dataset):
        with pytest.raises(ValueError):
            simulate(NaiveProcessor(dataset, k=3), [])

    def test_result_stream_length(self, dataset, trajectory):
        run = simulate(NaiveProcessor(dataset, k=3), trajectory)
        assert run.timestamps == len(trajectory)
        assert [r.timestamp for r in run.results] == list(range(len(trajectory)))

    def test_oracle_detects_no_mismatch_for_correct_processor(self, dataset, trajectory):
        run = simulate(INSProcessor(dataset, k=4), trajectory, oracle=oracle_for(dataset))
        assert run.is_correct
        assert run.mismatches == []

    def test_oracle_detects_broken_processor(self, dataset, trajectory):
        class BrokenProcessor(NaiveProcessor):
            """Reports the k *farthest* objects instead of the nearest."""

            def _compute(self, position):
                result = super()._compute(position)
                order = sorted(
                    range(len(self._points)),
                    key=lambda i: position.distance_to(self._points[i]),
                    reverse=True,
                )
                wrong = tuple(order[: self.k])
                return type(result)(
                    timestamp=result.timestamp,
                    knn=wrong,
                    knn_distances=tuple(
                        position.distance_to(self._points[i]) for i in wrong
                    ),
                    guard_objects=result.guard_objects,
                    action=result.action,
                    was_valid=result.was_valid,
                )

        run = simulate(BrokenProcessor(dataset, k=3), trajectory, oracle=oracle_for(dataset))
        assert not run.is_correct
        assert len(run.mismatches) == len(trajectory)

    def test_knn_changes_and_invalid_counts(self, dataset, trajectory):
        run = simulate(INSProcessor(dataset, k=4), trajectory)
        assert 0 <= run.knn_changes <= run.timestamps - 1
        assert 0 <= run.invalid_timestamps <= run.timestamps - 1
        # A change in the reported set implies the stored answer was invalid
        # at that timestamp, so changes can never exceed invalid timestamps.
        assert run.knn_changes <= run.invalid_timestamps

    def test_stats_are_the_processors(self, dataset, trajectory):
        processor = INSProcessor(dataset, k=4)
        run = simulate(processor, trajectory)
        assert run.stats is processor.stats
        assert run.elapsed_seconds > 0.0
