"""Tests for repro.simulation.experiment."""

import pytest

from repro.simulation.experiment import (
    EUCLIDEAN_METHODS,
    ROAD_METHODS,
    run_euclidean_comparison,
    run_road_comparison,
)
from repro.workloads.scenarios import default_euclidean_scenario, default_road_scenario


@pytest.fixture(scope="module")
def small_euclidean_scenario():
    return default_euclidean_scenario(object_count=250, k=4, steps=60, step_length=25.0, seed=250)


@pytest.fixture(scope="module")
def small_road_scenario():
    return default_road_scenario(
        rows=6, columns=6, object_count=14, k=3, steps=50, step_length=25.0, seed=251
    )


class TestEuclideanComparison:
    def test_all_methods_run_and_are_correct(self, small_euclidean_scenario):
        result = run_euclidean_comparison(small_euclidean_scenario, check_correctness=True)
        assert {m.method for m in result.methods} == set(EUCLIDEAN_METHODS)
        assert all(m.summary.correct for m in result.methods)

    def test_naive_recomputes_every_timestamp(self, small_euclidean_scenario):
        result = run_euclidean_comparison(
            small_euclidean_scenario, methods=("Naive",), check_correctness=False
        )
        naive = result.method("Naive").summary
        assert naive.full_recomputations == small_euclidean_scenario.timestamps

    def test_ins_beats_naive_on_recomputations(self, small_euclidean_scenario):
        result = run_euclidean_comparison(
            small_euclidean_scenario, methods=("INS", "Naive"), check_correctness=False
        )
        ins = result.method("INS").summary
        naive = result.method("Naive").summary
        assert ins.full_recomputations < naive.full_recomputations

    def test_summary_rows_include_parameters(self, small_euclidean_scenario):
        result = run_euclidean_comparison(
            small_euclidean_scenario, methods=("INS",), check_correctness=False
        )
        rows = result.summary_rows()
        assert len(rows) == 1
        assert rows[0]["k"] == small_euclidean_scenario.k
        assert rows[0]["n"] == len(small_euclidean_scenario.points)
        assert rows[0]["method"] == "INS"

    def test_unknown_method_raises(self, small_euclidean_scenario):
        with pytest.raises(ValueError):
            run_euclidean_comparison(small_euclidean_scenario, methods=("Bogus",))

    def test_method_lookup_raises_for_missing(self, small_euclidean_scenario):
        result = run_euclidean_comparison(
            small_euclidean_scenario, methods=("INS",), check_correctness=False
        )
        with pytest.raises(KeyError):
            result.method("Naive")


class TestRoadComparison:
    def test_all_methods_run_and_are_correct(self, small_road_scenario):
        result = run_road_comparison(small_road_scenario, check_correctness=True)
        assert {m.method for m in result.methods} == set(ROAD_METHODS)
        assert all(m.summary.correct for m in result.methods)

    def test_ins_road_beats_naive_on_recomputations(self, small_road_scenario):
        result = run_road_comparison(
            small_road_scenario, methods=("INS-road", "Naive-road"), check_correctness=False
        )
        ins = result.method("INS-road").summary
        naive = result.method("Naive-road").summary
        assert ins.full_recomputations < naive.full_recomputations

    def test_unknown_method_raises(self, small_road_scenario):
        with pytest.raises(ValueError):
            run_road_comparison(small_road_scenario, methods=("Bogus",))
