"""Tests for repro.simulation.metrics."""

import pytest

from repro.core.ins_euclidean import INSProcessor
from repro.simulation.metrics import summarize, summarize_many
from repro.simulation.simulator import simulate
from repro.trajectory.euclidean import random_waypoint_trajectory
from repro.workloads.datasets import data_space, uniform_points


@pytest.fixture(scope="module")
def finished_run():
    points = uniform_points(150, extent=1_000.0, seed=240)
    trajectory = random_waypoint_trajectory(
        data_space(1_000.0), steps=30, step_length=30.0, seed=241
    )
    return simulate(INSProcessor(points, k=3), trajectory)


class TestSummarize:
    def test_summary_reflects_run(self, finished_run):
        summary = summarize(finished_run)
        assert summary.method == "INS"
        assert summary.timestamps == finished_run.timestamps
        assert summary.full_recomputations == finished_run.stats.full_recomputations
        assert summary.correct  # no oracle -> correct by definition

    def test_derived_rates(self, finished_run):
        summary = summarize(finished_run)
        assert summary.recomputation_rate == pytest.approx(
            summary.full_recomputations / summary.timestamps
        )
        assert summary.communication_per_timestamp == pytest.approx(
            summary.transmitted_objects / summary.timestamps
        )

    def test_as_dict_round_trips_key_fields(self, finished_run):
        summary = summarize(finished_run)
        row = summary.as_dict()
        assert row["method"] == "INS"
        assert row["timestamps"] == summary.timestamps
        assert row["recomputations"] == summary.full_recomputations
        assert "precompute_s" in row

    def test_summarize_many_preserves_order(self, finished_run):
        summaries = summarize_many([finished_run, finished_run])
        assert len(summaries) == 2
        assert all(s.method == "INS" for s in summaries)
