"""Tests for repro.simulation.report."""

from repro.simulation.report import format_csv, format_table


ROWS = [
    {"method": "INS", "k": 5, "rate": 0.125},
    {"method": "Naive", "k": 5, "rate": 1.0},
]


class TestFormatTable:
    def test_contains_header_and_rows(self):
        table = format_table(ROWS)
        assert "method" in table.splitlines()[0]
        assert any("INS" in line for line in table.splitlines())
        assert any("Naive" in line for line in table.splitlines())

    def test_title_is_prepended(self):
        table = format_table(ROWS, title="experiment E1")
        assert table.splitlines()[0] == "experiment E1"

    def test_column_selection_and_order(self):
        table = format_table(ROWS, columns=["rate", "method"])
        header = table.splitlines()[0]
        assert header.index("rate") < header.index("method")
        assert "k" not in header.split()

    def test_missing_values_render_empty(self):
        table = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert table  # must not raise

    def test_empty_rows(self):
        assert format_table([]) == ""
        assert format_table([], title="nothing") == "nothing"

    def test_float_rendering(self):
        table = format_table([{"value": 0.000123}, {"value": 1234.5}, {"value": 0.0}])
        assert "0.00012" in table
        assert "1234.5" in table


class TestFormatCsv:
    def test_header_and_rows(self):
        csv_text = format_csv(ROWS)
        lines = csv_text.splitlines()
        assert lines[0] == "method,k,rate"
        assert lines[1].startswith("INS,5,")
        assert len(lines) == 3

    def test_empty(self):
        assert format_csv([]) == ""
