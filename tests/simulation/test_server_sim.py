"""Tests for repro.simulation.server_sim (the multi-query server driver)."""

import pytest

from repro.core.road_server import MovingRoadKNNServer
from repro.core.server import MovingKNNServer
from repro.simulation.server_sim import build_server, simulate_server
from repro.workloads.scenarios import (
    ChurnSpec,
    euclidean_server_scenario,
    road_server_scenario,
)


@pytest.fixture(scope="module")
def euclidean_scenario():
    return euclidean_server_scenario(
        queries=4, object_count=150, k=3, steps=18, churn="high", extent=1_000.0, seed=3
    )


@pytest.fixture(scope="module")
def road_scenario():
    return road_server_scenario(
        queries=3, rows=7, columns=7, object_count=16, k=3, steps=14, churn="low", seed=5
    )


class TestBuildServer:
    def test_builds_the_matching_server(self, euclidean_scenario, road_scenario):
        assert isinstance(build_server(euclidean_scenario), MovingKNNServer)
        assert isinstance(build_server(road_scenario), MovingRoadKNNServer)

    def test_invalidation_mode_is_forwarded(self, euclidean_scenario):
        server = build_server(euclidean_scenario, invalidation="flag")
        assert server.invalidation == "flag"

    def test_supplied_server_must_match_the_requested_run(self, euclidean_scenario):
        from repro.errors import ConfigurationError
        from repro.geometry.point import Point

        mismatched = build_server(euclidean_scenario, invalidation="delta")
        with pytest.raises(ConfigurationError):
            simulate_server(euclidean_scenario, invalidation="flag", server=mismatched)
        wrong_maintenance = build_server(euclidean_scenario, maintenance="rebuild")
        with pytest.raises(ConfigurationError):
            simulate_server(euclidean_scenario, server=wrong_maintenance)
        occupied = build_server(euclidean_scenario)
        occupied.register_query(Point(100.0, 100.0), k=3)
        with pytest.raises(ConfigurationError):
            simulate_server(euclidean_scenario, server=occupied)


class TestSimulateServer:
    def test_every_query_stream_is_advanced(self, euclidean_scenario):
        run = simulate_server(euclidean_scenario, check_answers=True)
        assert run.is_correct
        assert len(run.results) == euclidean_scenario.query_count
        for stream in run.results.values():
            assert len(stream) == euclidean_scenario.timestamps - 1
        # Per-query k follows the scenario's ks.
        for stream, k in zip(run.results.values(), euclidean_scenario.ks):
            assert all(result.k == k for result in stream)

    def test_update_stream_applies_churn_as_epochs(self, euclidean_scenario):
        run = simulate_server(euclidean_scenario)
        churn = euclidean_scenario.churn
        expected_epochs = (euclidean_scenario.timestamps - 1) // churn.interval
        assert run.epochs == expected_epochs
        assert run.update_counts["inserts"] == expected_epochs * churn.inserts
        assert run.update_counts["moves"] > 0
        assert run.aggregate.timestamps > 0

    def test_no_churn_means_no_epochs(self):
        scenario = euclidean_server_scenario(
            queries=2, object_count=80, k=3, steps=8, churn="none", extent=1_000.0, seed=7
        )
        run = simulate_server(scenario, check_answers=True)
        assert run.is_correct
        assert run.epochs == 0
        assert run.update_counts == {"inserts": 0, "deletes": 0, "moves": 0}

    def test_road_scenario_runs_correctly(self, road_scenario):
        run = simulate_server(road_scenario, check_answers=True)
        assert run.is_correct
        assert run.epochs > 0
        assert len(run.results) == road_scenario.query_count

    def test_population_never_starves_registered_queries(self):
        # Aggressive deletion churn against a small population: the driver
        # must clamp deletes to the population floor instead of tripping
        # the engine's population guard.
        scenario = euclidean_server_scenario(
            queries=2,
            object_count=12,
            k=4,
            steps=20,
            churn=ChurnSpec(interval=1, inserts=0, deletes=4, moves=0),
            extent=1_000.0,
            seed=11,
        )
        run = simulate_server(scenario, check_answers=True)
        assert run.is_correct
