"""Timing hygiene: one clock seam, no wall-clock time in hot paths.

Two rules, enforced by grepping the source tree so they can never rot:

* ``time.time()`` is banned everywhere in ``src/repro`` — it is a
  wall-clock subject to NTP steps, so a latency measured with it can go
  negative; every duration must come from the monotonic seam.
* ``time.perf_counter`` may appear **only** in ``repro/obs/clock.py``,
  the injectable clock seam.  Every other module must time through
  :func:`repro.obs.clock.clock` (directly or via
  :func:`repro.obs.metrics.start_timer`), so tests can script time and
  the obs-off path can skip clock reads entirely.

``time.monotonic`` / ``time.sleep`` stay allowed: deadlines and pacing
are not measurements.
"""

import pathlib
import re

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
CLOCK_SEAM = SRC_ROOT / "obs" / "clock.py"


def _source_files():
    files = sorted(SRC_ROOT.rglob("*.py"))
    assert files, f"no sources under {SRC_ROOT}"
    return files


def _offending_lines(path, pattern):
    offenders = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        code = line.split("#", 1)[0]  # comments may discuss the ban
        if re.search(pattern, code):
            offenders.append(f"{path.relative_to(SRC_ROOT.parent)}:{number}: {line.strip()}")
    return offenders


class TestTimingHygiene:
    def test_no_wall_clock_time_anywhere(self):
        offenders = []
        for path in _source_files():
            if path == CLOCK_SEAM:
                continue  # its docstring documents this very ban
            offenders += _offending_lines(path, r"\btime\.time\s*\(")
        assert not offenders, (
            "wall-clock time.time() found (use the repro.obs.clock seam):\n"
            + "\n".join(offenders)
        )

    def test_perf_counter_only_inside_the_clock_seam(self):
        offenders = []
        for path in _source_files():
            if path == CLOCK_SEAM:
                continue
            offenders += _offending_lines(path, r"perf_counter")
        assert not offenders, (
            "perf_counter outside repro/obs/clock.py bypasses the clock "
            "seam (import repro.obs.clock.clock instead):\n"
            + "\n".join(offenders)
        )

    def test_the_seam_itself_uses_perf_counter(self):
        assert "perf_counter" in CLOCK_SEAM.read_text()
