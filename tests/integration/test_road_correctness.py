"""End-to-end correctness of every road-network method on full simulations."""

import pytest

from repro.roadnet.generators import (
    grid_network,
    place_objects,
    random_planar_network,
    ring_radial_network,
)
from repro.simulation.experiment import run_road_comparison
from repro.trajectory.road import network_random_walk
from repro.workloads.scenarios import RoadScenario, default_road_scenario


def build_scenario(network, object_count, k, steps, step_length, seed):
    objects = place_objects(network, object_count, seed=seed)
    trajectory = network_random_walk(network, steps=steps, step_length=step_length, seed=seed + 1)
    return RoadScenario(
        name="integration",
        network=network,
        object_vertices=objects,
        trajectory=trajectory,
        k=k,
        rho=1.6,
        step_length=step_length,
    )


@pytest.fixture(scope="module")
def grid_result():
    scenario = default_road_scenario(
        rows=10, columns=10, object_count=30, k=5, steps=120, step_length=30.0, seed=310
    )
    return scenario, run_road_comparison(scenario, check_correctness=True)


class TestAllMethodsCorrect:
    def test_grid_network_all_methods_correct(self, grid_result):
        _, result = grid_result
        for method in result.methods:
            assert method.summary.correct, f"{method.method} produced a wrong answer"

    def test_random_planar_network_all_methods_correct(self):
        network = random_planar_network(80, extent=1_000.0, seed=311)
        scenario = build_scenario(network, object_count=20, k=4, steps=80, step_length=25.0, seed=312)
        result = run_road_comparison(scenario, check_correctness=True)
        assert all(m.summary.correct for m in result.methods)

    def test_ring_radial_network_all_methods_correct(self):
        network = ring_radial_network(4, 10, ring_spacing=80.0)
        scenario = build_scenario(network, object_count=15, k=3, steps=80, step_length=20.0, seed=313)
        result = run_road_comparison(scenario, check_correctness=True)
        assert all(m.summary.correct for m in result.methods)

    def test_exact_validation_mode_also_correct(self):
        scenario = default_road_scenario(
            rows=8, columns=8, object_count=20, k=4, steps=80, step_length=25.0, seed=314
        )
        result = run_road_comparison(
            scenario,
            methods=("INS-road",),
            check_correctness=True,
            ins_validation_mode="exact",
        )
        assert result.methods[0].summary.correct


class TestExpectedCostRelationships:
    def test_naive_recomputes_every_timestamp(self, grid_result):
        scenario, result = grid_result
        naive = result.method("Naive-road").summary
        assert naive.full_recomputations == scenario.timestamps

    def test_ins_road_recomputes_least(self, grid_result):
        _, result = grid_result
        ins = result.method("INS-road").summary
        for method in result.methods:
            if method.method != "INS-road":
                assert ins.full_recomputations <= method.summary.full_recomputations

    def test_ins_road_communicates_least(self, grid_result):
        """The paper's motivation: minimising kNN recomputations minimises
        client/server communication, which is the critical cost in LBS.  The
        naive method ships an answer every timestamp; INS only on the rare
        recomputations."""
        _, result = grid_result
        ins = result.method("INS-road").summary
        naive = result.method("Naive-road").summary
        vstar = result.method("V*-road").summary
        assert ins.communication_events < naive.communication_events
        assert ins.communication_events <= vstar.communication_events
