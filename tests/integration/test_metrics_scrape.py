"""End-to-end scrape drill: boot ``insq serve`` with live endpoints.

A real ``python -m repro.cli serve`` subprocess hosts a process-sharded
run with ``--metrics-port`` (Prometheus over HTTP) and ``--stats-port``
(the binary ``insq stats`` listener) mounted, slowed with
``--step-delay`` so the endpoints are observably *live mid-stream*, and
kept up with ``--linger`` so a final scrape sees the completed totals.

The test scrapes continuously while the workload runs, then reconciles
the **last** successful scrape — taken during the linger window, after
the step loop finished — against the communication bill the server
prints on exit.  The two come from the same live counters, so they must
agree to the digit; any drift means the scrape path double-bills or the
snapshot frame drops a field.
"""

import os
import re
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

SERVE_ARGS = [
    "serve",
    "--transport", "process",
    "--workers", "2",
    "--queries", "3",
    "--n", "120",
    "--k", "3",
    "--steps", "12",
    "--metrics-port", "0",
    "--stats-port", "0",
    "--step-delay", "0.2",
    "--linger", "3.0",
]

METRICS_LINE = re.compile(r"metrics endpoint\s*: (http://[\d.]+:\d+/metrics)")
STATS_LINE = re.compile(r"stats endpoint\s*: ([\d.]+:\d+)")
BILL_LINE = re.compile(r"(uplink|downlink)\s+(messages|objects)\s*: (\d+)")


def _spawn_serve():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [env.get("PYTHONPATH"), os.path.join(REPO_ROOT, "src")])
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *SERVE_ARGS],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _drain(stream, lines, endpoints, ready):
    for line in stream:
        lines.append(line)
        match = METRICS_LINE.search(line)
        if match:
            endpoints["metrics"] = match.group(1)
        match = STATS_LINE.search(line)
        if match:
            endpoints["stats"] = match.group(1)
        if "metrics" in endpoints and "stats" in endpoints:
            ready.set()
    ready.set()  # stream closed — unblock the waiter either way


def _scrape(url):
    with urllib.request.urlopen(url, timeout=2.0) as response:
        return response.read().decode("utf-8")


def _gauge(body, name):
    """The unlabelled sample for ``name`` in a Prometheus exposition."""
    match = re.search(rf"^{re.escape(name)} ([0-9.e+-]+)$", body, re.MULTILINE)
    assert match, f"{name} missing from scrape:\n{body[:2000]}"
    return float(match.group(1))


class TestLiveScrape:
    def test_scrape_mid_stream_and_reconcile_with_the_printed_bill(self):
        server = _spawn_serve()
        lines, endpoints, ready = [], {}, threading.Event()
        reader = threading.Thread(
            target=_drain, args=(server.stdout, lines, endpoints, ready), daemon=True
        )
        reader.start()
        stats_result = None
        try:
            assert ready.wait(timeout=60.0), "endpoints never announced:\n" + "".join(lines)
            assert "metrics" in endpoints and "stats" in endpoints, "".join(lines)

            mid_stream_body = None
            last_body = None
            while server.poll() is None:
                try:
                    body = _scrape(endpoints["metrics"])
                except (urllib.error.URLError, OSError):
                    break  # linger expired, endpoint torn down
                last_body = body
                if mid_stream_body is None:
                    mid_stream_body = body
                    # While the workload is still streaming, exercise the
                    # binary protocol the same way `insq stats` does.
                    stats_result = subprocess.run(
                        [sys.executable, "-m", "repro.cli", "stats", endpoints["stats"]],
                        env=dict(
                            os.environ,
                            PYTHONPATH=os.pathsep.join(
                                filter(
                                    None,
                                    [
                                        os.environ.get("PYTHONPATH"),
                                        os.path.join(REPO_ROOT, "src"),
                                    ],
                                )
                            ),
                        ),
                        capture_output=True,
                        text=True,
                        timeout=60.0,
                    )
                time.sleep(0.05)
            assert server.wait(timeout=120.0) == 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()
        reader.join(timeout=10.0)
        output = "".join(lines)

        # The HTTP endpoint was live mid-stream and spoke Prometheus.
        assert mid_stream_body is not None, output
        assert "# TYPE insq_comm_uplink_messages gauge" in mid_stream_body
        assert "insq_engine_epoch" in mid_stream_body

        # The binary listener answered `insq stats` mid-stream too.
        assert stats_result is not None and stats_result.returncode == 0, (
            stats_result and stats_result.stdout + stats_result.stderr
        )
        assert "counters" in stats_result.stdout
        assert "insq_engine_epoch" in stats_result.stdout
        assert re.search(r"insq_comm_uplink_messages\{kind=", stats_result.stdout)

        # The last scrape landed in the linger window, after the step
        # loop finished — its gauges are the run's final totals, and the
        # server then printed the very same counters as its bill.
        assert last_body is not None
        bill = {
            f"{direction}_{unit}": int(value)
            for direction, unit, value in BILL_LINE.findall(output)
        }
        assert bill, "communication bill missing from output:\n" + output
        for field in (
            "uplink_messages",
            "uplink_objects",
            "downlink_messages",
            "downlink_objects",
        ):
            assert _gauge(last_body, f"insq_comm_{field}") == bill[field], (
                f"{field}: scrape disagrees with the printed bill\n{output}"
            )

        # Per-shard labels prove the scrape merged both worker processes.
        assert re.search(r'insq_\w+\{[^}]*shard="0"', last_body)
        assert re.search(r'insq_\w+\{[^}]*shard="1"', last_body)
