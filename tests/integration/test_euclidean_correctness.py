"""End-to-end correctness of every Euclidean method on full simulations.

Every processor is driven along shared trajectories and every single
reported answer is cross-checked against a brute-force oracle.  These are
the tests that establish the headline claim of the reproduction: INS answers
MkNN queries exactly, while recomputing far less often than the baselines
that must recompute every timestamp.
"""

import pytest

from repro.simulation.experiment import run_euclidean_comparison
from repro.simulation.report import format_table
from repro.workloads.scenarios import (
    EuclideanScenario,
    default_euclidean_scenario,
    fig4_scenario,
)
from repro.trajectory.euclidean import circular_trajectory, linear_trajectory
from repro.geometry.point import Point
from repro.workloads.datasets import clustered_points, uniform_points


@pytest.fixture(scope="module")
def uniform_result():
    scenario = default_euclidean_scenario(
        object_count=400, k=5, rho=1.6, steps=120, step_length=30.0, seed=300
    )
    return scenario, run_euclidean_comparison(scenario, check_correctness=True)


class TestAllMethodsCorrect:
    def test_every_method_answers_exactly(self, uniform_result):
        _, result = uniform_result
        for method in result.methods:
            assert method.summary.correct, f"{method.method} produced a wrong answer"

    def test_fig4_scenario_all_methods_correct(self):
        scenario = fig4_scenario()
        result = run_euclidean_comparison(scenario, check_correctness=True)
        assert all(m.summary.correct for m in result.methods)

    def test_clustered_data_all_methods_correct(self):
        points = clustered_points(400, clusters=6, extent=2_000.0, seed=301)
        base = default_euclidean_scenario(object_count=10, steps=80, step_length=25.0, seed=302)
        scenario = EuclideanScenario(
            name="clustered",
            points=points,
            trajectory=[p.scaled(2.0) for p in base.trajectory],
            k=6,
            rho=1.6,
            step_length=50.0,
        )
        result = run_euclidean_comparison(scenario, check_correctness=True)
        assert all(m.summary.correct for m in result.methods)

    def test_linear_and_circular_trajectories(self):
        points = uniform_points(350, extent=1_000.0, seed=303)
        for name, trajectory in [
            ("linear", linear_trajectory(Point(50, 500), Point(950, 520), steps=150)),
            ("circular", circular_trajectory(Point(500, 500), radius=350.0, steps=150)),
        ]:
            scenario = EuclideanScenario(
                name=name,
                points=points,
                trajectory=trajectory,
                k=4,
                rho=1.6,
                step_length=trajectory[0].distance_to(trajectory[1]),
            )
            result = run_euclidean_comparison(scenario, check_correctness=True)
            assert all(m.summary.correct for m in result.methods), name


class TestExpectedCostRelationships:
    """The qualitative 'shape' claims of the paper's evaluation."""

    def test_naive_recomputes_most(self, uniform_result):
        scenario, result = uniform_result
        naive = result.method("Naive").summary
        assert naive.full_recomputations == scenario.timestamps
        for method in result.methods:
            if method.method != "Naive":
                assert method.summary.full_recomputations < naive.full_recomputations

    def test_ins_matches_or_beats_strict_safe_region_on_communication_events(
        self, uniform_result
    ):
        """INS's implicit safe region is the order-k cell, so its server
        round trips cannot exceed the strict safe-region baseline's by more
        than the prefetch effect allows — in practice they are fewer."""
        _, result = uniform_result
        ins = result.method("INS").summary
        strict = result.method("OrderK-SR").summary
        assert ins.full_recomputations <= strict.full_recomputations

    def test_vstar_recomputes_at_least_as_often_as_ins(self, uniform_result):
        _, result = uniform_result
        ins = result.method("INS").summary
        vstar = result.method("V*").summary
        assert vstar.full_recomputations >= ins.full_recomputations

    def test_ins_validation_work_is_modest(self, uniform_result):
        """Per-timestamp client work of INS is a handful of distance
        computations (linear in the held set), far below recomputing kNN."""
        scenario, result = uniform_result
        ins = result.method("INS").summary
        per_timestamp = ins.distance_computations / scenario.timestamps
        assert per_timestamp < 10 * scenario.k

    def test_report_table_renders(self, uniform_result):
        _, result = uniform_result
        table = format_table(result.summary_rows())
        assert "INS" in table and "Naive" in table
