"""Property-based tests for the road-network substrate (hypothesis)."""

import math

import networkx as nx
from hypothesis import assume, given, settings, strategies as st

from repro.roadnet.generators import grid_network, place_objects, random_planar_network
from repro.roadnet.knn import network_knn
from repro.roadnet.location import NetworkLocation
from repro.roadnet.network_voronoi import NetworkVoronoiDiagram
from repro.roadnet.shortest_path import dijkstra, distances_from_location


def to_networkx(network):
    graph = nx.Graph()
    for vertex in network.vertices():
        graph.add_node(vertex)
    for edge in network.edges():
        if graph.has_edge(edge.u, edge.v):
            graph[edge.u][edge.v]["weight"] = min(graph[edge.u][edge.v]["weight"], edge.length)
        else:
            graph.add_edge(edge.u, edge.v, weight=edge.length)
    return graph


network_strategy = st.builds(
    random_planar_network,
    vertex_count=st.integers(min_value=8, max_value=35),
    extent=st.just(500.0),
    removal_fraction=st.floats(min_value=0.0, max_value=0.4),
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestShortestPathProperties:
    @given(network_strategy, st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=25, deadline=None)
    def test_dijkstra_matches_networkx(self, network, source_pick):
        vertices = network.vertices()
        source = vertices[source_pick % len(vertices)]
        reference = nx.single_source_dijkstra_path_length(to_networkx(network), source)
        computed = dijkstra(network, source)
        assert computed.keys() == reference.keys()
        for vertex, distance in reference.items():
            assert math.isclose(computed[vertex], distance, rel_tol=1e-9, abs_tol=1e-9)

    @given(network_strategy, st.integers(min_value=0, max_value=1_000_000), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_location_distances_satisfy_triangle_inequality(self, network, edge_pick, fraction):
        edges = network.edges()
        edge = edges[edge_pick % len(edges)]
        location = NetworkLocation(edge.edge_id, edge.length * fraction)
        distances = distances_from_location(network, location)
        # Distance to each endpoint must not exceed the direct along-edge distance.
        assert distances[edge.u] <= edge.length * fraction + 1e-9
        assert distances[edge.v] <= edge.length * (1.0 - fraction) + 1e-9
        # Adjacent vertices differ by at most the connecting edge length.
        for e in edges:
            if e.u in distances and e.v in distances:
                assert abs(distances[e.u] - distances[e.v]) <= e.length + 1e-9


class TestNetworkKNNProperties:
    @given(
        network_strategy,
        st.integers(min_value=0, max_value=1_000_000),
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_knn_distances_match_full_dijkstra(self, network, edge_pick, fraction, k, object_seed):
        object_count = min(8, network.vertex_count - 1)
        assume(object_count >= k)
        objects = place_objects(network, object_count, seed=object_seed)
        edges = network.edges()
        edge = edges[edge_pick % len(edges)]
        location = NetworkLocation(edge.edge_id, edge.length * fraction)
        result = network_knn(network, objects, location, k)
        vertex_distances = distances_from_location(network, location)
        expected = sorted(
            vertex_distances.get(vertex, math.inf) for vertex in objects
        )[:k]
        got = [distance for _, distance in result]
        for g, e in zip(got, expected):
            assert math.isclose(g, e, rel_tol=1e-9, abs_tol=1e-9)


class TestNetworkVoronoiProperties:
    @given(network_strategy, st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_vertex_owners_minimize_distance(self, network, object_seed, object_count):
        object_count = min(object_count, network.vertex_count - 1)
        assume(object_count >= 2)
        objects = place_objects(network, object_count, seed=object_seed)
        diagram = NetworkVoronoiDiagram(network, objects)
        per_object = [dijkstra(network, vertex) for vertex in objects]
        for vertex in network.vertices():
            best = min(per_object[i].get(vertex, math.inf) for i in range(object_count))
            assert math.isclose(diagram.vertex_distance(vertex), best, rel_tol=1e-9, abs_tol=1e-9)

    @given(network_strategy, st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_neighbor_map_symmetry_and_cell_length_conservation(
        self, network, object_seed, object_count
    ):
        object_count = min(object_count, network.vertex_count - 1)
        assume(object_count >= 2)
        objects = place_objects(network, object_count, seed=object_seed)
        diagram = NetworkVoronoiDiagram(network, objects)
        neighbor_map = diagram.neighbor_map()
        for index, neighbors in neighbor_map.items():
            for other in neighbors:
                assert index in neighbor_map[other]
        total = sum(diagram.cell_length(i) for i in range(object_count))
        assert math.isclose(total, network.total_length, rel_tol=1e-9)
