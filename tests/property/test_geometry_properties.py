"""Property-based tests for the geometric substrate (hypothesis)."""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.geometry.delaunay import delaunay_neighbors
from repro.geometry.order_k import knn_indexes, order_k_cell
from repro.geometry.point import Point, midpoint
from repro.geometry.polygon import ConvexPolygon, HalfPlane, bisector_halfplane
from repro.geometry.primitives import BoundingBox
from repro.geometry.voronoi import VoronoiDiagram, influential_neighbor_indexes

coordinates = st.floats(min_value=-1_000.0, max_value=1_000.0, allow_nan=False, allow_infinity=False)
points_strategy = st.builds(Point, coordinates, coordinates)


def distinct_points(min_size, max_size):
    return st.lists(
        points_strategy, min_size=min_size, max_size=max_size, unique_by=lambda p: (round(p.x, 6), round(p.y, 6))
    )


def well_separated(points, minimum_gap=1e-2):
    """True when no two points are closer than ``minimum_gap``.

    Near-coincident sites make Voronoi adjacency numerically ambiguous, which
    is a property of floating-point geometry rather than of the algorithms
    under test, so the structural properties only assume well-separated input.
    """
    for i, p in enumerate(points):
        for q in points[i + 1 :]:
            if p.distance_to(q) < minimum_gap:
                return False
    return True


class TestBisectorProperties:
    @given(points_strategy, points_strategy, points_strategy)
    @settings(max_examples=80, deadline=None)
    def test_bisector_halfplane_matches_distance_comparison(self, keep, discard, probe):
        assume(keep.distance_to(discard) > 1e-6)
        halfplane = bisector_halfplane(keep, discard)
        closer_to_keep = probe.distance_to(keep) <= probe.distance_to(discard)
        # Allow boundary slack proportional to the configuration scale.
        if abs(probe.distance_to(keep) - probe.distance_to(discard)) > 1e-6:
            assert halfplane.contains(probe) == closer_to_keep

    @given(points_strategy, points_strategy)
    @settings(max_examples=50, deadline=None)
    def test_bisector_boundary_passes_through_midpoint(self, keep, discard):
        assume(keep.distance_to(discard) > 1e-6)
        halfplane = bisector_halfplane(keep, discard)
        middle = midpoint(keep, discard)
        assert abs(halfplane.evaluate(middle)) <= 1e-6 * max(
            1.0, abs(halfplane.a), abs(halfplane.b), abs(halfplane.c)
        )


class TestClippingProperties:
    @given(distinct_points(3, 8), st.data())
    @settings(max_examples=50, deadline=None)
    def test_clipping_never_grows_the_polygon(self, points, data):
        hull = ConvexPolygon.convex_hull(points)
        assume(not hull.is_degenerate)
        keep = data.draw(points_strategy)
        discard = data.draw(points_strategy)
        assume(keep.distance_to(discard) > 1e-6)
        clipped = hull.clip_halfplane(bisector_halfplane(keep, discard))
        assert clipped.area <= hull.area + 1e-6

    @given(distinct_points(3, 8))
    @settings(max_examples=50, deadline=None)
    def test_hull_contains_all_input_points(self, points):
        hull = ConvexPolygon.convex_hull(points)
        assume(not hull.is_degenerate)
        for p in points:
            assert hull.contains(p, tolerance=1e-6)

    @given(distinct_points(3, 8), points_strategy)
    @settings(max_examples=50, deadline=None)
    def test_clip_result_satisfies_halfplane(self, points, direction):
        hull = ConvexPolygon.convex_hull(points)
        assume(not hull.is_degenerate)
        assume(abs(direction.x) + abs(direction.y) > 1e-6)
        halfplane = HalfPlane(direction.x, direction.y, 10.0)
        clipped = hull.clip_halfplane(halfplane)
        for vertex in clipped.vertices:
            assert halfplane.contains(vertex, tolerance=1e-6)


class TestVoronoiProperties:
    @given(distinct_points(4, 25))
    @settings(max_examples=30, deadline=None)
    def test_neighbor_relation_is_symmetric_and_irreflexive(self, points):
        neighbors = delaunay_neighbors(points, backend="builtin")
        for index, adjacent in neighbors.items():
            assert index not in adjacent
            for other in adjacent:
                assert index in neighbors[other]

    @given(distinct_points(4, 20), points_strategy)
    @settings(max_examples=30, deadline=None)
    def test_nearest_site_cell_contains_query(self, points, query):
        assume(well_separated(points))
        diagram = VoronoiDiagram(points)
        assume(diagram.bounding_box.contains_point(query))
        owner = diagram.nearest_site(query)
        assert diagram.cell(owner).contains(query, tolerance=1e-6)


class TestOrderKProperties:
    """Structural order-k properties over randomly generated configurations.

    The point sets come from the workload generator (seeded by hypothesis)
    rather than from raw adversarial floats: the order-k construction and the
    jittered Delaunay triangulation both use approximate predicates, so
    exactly- or nearly-degenerate inputs (many collinear sites) can make the
    two disagree at the tolerance level — a property of floating-point
    geometry, not of the INS/MIS relationship under test.
    """

    @given(
        st.integers(min_value=8, max_value=60),
        st.integers(min_value=0, max_value=100_000),
        st.floats(min_value=100.0, max_value=900.0),
        st.floats(min_value=100.0, max_value=900.0),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_mis_is_subset_of_ins(self, count, seed, qx, qy, k):
        from repro.workloads.datasets import uniform_points

        points = uniform_points(count, extent=1_000.0, seed=seed)
        assume(k < count)
        query = Point(qx, qy)
        members = knn_indexes(points, query, k)
        cell = order_k_cell(points, members, reference=query)
        diagram = VoronoiDiagram(points)
        ins = influential_neighbor_indexes(diagram.neighbor_map(), members)
        assert set(cell.mis_indexes) <= ins

    @given(
        st.integers(min_value=8, max_value=60),
        st.integers(min_value=0, max_value=100_000),
        st.floats(min_value=100.0, max_value=900.0),
        st.floats(min_value=100.0, max_value=900.0),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_query_lies_in_its_own_order_k_cell(self, count, seed, qx, qy, k):
        from repro.workloads.datasets import uniform_points

        points = uniform_points(count, extent=1_000.0, seed=seed)
        assume(k < count)
        query = Point(qx, qy)
        # Exclude queries that sit exactly on a cell boundary.
        distances = sorted(query.distance_to(p) for p in points)
        assume(distances[k] - distances[k - 1] > 1e-6)
        members = knn_indexes(points, query, k)
        cell = order_k_cell(points, members, reference=query)
        assert cell.contains(query, tolerance=1e-6)
