"""Property-based tests for the INS core invariants (hypothesis)."""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.core.influential import (
    influential_neighbor_set_from_points,
    is_closer_set,
    verify_influential_set,
)
from repro.core.ins_euclidean import INSProcessor
from repro.geometry.order_k import knn_indexes
from repro.geometry.point import Point
from repro.workloads.datasets import uniform_points

coordinates = st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False, allow_infinity=False)
points_strategy = st.builds(Point, coordinates, coordinates)


class TestINSIsInfluentialSet:
    @given(
        st.integers(min_value=20, max_value=60),
        st.integers(min_value=0, max_value=10_000),
        points_strategy,
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_ins_guards_the_knn_set(self, count, seed, query, k):
        """Definition 1 equivalence, probed at random positions around q.

        This is the correctness core of the whole paper: the INS of a kNN
        set is an influential set, so the guard comparison is a sound and
        complete validity test.
        """
        points = uniform_points(count, extent=1_000.0, seed=seed)
        assume(k < count)
        members = knn_indexes(points, query, k)
        ins = influential_neighbor_set_from_points(points, members)
        assume(ins)
        probes = [
            Point(query.x + dx, query.y + dy)
            for dx in (-80.0, -20.0, 0.0, 20.0, 80.0)
            for dy in (-80.0, -20.0, 0.0, 20.0, 80.0)
        ]
        assert verify_influential_set(points, members, ins, probes)


class TestProcessorInvariants:
    @given(
        st.integers(min_value=50, max_value=150),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=1.0, max_value=3.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_reported_knn_is_always_the_true_knn(self, count, seed, k, rho, trajectory_seed):
        """Whatever the parameters, every reported answer matches brute force
        (up to distance ties)."""
        points = uniform_points(count, extent=1_000.0, seed=seed)
        assume(k < count)
        from repro.trajectory.euclidean import random_waypoint_trajectory
        from repro.workloads.datasets import data_space

        trajectory = random_waypoint_trajectory(
            data_space(1_000.0), steps=30, step_length=40.0, seed=trajectory_seed
        )
        processor = INSProcessor(points, k=k, rho=rho)
        processor.initialize(trajectory[0])
        for position in trajectory[1:]:
            result = processor.update(position)
            true_kth = sorted(position.distance_to(p) for p in points)[k - 1]
            assert max(result.knn_distances) <= true_kth + 1e-7 * max(true_kth, 1.0)
            assert len(result.knn) == k
            assert len(set(result.knn)) == k

    @given(
        st.integers(min_value=50, max_value=120),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=15, deadline=None)
    def test_guard_set_is_disjoint_and_knn_subset_of_r(self, count, seed, k):
        points = uniform_points(count, extent=1_000.0, seed=seed)
        assume(k < count)
        processor = INSProcessor(points, k=k, rho=2.0)
        query = Point(500.0, 500.0)
        result = processor.initialize(query)
        assert not (result.guard_objects & result.knn_set)
        assert result.knn_set <= set(processor.prefetched_set)
        assert not (processor.influential_set & set(processor.prefetched_set))


class TestIsCloserSetProperties:
    @given(points_strategy, st.lists(points_strategy, min_size=1, max_size=6), st.lists(points_strategy, min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_relation_is_antisymmetric_unless_tied(self, query, first, second):
        forward = is_closer_set(query, first, second)
        backward = is_closer_set(query, second, first)
        if forward and backward:
            # Both directions can only hold when the boundary distances tie.
            max_first = max(query.distance_to(p) for p in first)
            min_second = min(query.distance_to(p) for p in second)
            assert math.isclose(max_first, min_second, rel_tol=1e-12, abs_tol=1e-12)
