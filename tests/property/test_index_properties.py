"""Property-based tests for the spatial indexes (hypothesis)."""

from hypothesis import assume, given, settings, strategies as st

from repro.geometry.point import Point
from repro.geometry.primitives import BoundingBox
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree, RTreeEntry

coordinates = st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False, allow_infinity=False)
points_strategy = st.builds(Point, coordinates, coordinates)
point_lists = st.lists(
    points_strategy,
    min_size=1,
    max_size=60,
    unique_by=lambda p: (round(p.x, 6), round(p.y, 6)),
)


def brute_knn_distances(points, query, k):
    return sorted(query.distance_to(p) for p in points)[:k]


class TestRTreeProperties:
    @given(point_lists, points_strategy, st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_knn_distances_match_brute_force(self, points, query, k):
        k = min(k, len(points))
        tree = RTree.bulk_load([RTreeEntry(p, i) for i, p in enumerate(points)], max_entries=6)
        got = [d for d, _ in tree.nearest_neighbors(query, k)]
        expected = brute_knn_distances(points, query, k)
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            assert abs(g - e) < 1e-9

    @given(point_lists, st.data())
    @settings(max_examples=40, deadline=None)
    def test_range_search_matches_linear_scan(self, points, data):
        tree = RTree.bulk_load([RTreeEntry(p, i) for i, p in enumerate(points)], max_entries=5)
        x1 = data.draw(coordinates)
        x2 = data.draw(coordinates)
        y1 = data.draw(coordinates)
        y2 = data.draw(coordinates)
        box = BoundingBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        expected = {i for i, p in enumerate(points) if box.contains_point(p)}
        got = {entry.payload for entry in tree.range_search(box)}
        assert got == expected

    @given(point_lists)
    @settings(max_examples=40, deadline=None)
    def test_insert_then_delete_restores_size(self, points):
        tree = RTree(max_entries=5)
        for index, point in enumerate(points):
            tree.insert(point, index)
        assert len(tree) == len(points)
        for index, point in enumerate(points):
            assert tree.delete(point, index)
        assert len(tree) == 0


class TestCrossIndexAgreement:
    @given(point_lists, points_strategy, st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_all_indexes_agree_on_knn_distances(self, points, query, k):
        k = min(k, len(points))
        items = [(p, i) for i, p in enumerate(points)]
        rtree = RTree.bulk_load([RTreeEntry(p, i) for i, p in enumerate(points)])
        kdtree = KDTree(items)
        grid = GridIndex(items, cells_per_axis=8)
        expected = brute_knn_distances(points, query, k)
        rtree_distances = [d for d, _ in rtree.nearest_neighbors(query, k)]
        kdtree_distances = [d for d, _, _ in kdtree.nearest_neighbors(query, k)]
        grid_distances = [d for d, _, _ in grid.nearest_neighbors(query, k)]
        for got in (rtree_distances, kdtree_distances, grid_distances):
            assert len(got) == len(expected)
            for g, e in zip(got, expected):
                assert abs(g - e) < 1e-9
