"""Behavioural tests for the multi-process shard pool."""

import pytest

from repro.errors import ConfigurationError, QueryError
from repro.geometry.point import Point
from repro.service import UpdateBatch, open_service
from repro.transport import ProcessShardedDispatcher, ServiceSpec
from repro.workloads.datasets import uniform_points
from repro.workloads.scenarios import euclidean_server_scenario, road_server_scenario


@pytest.fixture(scope="module")
def spec():
    return ServiceSpec(
        metric="euclidean", objects=tuple(uniform_points(100, seed=11))
    )


class TestServiceSpec:
    def test_from_scenario_both_metrics(self):
        euclidean = ServiceSpec.from_scenario(
            euclidean_server_scenario(queries=2, object_count=50, k=3, steps=5)
        )
        assert euclidean.metric == "euclidean" and euclidean.network is None
        road = ServiceSpec.from_scenario(
            road_server_scenario(queries=2, object_count=10, k=2, steps=5)
        )
        assert road.metric == "road" and road.network is not None

    def test_build_replicates_the_initial_state(self, spec):
        first, second = spec.build(), spec.build()
        assert first.active_object_indexes() == second.active_object_indexes()
        assert first.metric == spec.metric

    def test_batch_payload_mirrors_the_engine_billing(self, spec):
        batch = UpdateBatch(
            inserts=(Point(1, 1),), deletes=(2,), moves=((3, Point(4, 4)),)
        )
        # Euclidean moves decompose into delete + reinsert: 4 records.
        assert spec.batch_payload(batch) == 4
        road = ServiceSpec(metric="road", objects=(0, 1, 2), network=object())
        road_batch = UpdateBatch(inserts=(5,), deletes=(2,), moves=((0, 7),))
        assert road.batch_payload(road_batch) == 3


class TestPoolBehaviour:
    def test_sessions_pin_round_robin(self, spec):
        with ProcessShardedDispatcher(spec, workers=2) as pool:
            sessions = [pool.open_session(Point(i, i), k=3) for i in range(5)]
            assert [session.global_id for session in sessions] == [0, 1, 2, 3, 4]
            workers = [pool._worker_of[id(session)] for session in sessions]
            assert workers == [0, 1, 0, 1, 0]

    def test_advance_preserves_input_order(self, spec):
        with ProcessShardedDispatcher(spec, workers=3) as pool:
            sessions = [pool.open_session(Point(i * 10, 0), k=3) for i in range(6)]
            shuffled = list(reversed(sessions))
            responses = pool.advance(
                [(session, Point(50, 50)) for session in shuffled]
            )
            assert [r.query_id for r in responses] == [
                session.query_id for session in shuffled
            ]
            assert all(len(r.knn) == 3 for r in responses)

    def test_duplicate_session_in_one_dispatch_is_rejected(self, spec):
        with ProcessShardedDispatcher(spec, workers=2) as pool:
            session = pool.open_session(Point(0, 0), k=3)
            with pytest.raises(ConfigurationError, match="twice"):
                pool.advance([(session, Point(1, 1)), (session, Point(2, 2))])

    def test_foreign_session_is_rejected(self, spec):
        service = open_service(metric="euclidean", objects=uniform_points(50, seed=2))
        foreign = service.open_session(Point(0, 0), k=3)
        with ProcessShardedDispatcher(spec, workers=1) as pool:
            with pytest.raises(ConfigurationError, match="not opened"):
                pool.advance([(foreign, Point(1, 1))])

    def test_rejected_batch_raises_everywhere_consistently(self, spec):
        with ProcessShardedDispatcher(spec, workers=2) as pool:
            for i in range(2):
                pool.open_session(Point(i, i), k=3)
            # Deleting every object violates the population guard on every
            # shard identically: the common error is re-raised, nothing is
            # applied, and the shards stay in lockstep.
            doomed = UpdateBatch(deletes=tuple(range(100)))
            with pytest.raises(QueryError):
                pool.apply(doomed)
            assert pool.epoch == 0
            ack = pool.apply(UpdateBatch(inserts=(Point(5, 5),)))
            assert ack.epoch == 1

    def test_per_session_communication_uses_global_ids(self, spec):
        with ProcessShardedDispatcher(spec, workers=2) as pool:
            sessions = [pool.open_session(Point(i, i), k=3) for i in range(4)]
            pool.advance([(s, Point(200, 200)) for s in sessions])
            per_session = pool.per_session_communication()
            assert set(per_session) == {0, 1, 2, 3}
            assert all(stats.messages >= 2 for stats in per_session.values())

    def test_closed_pool_refuses_work(self, spec):
        pool = ProcessShardedDispatcher(spec, workers=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ConfigurationError):
            pool.open_session(Point(0, 0), k=3)
        with pytest.raises(ConfigurationError):
            pool.communication()

    def test_worker_count_must_be_positive(self, spec):
        with pytest.raises(ConfigurationError):
            ProcessShardedDispatcher(spec, workers=0)
