"""Delta replication: one shard maintains the index, the rest get patches.

The PR8 acceptance suite.  With ``replication="delta"`` the process-shard
pool elects worker 0 maintenance leader: it alone re-runs each update
batch's geometry and ships the resulting :class:`IndexDelta` to the read
replicas, which patch their live indexes directly.  The bar is the same
as every transport PR before it — **bit-identical kNN answers** (ids and
distances) and identical message/object communication counters against
the single-engine reference, for both metrics and both invalidation
modes — now additionally under leader kills, replica kills, and leader
drain-and-handoff with WAL replay-to-rejoin.

Byte counters are excluded as ever: the delta frames are real bytes on a
real socket, so a delta run's wire traffic legitimately differs from a
recomputing run's.
"""

import pytest

from repro.errors import ConfigurationError
from repro.simulation.server_sim import simulate_server
from repro.testing import FaultPlan, ShardDrain, WorkerKill
from repro.transport import ServiceSpec
from repro.transport.procpool import ProcessShardedDispatcher

from test_transport_equivalence import assert_equivalent, build_scenario


class TestDeltaEquivalence:
    @pytest.mark.parametrize("metric", ["euclidean", "road"])
    def test_delta_matches_single_engine(self, metric):
        scenario = build_scenario(metric)
        reference = simulate_server(scenario)
        delta = simulate_server(
            scenario, transport="process", workers=3, replication="delta"
        )
        assert_equivalent(reference, delta)
        assert delta.replication == "delta"
        # The split is structural, not a timing comparison: replicas spent
        # time patching, and only the leader ran real maintenance.
        assert delta.aggregate.delta_apply_seconds > 0
        assert reference.aggregate.delta_apply_seconds == 0

    @pytest.mark.parametrize("invalidation", ["delta", "flag"])
    def test_both_invalidation_modes_ship_deltas_identically(self, invalidation):
        scenario = build_scenario("euclidean")
        recomputed = simulate_server(
            scenario, invalidation=invalidation, transport="process", workers=2
        )
        shipped = simulate_server(
            scenario,
            invalidation=invalidation,
            transport="process",
            workers=2,
            replication="delta",
        )
        assert_equivalent(recomputed, shipped)

    def test_single_worker_delta_degenerates_to_recompute(self):
        """One shard has nobody to ship to — the modes must coincide fully."""
        scenario = build_scenario("euclidean")
        recomputed = simulate_server(scenario, transport="process", workers=1)
        shipped = simulate_server(
            scenario, transport="process", workers=1, replication="delta"
        )
        assert_equivalent(recomputed, shipped)
        # Same frames on the same wire: even the byte counters agree.
        assert (
            shipped.communication.bytes_transmitted
            == recomputed.communication.bytes_transmitted
        )
        assert shipped.aggregate.delta_apply_seconds == 0

    def test_run_records_replication_mode(self):
        scenario = build_scenario("euclidean")
        assert simulate_server(scenario).replication == "recompute"
        assert (
            simulate_server(scenario, transport="process", workers=2).replication
            == "recompute"
        )

    def test_delta_requires_process_transport(self):
        scenario = build_scenario("euclidean")
        with pytest.raises(ConfigurationError):
            simulate_server(scenario, replication="delta")
        with pytest.raises(ConfigurationError):
            simulate_server(scenario, transport="tcp", replication="delta")

    def test_dispatcher_rejects_unknown_replication(self):
        scenario = build_scenario("euclidean")
        with pytest.raises(ConfigurationError):
            ProcessShardedDispatcher(
                ServiceSpec.from_scenario(scenario),
                workers=2,
                replication="broadcast",
            )


class TestLeaderFaults:
    """Killing or draining the maintenance leader must not cost an answer."""

    def run_with_faults(self, metric, plan, tmp_path, workers=3):
        scenario = build_scenario(metric)
        fault_free = simulate_server(
            scenario, transport="process", workers=workers, replication="delta"
        )
        faulty = simulate_server(
            scenario,
            transport="process",
            workers=workers,
            replication="delta",
            wal_dir=str(tmp_path / "state"),
            faults=plan,
        )
        assert faulty.kills_injected == plan.kill_count
        assert faulty.respawns >= plan.kill_count
        assert_equivalent(fault_free, faulty)
        return faulty

    @pytest.mark.parametrize("phase", ["before_batch", "after_batch"])
    def test_leader_kill_each_phase(self, tmp_path, phase):
        plan = FaultPlan(kills=(WorkerKill(epoch=2, worker=0, phase=phase),))
        self.run_with_faults("euclidean", plan, tmp_path)

    def test_replica_kill_replays_logged_deltas(self, tmp_path):
        """A rejoining replica replays IndexDelta frames, not update batches."""
        plan = FaultPlan(
            kills=(
                WorkerKill(epoch=1, worker=1, phase="after_batch"),
                WorkerKill(epoch=3, worker=2, phase="before_batch"),
            )
        )
        self.run_with_faults("euclidean", plan, tmp_path)

    def test_leader_drain_hands_off_delta_export(self, tmp_path):
        """The drained leader's replacement keeps exporting deltas."""
        plan = FaultPlan(
            kills=(WorkerKill(epoch=1, worker=0, phase="after_batch"),),
            drains=(ShardDrain(epoch=3, worker=0),),
        )
        faulty = self.run_with_faults("euclidean", plan, tmp_path)
        assert faulty.drains == 1

    def test_road_leader_kill(self, tmp_path):
        plan = FaultPlan(kills=(WorkerKill(epoch=2, worker=0, phase="after_batch"),))
        self.run_with_faults("road", plan, tmp_path, workers=2)
