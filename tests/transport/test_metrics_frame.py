"""The ``MetricsRequest``/``MetricsSnapshot`` wire frames and endpoints.

Hypothesis drives the codec contracts (round trip, exact ``wire_size``,
robustness to truncation); the endpoint tests check that a live service's
scrape frame carries gauges that reconcile *exactly* with the
communication bill the server itself prints, that scraping is meta
(never billed) and idempotent (safe to retry), and that the standalone
:class:`~repro.transport.server.MetricsListener` answers scrapes — and
only scrapes — over the binary protocol.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TransportError
from repro.geometry.primitives import Point
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import BUCKET_COUNT, merge_snapshots
from repro.service import open_service
from repro.transport.client import _IDEMPOTENT_TYPES, _META_TYPES, connect
from repro.transport.codec import (
    ErrorMessage,
    MetricsRequest,
    MetricsSnapshot,
    StatsRequest,
    decode,
    encode,
    wire_size,
)
from repro.transport.server import KNNServer, MetricsListener, metrics_snapshot_frame

label_pairs = st.lists(
    st.tuples(
        st.text(alphabet="abcdefghijk_", min_size=1, max_size=8),
        st.text(alphabet="abcdefghijk0123456789_", min_size=1, max_size=8),
    ),
    max_size=3,
    unique_by=lambda pair: pair[0],
)
labels = label_pairs.map(
    lambda pairs: ",".join(f"{k}={v}" for k, v in sorted(pairs))
)
names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=24)
u64 = st.integers(min_value=0, max_value=2**64 - 1)
sums = st.floats(allow_nan=False, allow_infinity=False, width=64)

snapshots = st.builds(
    MetricsSnapshot,
    counters=st.lists(st.tuples(names, labels, u64), max_size=6).map(tuple),
    gauges=st.lists(st.tuples(names, labels, sums), max_size=6).map(tuple),
    histograms=st.lists(
        st.tuples(
            names,
            labels,
            st.lists(u64, max_size=BUCKET_COUNT + 4).map(tuple),
            sums,
        ),
        max_size=4,
    ).map(tuple),
)


class TestMetricsFrameCodec:
    @settings(max_examples=150, deadline=None)
    @given(message=snapshots)
    def test_snapshot_round_trip(self, message):
        assert decode(encode(message)) == message

    @settings(max_examples=150, deadline=None)
    @given(message=snapshots)
    def test_snapshot_wire_size_is_exact(self, message):
        assert wire_size(message) == len(encode(message))

    def test_request_round_trip_and_size(self):
        message = MetricsRequest()
        assert decode(encode(message)) == message
        assert wire_size(message) == len(encode(message))

    @settings(max_examples=40, deadline=None)
    @given(message=snapshots, cut=st.integers(min_value=1, max_value=64))
    def test_truncation_raises_transport_error(self, message, cut):
        encoded = encode(message)
        clipped = encoded[: max(0, len(encoded) - cut)]
        if not clipped:
            return
        with pytest.raises(TransportError):
            decode(clipped)

    def test_garbage_body_raises_transport_error(self):
        encoded = bytearray(encode(MetricsSnapshot(counters=(("a", "", 1),))))
        # Claim a million counters in a tiny frame.
        encoded[5:9] = (1_000_000).to_bytes(4, "big")
        with pytest.raises(TransportError):
            decode(bytes(encoded))

    def test_scrape_frames_are_meta_and_idempotent(self):
        # Meta: a scrape must never perturb the communication bill it
        # reads.  Idempotent: the client may blindly resend it on timeout.
        assert MetricsRequest in _META_TYPES
        assert MetricsSnapshot in _META_TYPES
        assert MetricsRequest in _IDEMPOTENT_TYPES

    @settings(max_examples=40, deadline=None)
    @given(message=snapshots)
    def test_decoded_frames_merge_like_registry_snapshots(self, message):
        """The wire frame duck-types into merge_snapshots unchanged."""
        merged = merge_snapshots([decode(encode(message))])
        assert set(merged.counters) == {
            (name, label, value)
            for name, label, value in _summed(message.counters)
        }


def _summed(counters):
    totals = {}
    for name, label, value in counters:
        totals[(name, label)] = totals.get((name, label), 0) + value
    return [(name, label, value) for (name, label), value in totals.items()]


@pytest.fixture
def euclidean_service():
    points = [
        Point(float(x) * 10.0, float(y) * 10.0) for x in range(6) for y in range(6)
    ]
    return open_service(metric="euclidean", objects=points)


class TestSnapshotFrame:
    def test_comm_gauges_reconcile_with_the_live_bill(self, euclidean_service):
        obs_metrics.enable()
        service = euclidean_service
        with service.open_session(Point(1.0, 2.0), k=3) as session:
            session.update(Point(3.0, 4.0))
            frame = metrics_snapshot_frame(service)
            comm = service.communication.snapshot()
            by_kind = {
                kind: stats.snapshot()
                for kind, stats in service.engine.communication_by_kind().items()
            }
        gauges = {
            (name, label): value for name, label, value in frame.gauges
        }
        assert gauges[("insq_comm_uplink_messages", "")] == comm.uplink_messages
        assert gauges[("insq_comm_downlink_objects", "")] == comm.downlink_objects
        assert gauges[("insq_engine_epoch", "")] == service.epoch
        assert gauges[("insq_sessions_open", "")] == 1.0
        for kind, stats in by_kind.items():
            assert (
                gauges[("insq_comm_uplink_messages", f"kind={kind}")]
                == stats.uplink_messages
            )

    def test_scraping_does_not_bill(self, euclidean_service):
        service = euclidean_service
        with KNNServer(service).start() as server:
            with connect(server.address) as remote:
                before = service.communication.snapshot()
                first = remote.metrics_snapshot()
                second = remote.metrics_snapshot()
                after = service.communication.snapshot()
        assert isinstance(first, MetricsSnapshot)
        assert isinstance(second, MetricsSnapshot)
        # Two scrapes crossed the wire, zero messages were billed.
        assert after.uplink_messages == before.uplink_messages
        assert after.downlink_messages == before.downlink_messages
        assert after.uplink_bytes == before.uplink_bytes


class TestMetricsListener:
    def test_listener_answers_scrapes(self, euclidean_service):
        provider = lambda: metrics_snapshot_frame(euclidean_service)
        with MetricsListener(provider) as listener:
            with connect(listener.address) as remote:
                snapshot = remote.metrics_snapshot()
        assert isinstance(snapshot, MetricsSnapshot)
        assert any(name == "insq_engine_epoch" for name, _, _ in snapshot.gauges)

    def test_listener_rejects_non_scrape_frames(self, euclidean_service):
        import socket

        from repro.transport.codec import FrameReader

        provider = lambda: metrics_snapshot_frame(euclidean_service)
        with MetricsListener(provider) as listener:
            with socket.create_connection(listener.address) as sock:
                sock.sendall(encode(StatsRequest()))
                reader = FrameReader()
                response = None
                while response is None:
                    chunk = sock.recv(65536)
                    assert chunk, "listener closed without replying"
                    for message, _ in reader.feed(chunk):
                        response = message
        assert isinstance(response, ErrorMessage)
