"""Transport equivalence: the wire adds bytes, never answers or exchanges.

The PR5 acceptance suite.  For both metrics and both invalidation modes,
the same server scenario is driven

* in-process (the PR4 session surface),
* over a loopback socket transport (``transport="tcp"``; ``"unix"`` is
  spot-checked separately), and
* across multi-process engine shards (``transport="process"``) at several
  worker counts,

and every run must report **bit-identical kNN answers** (ids *and*
distances) and **identical message/object communication counters**, per
session and in aggregate.  Byte counters are transport-specific by design
(in-process exchanges ship no bytes; a broadcast crosses every shard
boundary) and are asserted for presence, not equality.
"""

import pytest

from repro.simulation.server_sim import simulate_server
from repro.workloads.scenarios import (
    ChurnSpec,
    euclidean_server_scenario,
    road_server_scenario,
)

#: Small but non-trivial: every churn kind fires, several epochs, mixed k.
EUCLIDEAN = dict(
    churn=ChurnSpec(interval=2, inserts=1, deletes=1, moves=1),
    queries=4,
    object_count=150,
    k=3,
    steps=10,
    seed=29,
)
ROAD = dict(
    churn=ChurnSpec(interval=2, inserts=1, deletes=1, moves=1),
    queries=3,
    object_count=20,
    k=3,
    steps=8,
    seed=31,
)

COUNTER_FIELDS = (
    "uplink_messages",
    "uplink_objects",
    "downlink_messages",
    "downlink_objects",
)


def build_scenario(metric):
    if metric == "euclidean":
        return euclidean_server_scenario(**EUCLIDEAN)
    return road_server_scenario(**ROAD)


def answer_streams(run):
    """Every reported answer, in a bit-comparable canonical form."""
    return {
        query_id: [(result.knn, result.knn_distances) for result in stream]
        for query_id, stream in run.results.items()
    }


def message_object_counters(stats):
    return {field: getattr(stats, field) for field in COUNTER_FIELDS}


def assert_equivalent(reference, other):
    assert answer_streams(other) == answer_streams(reference)
    assert message_object_counters(other.communication) == message_object_counters(
        reference.communication
    )
    assert other.epochs == reference.epochs
    assert other.update_counts == reference.update_counts
    # The per-session breakdown agrees too, session by session.
    assert set(other.per_session_communication) == set(
        reference.per_session_communication
    )
    for query_id, comm in reference.per_session_communication.items():
        assert message_object_counters(
            other.per_session_communication[query_id]
        ) == message_object_counters(comm), f"session {query_id}"


class TestLoopbackEquivalence:
    @pytest.mark.parametrize("metric", ["euclidean", "road"])
    @pytest.mark.parametrize("invalidation", ["delta", "flag"])
    def test_tcp_matches_in_process(self, metric, invalidation):
        scenario = build_scenario(metric)
        reference = simulate_server(
            scenario, invalidation=invalidation, check_answers=True
        )
        assert reference.is_correct
        over_tcp = simulate_server(
            scenario, invalidation=invalidation, transport="tcp", check_answers=True
        )
        assert over_tcp.is_correct
        assert_equivalent(reference, over_tcp)
        assert reference.communication.bytes_transmitted == 0
        assert over_tcp.communication.bytes_transmitted > 0

    def test_unix_socket_matches_too(self):
        scenario = build_scenario("euclidean")
        reference = simulate_server(scenario)
        over_unix = simulate_server(scenario, transport="unix")
        assert_equivalent(reference, over_unix)

    def test_loopback_run_reports_its_transport(self):
        scenario = build_scenario("euclidean")
        assert simulate_server(scenario).transport == "local"
        assert simulate_server(scenario, transport="tcp").transport == "tcp"


class TestProcessShardEquivalence:
    @pytest.mark.parametrize("metric", ["euclidean", "road"])
    def test_deterministic_across_worker_counts(self, metric):
        scenario = build_scenario(metric)
        reference = simulate_server(scenario)
        runs = {
            workers: simulate_server(scenario, transport="process", workers=workers)
            for workers in (1, 2, 3)
        }
        for workers, run in runs.items():
            assert_equivalent(reference, run), f"workers={workers}"
            assert run.workers == workers
            assert run.transport == "process"

    @pytest.mark.parametrize("invalidation", ["delta", "flag"])
    def test_both_invalidation_modes_shard_identically(self, invalidation):
        scenario = build_scenario("euclidean")
        reference = simulate_server(scenario, invalidation=invalidation)
        sharded = simulate_server(
            scenario, invalidation=invalidation, transport="process", workers=2
        )
        assert_equivalent(reference, sharded)

    def test_broadcast_bytes_grow_with_workers_but_counters_do_not(self):
        """The dedup is honest: messages/objects identical, bytes real."""
        scenario = build_scenario("euclidean")
        one = simulate_server(scenario, transport="process", workers=1)
        three = simulate_server(scenario, transport="process", workers=3)
        assert message_object_counters(one.communication) == message_object_counters(
            three.communication
        )
        assert three.communication.bytes_transmitted > (
            one.communication.bytes_transmitted
        )
