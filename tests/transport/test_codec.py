"""Property-based tests for the binary wire codec (hypothesis).

The codec's three contracts, each tested over randomized messages:

* **round trip** — ``decode(encode(m)) == m`` for every message kind,
  both metrics' position/target shapes included;
* **exact size prediction** — ``len(encode(m)) == wire_size(m)``, the
  reconciliation contract the PR5 benchmark builds on;
* **robust framing** — a :class:`FrameReader` fed arbitrary split points
  reproduces the message stream exactly (partial and concatenated frames),
  and malformed input raises the typed
  :class:`~repro.errors.TransportError`, never a bare ``struct.error``.
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryError, ReproError, TransportError
from repro.core.objects import QueryResult, UpdateAction
from repro.core.stats import CommunicationStats, ProcessorStats
from repro.geometry.point import Point
from repro.roadnet.location import NetworkLocation
from repro.queries.influential import InfluentialResult
from repro.queries.messages import InfluentialResponse, OpenQuery, RegionEvent
from repro.queries.region import RegionResult
from repro.service.messages import KNNResponse, PositionUpdate, UpdateBatch
from repro.transport.codec import (
    AggregateStatsRequest,
    AggregateStatsResponse,
    BatchApplied,
    CloseSession,
    DeltaAck,
    DrainAck,
    DrainRequest,
    IndexDelta,
    ErrorMessage,
    FrameReader,
    LENGTH_PREFIX_BYTES,
    ObjectsRequest,
    ObjectsResponse,
    OpenSession,
    RefreshRequest,
    SessionClosed,
    SessionOpened,
    StatsRequest,
    StatsResponse,
    decode,
    encode,
    wire_size,
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
coordinates = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coordinates, coordinates)
road_locations = st.builds(
    NetworkLocation,
    st.integers(min_value=0, max_value=2**32 - 1),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
positions = st.one_of(points, road_locations)
object_indexes = st.integers(min_value=0, max_value=2**32 - 1)
targets = st.one_of(points, object_indexes)

query_results = st.builds(
    QueryResult,
    timestamp=st.integers(min_value=0, max_value=2**31 - 1),
    knn=st.lists(object_indexes, max_size=16).map(tuple),
    knn_distances=st.lists(
        st.floats(min_value=0.0, max_value=1e12, allow_nan=False), max_size=16
    ).map(tuple),
    guard_objects=st.frozensets(object_indexes, max_size=24),
    action=st.sampled_from(list(UpdateAction)),
    was_valid=st.booleans(),
).map(
    # knn and knn_distances must have equal length to round-trip (the
    # wire ships one count for both, like every real QueryResult).
    lambda r: QueryResult(
        timestamp=r.timestamp,
        knn=r.knn[: min(len(r.knn), len(r.knn_distances))],
        knn_distances=r.knn_distances[: min(len(r.knn), len(r.knn_distances))],
        guard_objects=r.guard_objects,
        action=r.action,
        was_valid=r.was_valid,
    )
)

knn_responses = st.builds(
    KNNResponse,
    query_id=st.integers(min_value=0, max_value=2**31 - 1),
    result=query_results,
    objects_shipped=st.integers(min_value=0, max_value=2**32 - 1),
    round_trips=st.integers(min_value=0, max_value=2**32 - 1),
    epoch=st.integers(min_value=0, max_value=2**32 - 1),
)

influential_results = st.tuples(
    query_results, st.lists(object_indexes, max_size=12).map(tuple)
).map(
    lambda pair: InfluentialResult(
        timestamp=pair[0].timestamp,
        knn=pair[0].knn,
        knn_distances=pair[0].knn_distances,
        guard_objects=pair[0].guard_objects,
        action=pair[0].action,
        was_valid=pair[0].was_valid,
        sites=pair[1],
    )
)

region_results = st.tuples(
    query_results,
    st.sampled_from(["stay", "enter"]),
    st.lists(object_indexes, max_size=12).map(tuple),
).map(
    lambda triple: RegionResult(
        timestamp=triple[0].timestamp,
        knn=triple[0].knn,
        knn_distances=triple[0].knn_distances,
        guard_objects=triple[0].guard_objects,
        action=triple[0].action,
        was_valid=triple[0].was_valid,
        event=triple[1],
        departed=triple[2],
    )
)

influential_responses = st.builds(
    InfluentialResponse,
    query_id=st.integers(min_value=0, max_value=2**31 - 1),
    result=influential_results,
    objects_shipped=st.integers(min_value=0, max_value=2**32 - 1),
    round_trips=st.integers(min_value=0, max_value=2**32 - 1),
    epoch=st.integers(min_value=0, max_value=2**32 - 1),
)

region_events = st.builds(
    RegionEvent,
    query_id=st.integers(min_value=0, max_value=2**31 - 1),
    result=region_results,
    objects_shipped=st.integers(min_value=0, max_value=2**32 - 1),
    round_trips=st.integers(min_value=0, max_value=2**32 - 1),
    epoch=st.integers(min_value=0, max_value=2**32 - 1),
)

position_updates = st.builds(
    PositionUpdate,
    query_id=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1)),
    position=positions,
)

update_batches = st.builds(
    UpdateBatch,
    inserts=st.lists(targets, max_size=8).map(tuple),
    deletes=st.lists(object_indexes, max_size=8).map(tuple),
    moves=st.lists(st.tuples(object_indexes, targets), max_size=8).map(tuple),
)

option_strings = st.text(max_size=20)
comm_stats = st.builds(
    CommunicationStats,
    uplink_messages=st.integers(min_value=0, max_value=2**63 - 1),
    uplink_objects=st.integers(min_value=0, max_value=2**63 - 1),
    downlink_messages=st.integers(min_value=0, max_value=2**63 - 1),
    downlink_objects=st.integers(min_value=0, max_value=2**63 - 1),
    uplink_bytes=st.integers(min_value=0, max_value=2**63 - 1),
    downlink_bytes=st.integers(min_value=0, max_value=2**63 - 1),
)

distances = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)
index_lists = st.lists(object_indexes, max_size=6).map(tuple)
counted_groups = st.tuples(object_indexes, index_lists)
index_deltas = st.builds(
    IndexDelta,
    epoch=st.integers(min_value=0, max_value=2**32 - 1),
    payload=st.integers(min_value=0, max_value=2**32 - 1),
    full=st.booleans(),
    bulk=st.booleans(),
    new_indexes=index_lists,
    deleted_indexes=index_lists,
    changed=index_lists,
    points=st.lists(points, max_size=6).map(tuple),
    neighbors=st.lists(counted_groups, max_size=5).map(tuple),
    removed_neighbors=index_lists,
    assignments=st.lists(
        st.tuples(object_indexes, object_indexes), max_size=5
    ).map(tuple),
    groups=st.lists(counted_groups, max_size=5).map(tuple),
    removed_groups=index_lists,
    vertices=st.lists(
        st.tuples(object_indexes, object_indexes, distances), max_size=5
    ).map(tuple),
    removed_vertices=index_lists,
    edges=st.lists(
        st.tuples(
            object_indexes,
            object_indexes,
            object_indexes,
            st.one_of(st.none(), distances),
        ),
        max_size=5,
    ).map(tuple),
    removed_edges=index_lists,
    labels=st.lists(
        st.tuples(object_indexes, index_lists, index_lists, index_lists),
        max_size=4,
    ).map(tuple),
    removed_labels=index_lists,
)

control_messages = st.one_of(
    st.builds(
        OpenSession,
        position=positions,
        k=st.integers(min_value=1, max_value=1000),
        rho=st.floats(min_value=1.0, max_value=10.0, allow_nan=False),
        options=st.lists(
            st.tuples(option_strings, option_strings), max_size=3
        ).map(tuple),
    ),
    st.builds(SessionOpened, query_id=st.integers(min_value=0, max_value=2**31 - 1)),
    st.builds(CloseSession, query_id=st.integers(min_value=0, max_value=2**31 - 1)),
    st.builds(SessionClosed, query_id=st.integers(min_value=0, max_value=2**31 - 1)),
    st.builds(RefreshRequest, query_id=st.integers(min_value=0, max_value=2**31 - 1)),
    st.builds(
        BatchApplied,
        epoch=st.integers(min_value=0, max_value=2**32 - 1),
        new_indexes=st.lists(object_indexes, max_size=8).map(tuple),
        deleted_indexes=st.lists(object_indexes, max_size=8).map(tuple),
    ),
    st.builds(
        ErrorMessage,
        kind=st.sampled_from(["query", "configuration", "transport", "error"]),
        message=st.text(max_size=200),
    ),
    st.builds(StatsRequest, per_session=st.booleans()),
    st.builds(
        StatsResponse,
        aggregate=comm_stats,
        per_session=st.lists(
            st.tuples(st.integers(min_value=0, max_value=2**31 - 1), comm_stats),
            max_size=4,
        ).map(tuple),
    ),
    st.just(ObjectsRequest()),
    st.builds(
        ObjectsResponse,
        epoch=st.integers(min_value=0, max_value=2**32 - 1),
        indexes=st.lists(object_indexes, max_size=32).map(tuple),
    ),
    st.just(AggregateStatsRequest()),
    st.just(DrainRequest()),
    index_deltas,
    st.builds(DeltaAck, epoch=st.integers(min_value=0, max_value=2**32 - 1)),
    st.builds(
        DrainAck,
        wal_seq=st.integers(min_value=0, max_value=2**63 - 1),
        session_ids=st.lists(
            st.integers(min_value=0, max_value=2**31 - 1), max_size=8
        ).map(tuple),
    ),
    st.builds(
        AggregateStatsResponse,
        stats=st.builds(
            ProcessorStats,
            timestamps=st.integers(min_value=0, max_value=2**32 - 1),
            full_recomputations=st.integers(min_value=0, max_value=2**32 - 1),
            transmitted_objects=st.integers(min_value=0, max_value=2**32 - 1),
            construction_seconds=st.floats(
                min_value=0.0, max_value=1e6, allow_nan=False
            ),
        ),
    ),
)

open_queries = st.builds(
    OpenQuery,
    kind=st.sampled_from(["knn", "influential", "region", "future-kind"]),
    position=positions,
    k=st.integers(min_value=1, max_value=1000),
    rho=st.floats(min_value=1.0, max_value=10.0, allow_nan=False),
    options=st.lists(st.tuples(option_strings, option_strings), max_size=3).map(tuple),
)

all_messages = st.one_of(
    position_updates,
    knn_responses,
    influential_responses,
    region_events,
    open_queries,
    update_batches,
    control_messages,
)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(message=all_messages)
    def test_decode_encode_is_identity(self, message):
        assert decode(encode(message)) == message

    @settings(max_examples=200, deadline=None)
    @given(message=all_messages)
    def test_wire_size_is_exact(self, message):
        assert len(encode(message)) == wire_size(message)

    def test_hot_message_is_compact(self):
        """The headline frame stays small: no pickle, no tag soup."""
        update = PositionUpdate(query_id=3, position=Point(1234.5, 678.9))
        assert wire_size(update) == 26  # 4 len + 1 type + 4 id + 1 tag + 16 coords

    def test_widened_responses_round_trip_to_their_own_classes(self):
        """Same shared fields, three distinct frame types — the decoder
        must resurrect the exact response class, not the base KNNResponse."""
        base = QueryResult(3, (1, 2), (0.5, 1.5), frozenset((9,)), UpdateAction.NONE, True)
        influential = InfluentialResponse(
            query_id=1,
            result=InfluentialResult(
                timestamp=3, knn=(1, 2), knn_distances=(0.5, 1.5),
                guard_objects=frozenset((9,)), action=UpdateAction.NONE,
                was_valid=True, sites=(4, 8),
            ),
            objects_shipped=2, round_trips=1, epoch=7,
        )
        region = RegionEvent(
            query_id=1,
            result=RegionResult(
                timestamp=3, knn=(1, 2), knn_distances=(0.5, 1.5),
                guard_objects=frozenset((9,)), action=UpdateAction.NONE,
                was_valid=True, event="enter", departed=(6,),
            ),
            objects_shipped=2, round_trips=1, epoch=7,
        )
        knn = KNNResponse(query_id=1, result=base, objects_shipped=2, round_trips=1, epoch=7)
        for message in (influential, region, knn):
            back = decode(encode(message))
            assert type(back) is type(message)
            assert back == message
        # class-strict equality: identical shared fields never collide
        assert decode(encode(influential)) != knn
        assert decode(encode(region)) != knn
        assert decode(encode(influential)).sites == (4, 8)
        assert decode(encode(region)).event == "enter"
        assert decode(encode(region)).departed == (6,)

    def test_error_message_round_trips_to_exception(self):
        error = ErrorMessage.from_exception(QueryError("k too large"))
        raised = decode(encode(error)).to_exception()
        assert isinstance(raised, QueryError)
        assert "k too large" in str(raised)

    def test_unknown_error_kind_falls_back_to_base_class(self):
        assert isinstance(ErrorMessage("nonsense", "x").to_exception(), ReproError)


class TestFraming:
    @settings(max_examples=60, deadline=None)
    @given(
        messages=st.lists(all_messages, min_size=1, max_size=6),
        chunk_size=st.integers(min_value=1, max_value=64),
    )
    def test_split_and_concatenated_frames_survive(self, messages, chunk_size):
        blob = b"".join(encode(m) for m in messages)
        reader = FrameReader()
        decoded = []
        for start in range(0, len(blob), chunk_size):
            for message, nbytes in reader.feed(blob[start : start + chunk_size]):
                decoded.append((message, nbytes))
        assert [m for m, _ in decoded] == messages
        assert [n for _, n in decoded] == [wire_size(m) for m in messages]
        assert reader.pending_bytes == 0

    def test_single_feed_of_everything_at_once(self):
        messages = [
            PositionUpdate(query_id=1, position=Point(0.0, 0.0)),
            SessionOpened(query_id=1),
            ObjectsRequest(),
        ]
        reader = FrameReader()
        decoded = [m for m, _ in reader.feed(b"".join(encode(m) for m in messages))]
        assert decoded == messages


class TestMalformedInput:
    def test_truncated_prefix(self):
        with pytest.raises(TransportError):
            decode(b"\x00\x00")

    def test_truncated_body(self):
        frame = encode(SessionOpened(query_id=5))
        with pytest.raises(TransportError):
            decode(frame[:-1])

    def test_trailing_garbage(self):
        frame = encode(SessionOpened(query_id=5))
        with pytest.raises(TransportError):
            decode(frame + b"\x00")

    def test_unknown_frame_type(self):
        body = b"\xee\x00\x00\x00\x05"
        with pytest.raises(TransportError, match="unknown frame type"):
            decode(struct.pack("!I", len(body)) + body)

    def test_unknown_position_tag(self):
        frame = bytearray(encode(PositionUpdate(query_id=1, position=Point(0, 0))))
        frame[4 + 1 + 4] = 0x7F  # the position tag byte
        with pytest.raises(TransportError, match="position tag"):
            decode(bytes(frame))

    def test_declared_length_beyond_limit(self):
        with pytest.raises(TransportError, match="exceeds the limit"):
            FrameReader().feed(struct.pack("!I", 2**31) + b"x")

    def test_body_shorter_than_fields_demand(self):
        # A KNNResponse frame claiming 1000 neighbours but carrying none.
        body = bytearray(encode(KNNResponse(
            query_id=1,
            result=QueryResult(0, (), (), frozenset(), UpdateAction.NONE, True),
            objects_shipped=0, round_trips=0, epoch=0,
        ))[4:])
        body[1 + 4 + 12 + 4 + 2 : 1 + 4 + 12 + 4 + 2 + 4] = struct.pack("!I", 1000)
        with pytest.raises(TransportError):
            decode(struct.pack("!I", len(body)) + bytes(body))

    def test_truncated_index_delta_body(self):
        delta = IndexDelta(
            epoch=4, payload=2, new_indexes=(7,), points=(Point(1.0, 2.0),)
        )
        frame = encode(delta)
        with pytest.raises(TransportError):
            decode(frame[:-1])

    def test_index_delta_count_overrun(self):
        # An IndexDelta claiming 1000 new indexes but carrying one.
        body = bytearray(encode(IndexDelta(epoch=1, payload=1, new_indexes=(9,)))[4:])
        body[1 + 4 + 4 + 1 : 1 + 4 + 4 + 1 + 4] = struct.pack("!I", 1000)
        with pytest.raises(TransportError):
            decode(struct.pack("!I", len(body)) + bytes(body))

    def test_unknown_region_event_code(self):
        event = RegionEvent(
            query_id=1,
            result=RegionResult(
                timestamp=0, knn=(), knn_distances=(), guard_objects=frozenset(),
                action=UpdateAction.NONE, was_valid=True, event="stay", departed=(),
            ),
            objects_shipped=0, round_trips=0, epoch=0,
        )
        frame = bytearray(encode(event))
        # Layout tail: ... u8 event code + u32 departed count (empty list).
        frame[-5] = 0x7F
        with pytest.raises(TransportError, match="region event"):
            decode(bytes(frame))

    def test_unknown_region_event_string_fails_to_encode(self):
        event = RegionEvent(
            query_id=1,
            result=RegionResult(
                timestamp=0, knn=(), knn_distances=(), guard_objects=frozenset(),
                action=UpdateAction.NONE, was_valid=True, event="exit-stage-left",
            ),
            objects_shipped=0, round_trips=0, epoch=0,
        )
        with pytest.raises(TransportError, match="region event"):
            encode(event)

    def test_influential_sites_count_overrun(self):
        response = InfluentialResponse(
            query_id=1,
            result=InfluentialResult(
                timestamp=0, knn=(), knn_distances=(), guard_objects=frozenset(),
                action=UpdateAction.NONE, was_valid=True, sites=(5,),
            ),
            objects_shipped=0, round_trips=0, epoch=0,
        )
        body = bytearray(encode(response)[4:])
        # Tail: u32 site count + one u32 site — claim 1000 sites instead.
        body[-8:-4] = struct.pack("!I", 1000)
        with pytest.raises(TransportError):
            decode(struct.pack("!I", len(body)) + bytes(body))

    def test_truncated_open_query(self):
        frame = encode(
            OpenQuery(kind="region", position=Point(1.0, 2.0), k=3, rho=1.6)
        )
        for cut in (1, 5, len(frame) // 2):
            with pytest.raises(TransportError):
                decode(frame[:-cut])

    def test_out_of_range_field_raises_transport_error_on_encode(self):
        with pytest.raises(TransportError, match="out of range"):
            encode(SessionOpened(query_id=2**40))
        with pytest.raises(TransportError, match="out of range"):
            encode(IndexDelta(epoch=2**40, payload=0))

    def test_unencodable_types_raise_transport_error(self):
        with pytest.raises(TransportError):
            encode(object())
        with pytest.raises(TransportError):
            encode(PositionUpdate(query_id=1, position="not a position"))
        with pytest.raises(TransportError):
            wire_size(object())
