"""Observability on/off equivalence: the PR10 zero-semantic-cost bar.

The same server scenario is driven twice — once with the metrics
registry recording (the default) and once fully disabled — and the two
runs must agree **bit for bit**: every kNN answer (ids *and* distances),
every :class:`CommunicationStats` counter including bytes (the transport
is identical, so bytes must match exactly), every aggregate
:class:`ProcessorStats` counter, and the per-session bills.  Covered
across both metrics, both invalidation modes, a real socket transport,
and forked process shards with delta replication — the paths the
instruments actually thread through.

This is the discipline every prior PR held new modes to, applied to
observability: instruments may *read* values the serving code computed,
never influence them.
"""

import pytest

import repro.obs as obs
from repro.simulation.server_sim import simulate_server
from repro.workloads.scenarios import (
    ChurnSpec,
    euclidean_server_scenario,
    road_server_scenario,
)

EUCLIDEAN = dict(
    churn=ChurnSpec(interval=2, inserts=1, deletes=1, moves=1),
    queries=4,
    object_count=150,
    k=3,
    steps=10,
    seed=29,
)
ROAD = dict(
    churn=ChurnSpec(interval=2, inserts=1, deletes=1, moves=1),
    queries=3,
    object_count=20,
    k=3,
    steps=8,
    seed=31,
)


def build_scenario(metric):
    if metric == "euclidean":
        return euclidean_server_scenario(**EUCLIDEAN)
    return road_server_scenario(**ROAD)


def answer_streams(run):
    return {
        query_id: [(result.knn, result.knn_distances) for result in stream]
        for query_id, stream in run.results.items()
    }


def run_pair(metric, **kwargs):
    """The same run with observability on, then off (state restored)."""
    scenario = build_scenario(metric)
    obs.reset()
    obs.enable()
    try:
        observed = simulate_server(scenario, **kwargs)
        obs.disable()
        blind = simulate_server(scenario, **kwargs)
    finally:
        obs.enable()
        obs.reset()
    return observed, blind


def _counters_only(stats):
    return {
        key: value
        for key, value in stats.as_dict().items()
        if "seconds" not in key
    }


def assert_bit_identical(observed, blind):
    assert answer_streams(blind) == answer_streams(observed)
    # Identical transport, identical codec: *every* counter must match,
    # bytes included — observability may not add or absorb a single frame.
    assert blind.communication.as_dict() == observed.communication.as_dict()
    # ProcessorStats counters must match exactly; the *_seconds fields
    # are wall-clock measurements (noise by nature), not semantics.
    assert _counters_only(blind.aggregate) == _counters_only(observed.aggregate)
    assert blind.epochs == observed.epochs
    assert blind.update_counts == observed.update_counts
    assert set(blind.per_session_communication) == set(
        observed.per_session_communication
    )
    for query_id, comm in observed.per_session_communication.items():
        assert (
            blind.per_session_communication[query_id].as_dict() == comm.as_dict()
        ), f"session {query_id}"


class TestObsEquivalence:
    @pytest.mark.parametrize("metric", ["euclidean", "road"])
    @pytest.mark.parametrize("invalidation", ["delta", "flag"])
    def test_in_process(self, metric, invalidation):
        observed, blind = run_pair(metric, invalidation=invalidation)
        assert_bit_identical(observed, blind)

    @pytest.mark.parametrize("metric", ["euclidean", "road"])
    def test_over_tcp(self, metric):
        observed, blind = run_pair(metric, transport="tcp")
        assert_bit_identical(observed, blind)

    def test_over_process_shards_with_delta_replication(self):
        observed, blind = run_pair(
            "euclidean", transport="process", workers=2, replication="delta"
        )
        assert_bit_identical(observed, blind)

    def test_disabled_run_accumulates_no_metrics(self):
        scenario = build_scenario("euclidean")
        obs.reset()
        obs.disable()
        try:
            simulate_server(scenario)
            snapshot = obs.REGISTRY.snapshot()
        finally:
            obs.enable()
            obs.reset()
        assert all(value == 0 for _, _, value in snapshot.counters)
        assert all(sum(counts) == 0 for _, _, counts, _ in snapshot.histograms)

    def test_enabled_run_actually_observes(self):
        scenario = build_scenario("euclidean")
        obs.reset()
        obs.enable()
        try:
            simulate_server(scenario, transport="tcp")
            snapshot = obs.REGISTRY.snapshot()
        finally:
            obs.reset()
        counters = {
            (name, labels): value for name, labels, value in snapshot.counters
        }
        assert counters[("insq_epochs_total", "")] > 0
        histograms = {
            (name, labels): sum(counts)
            for name, labels, counts, _ in snapshot.histograms
        }
        assert histograms[("insq_maintenance_seconds", "metric=euclidean")] > 0
        assert histograms[("insq_request_seconds", "frame=PositionUpdate")] > 0
        assert histograms[("insq_codec_seconds", "frame=PositionUpdate,op=decode")] > 0
