"""Behavioural tests for KNNServer / RemoteService over real sockets."""

import threading

import pytest

from repro.errors import ConfigurationError, QueryError, TransportError
from repro.geometry.point import Point
from repro.service import KNNService, UpdateBatch, open_service
from repro.service.session import Session
from repro.transport import KNNServer, RemoteSession, connect, parse_endpoint
from repro.workloads.datasets import uniform_points


@pytest.fixture
def service():
    return open_service(metric="euclidean", objects=uniform_points(80, seed=5))


@pytest.fixture
def server(service):
    with KNNServer(service) as running:
        yield running


class TestEndpoints:
    def test_parse_host_port(self):
        assert parse_endpoint("127.0.0.1:9000") == ("127.0.0.1", 9000)

    def test_parse_unix_prefix_and_bare_path(self):
        assert parse_endpoint("unix:/tmp/x.sock") == "/tmp/x.sock"
        assert parse_endpoint("/tmp/x.sock") == "/tmp/x.sock"

    def test_parse_rejects_garbage(self):
        with pytest.raises(TransportError):
            parse_endpoint("unix:")
        with pytest.raises(TransportError):
            parse_endpoint("127.0.0.1:notaport")

    def test_connect_refuses_without_address(self):
        with pytest.raises(TransportError):
            connect()

    def test_address_requires_started_server(self, service):
        with pytest.raises(TransportError):
            KNNServer(service).address


class TestUnixDomain:
    def test_full_exchange_over_unix_socket(self, service, tmp_path):
        path = str(tmp_path / "insq.sock")
        with KNNServer(service, path=path) as server:
            assert server.address == path
            with connect(server.address) as remote:
                with remote.open_session(Point(100, 100), k=4) as session:
                    response = session.update(Point(150, 150))
                    assert len(response.knn) == 4

    def test_unix_socket_path_is_cleaned_up_and_restartable(self, service, tmp_path):
        import os

        path = str(tmp_path / "insq.sock")
        with KNNServer(service, path=path):
            assert os.path.exists(path)
        assert not os.path.exists(path), "stop() must unlink the socket file"
        # Restarting on the same path works, even over a stale socket file
        # left by a crashed server (simulated by recreating one).
        import socket as socket_module

        stale = socket_module.socket(socket_module.AF_UNIX)
        stale.bind(path)
        stale.close()
        with KNNServer(service, path=path) as second:
            with connect(second.address) as remote:
                assert remote.active_object_indexes()

    def test_unix_socket_refuses_to_clobber_a_regular_file(self, service, tmp_path):
        path = tmp_path / "not-a-socket"
        path.write_text("precious data")
        with pytest.raises(TransportError, match="cannot bind"):
            KNNServer(service, path=str(path)).start()
        assert path.read_text() == "precious data"


class TestRemoteSessions:
    def test_remote_session_is_a_session(self, server):
        with connect(server.address) as remote:
            session = remote.open_session(Point(10, 10), k=3)
            assert isinstance(session, Session)
            assert isinstance(session, RemoteSession)
            assert session.k == 3 and session.rho == 1.6
            session.close()
            assert session.closed

    def test_update_refresh_and_last_response(self, server):
        with connect(server.address) as remote:
            with remote.open_session(Point(10, 10), k=3) as session:
                first = session.update(Point(40, 40))
                assert session.last_response is first
                refreshed = session.refresh()
                assert refreshed.knn == first.knn
                assert refreshed.round_trips == 0  # held answer still valid

    def test_closed_session_refuses_updates(self, server):
        with connect(server.address) as remote:
            session = remote.open_session(Point(10, 10), k=3)
            session.close()
            with pytest.raises(QueryError):
                session.update(Point(20, 20))

    def test_engine_errors_cross_the_wire_typed(self, server):
        with connect(server.address) as remote:
            with pytest.raises(ConfigurationError, match="k=10000"):
                remote.open_session(Point(0, 0), k=10_000)
            # The connection survives a typed error and keeps serving.
            with remote.open_session(Point(0, 0), k=2) as session:
                assert len(session.update(Point(5, 5)).knn) == 2

    def test_stale_query_id_raises_query_error_like_in_process(self, server):
        """A bad session id is a query problem, not a wire problem."""
        with connect(server.address) as remote:
            remote.open_session(Point(0, 0), k=2)
            with pytest.raises(QueryError, match="not a session"):
                remote._deliver(999, Point(1, 1))
            # ...and the connection (and its other sessions) keep working.
            assert remote.sessions()[0].update(Point(2, 2)).knn

    def test_failed_open_still_reconciles_byte_accounting(self, service, server):
        """A refused registration is billed uplink, so engine bytes keep
        matching the client's measurement even on error paths."""
        with connect(server.address) as remote:
            with pytest.raises(ConfigurationError):
                remote.open_session(Point(0, 0), k=10_000)
            with remote.open_session(Point(0, 0), k=3) as session:
                session.update(Point(7, 7))
                comm = service.communication
                assert comm.uplink_bytes == remote.bytes_sent
                assert comm.downlink_bytes == remote.bytes_received

    def test_remote_stats_property_is_explicitly_unavailable(self, server):
        with connect(server.address) as remote:
            with remote.open_session(Point(10, 10), k=3) as session:
                with pytest.raises(QueryError, match="live on the server"):
                    session.stats

    def test_remote_session_communication_snapshot(self, server):
        with connect(server.address) as remote:
            with remote.open_session(Point(10, 10), k=3) as session:
                session.update(Point(400, 400))
                comm = session.communication
                assert comm.messages >= 2
                assert comm.uplink_bytes > 0 and comm.downlink_bytes > 0


class TestServerSideAccounting:
    def test_identical_message_counters_to_in_process_run(self, server):
        """The wire adds bytes, never messages or objects."""
        reference = open_service(metric="euclidean", objects=uniform_points(80, seed=5))
        with reference.open_session(Point(10, 10), k=3) as local:
            local.update(Point(300, 300))
            local.update(Point(500, 500))
            local_comm = local.communication.snapshot()
        with connect(server.address) as remote:
            with remote.open_session(Point(10, 10), k=3) as session:
                session.update(Point(300, 300))
                session.update(Point(500, 500))
                remote_comm = session.communication
        for field in (
            "uplink_messages",
            "uplink_objects",
            "downlink_messages",
            "downlink_objects",
        ):
            assert getattr(local_comm, field) == getattr(remote_comm, field), field
        assert local_comm.bytes_transmitted == 0
        assert remote_comm.bytes_transmitted > 0

    def test_client_measured_bytes_match_engine_and_prediction(self, service, server):
        with connect(server.address) as remote:
            session = remote.open_session(Point(10, 10), k=3)
            session.update(Point(444, 444))
            remote.apply(UpdateBatch(inserts=(Point(1.0, 1.0),)))
            session.close()
            # Codec prediction is exact for everything the client sent/read.
            assert remote.bytes_sent == remote.predicted_bytes_sent
            assert remote.bytes_received == remote.predicted_bytes_received
            # And the engine billed exactly the billable (non-meta) bytes.
            comm = service.communication
            assert comm.uplink_bytes == remote.bytes_sent
            assert comm.downlink_bytes == remote.bytes_received
            # Meta frames are measured separately and unbilled.
            remote.communication()
            assert remote.meta_bytes_sent > 0 and remote.meta_bytes_received > 0
            assert service.communication.uplink_bytes == comm.uplink_bytes

    def test_update_batch_applies_as_one_epoch(self, service, server):
        epoch_before = service.epoch
        with connect(server.address) as remote:
            ack = remote.apply(
                UpdateBatch(inserts=(Point(2.0, 2.0), Point(3.0, 3.0)), deletes=(0,))
            )
            assert ack.epoch == epoch_before + 1
            assert len(ack.new_indexes) == 2
            assert ack.deleted_indexes == (0,)
            assert service.epoch == ack.epoch
            assert remote.active_object_indexes() == tuple(
                service.active_object_indexes()
            )


class TestConnectionLifecycle:
    def test_disconnect_reaps_abandoned_sessions(self, service, server):
        remote = connect(server.address)
        remote.open_session(Point(10, 10), k=3)
        assert service.session_count == 1
        remote._stream.close()  # vanish without saying goodbye
        deadline = threading.Event()
        for _ in range(100):
            if service.session_count == 0:
                break
            deadline.wait(0.05)
        assert service.session_count == 0

    def test_remote_close_is_idempotent_and_closes_sessions(self, service, server):
        remote = connect(server.address)
        session = remote.open_session(Point(10, 10), k=3)
        remote.close()
        remote.close()
        assert session.closed
        assert remote.closed
        with pytest.raises(TransportError):
            remote.apply(UpdateBatch())

    def test_multiple_clients_share_one_engine(self, service, server):
        with connect(server.address) as first, connect(server.address) as second:
            a = first.open_session(Point(10, 10), k=3)
            b = second.open_session(Point(20, 20), k=3)
            assert service.session_count == 2
            assert a.query_id != b.query_id
            assert len(a.update(Point(30, 30)).knn) == 3
            assert len(b.update(Point(40, 40)).knn) == 3

    def test_server_stop_then_restart_cycle(self, service):
        server = KNNServer(service).start()
        address = server.address
        with pytest.raises(TransportError):
            server.start()  # already running
        server.stop()
        server.stop()  # idempotent
        second = KNNServer(service).start()
        try:
            with connect(second.address) as remote:
                assert remote.active_object_indexes()
        finally:
            second.stop()

    def test_road_metric_over_the_wire(self, tmp_path):
        from repro.roadnet.generators import grid_network, place_objects
        from repro.roadnet.location import NetworkLocation

        network = grid_network(6, 6, spacing=50.0)
        objects = place_objects(network, 15, seed=9)
        service = open_service(metric="road", network=network, objects=objects)
        with KNNServer(service) as server:
            with connect(server.address) as remote:
                start = NetworkLocation.at_vertex(network, 0)
                with remote.open_session(
                    start, k=3, validation_mode="restricted"
                ) as session:
                    response = session.update(NetworkLocation.at_vertex(network, 7))
                    assert len(response.knn) == 3
