"""Tests for repro.baselines.vstar (V*-Diagram-style baseline)."""

import pytest

from repro.errors import ConfigurationError
from repro.baselines.vstar import VStarProcessor
from repro.core.objects import UpdateAction
from repro.geometry.point import Point
from repro.trajectory.euclidean import random_waypoint_trajectory
from repro.workloads.datasets import data_space, uniform_points


def brute_knn(points, query, k):
    order = sorted(range(len(points)), key=lambda i: (query.distance_squared_to(points[i]), i))
    return order[:k]


@pytest.fixture(scope="module")
def dataset():
    return uniform_points(300, extent=1_000.0, seed=190)


class TestVStarProcessor:
    def test_validation(self, dataset):
        with pytest.raises(ConfigurationError):
            VStarProcessor(dataset, k=0)
        with pytest.raises(ConfigurationError):
            VStarProcessor(dataset, k=3, auxiliary=0)
        with pytest.raises(ConfigurationError):
            VStarProcessor(dataset, k=len(dataset), auxiliary=1)

    def test_initial_answer_and_candidates(self, dataset):
        processor = VStarProcessor(dataset, k=5, auxiliary=4)
        query = Point(500.0, 500.0)
        result = processor.initialize(query)
        assert list(result.knn) == brute_knn(dataset, query, 5)
        assert len(processor.candidates) == 9
        assert processor.known_region_radius == pytest.approx(
            query.distance_to(dataset[brute_knn(dataset, query, 9)[-1]])
        )

    def test_every_answer_matches_brute_force(self, dataset):
        processor = VStarProcessor(dataset, k=5, auxiliary=4)
        trajectory = random_waypoint_trajectory(
            data_space(1_000.0), steps=100, step_length=25.0, seed=191
        )
        processor.initialize(trajectory[0])
        for position in trajectory[1:]:
            result = processor.update(position)
            expected = brute_knn(dataset, position, 5)
            assert max(result.knn_distances) == pytest.approx(
                position.distance_to(dataset[expected[-1]])
            )

    def test_small_movement_is_answered_from_candidates(self, dataset):
        processor = VStarProcessor(dataset, k=5, auxiliary=4)
        query = Point(500.0, 500.0)
        processor.initialize(query)
        result = processor.update(Point(500.2, 500.0))
        assert result.was_valid
        assert result.action is UpdateAction.NONE
        assert processor.stats.full_recomputations == 1

    def test_more_auxiliary_objects_reduce_recomputations(self, dataset):
        trajectory = random_waypoint_trajectory(
            data_space(1_000.0), steps=200, step_length=20.0, seed=192
        )

        def recomputations(x):
            processor = VStarProcessor(dataset, k=5, auxiliary=x)
            processor.initialize(trajectory[0])
            for position in trajectory[1:]:
                processor.update(position)
            return processor.stats.full_recomputations

        assert recomputations(12) <= recomputations(1)

    def test_recomputes_more_often_than_strict_safe_region_methods(self, dataset):
        """The defining trade-off: cheap construction, frequent recomputation."""
        from repro.core.ins_euclidean import INSProcessor

        trajectory = random_waypoint_trajectory(
            data_space(1_000.0), steps=250, step_length=25.0, seed=193
        )
        vstar = VStarProcessor(dataset, k=5, auxiliary=4)
        ins = INSProcessor(dataset, k=5, rho=1.6)
        for processor in (vstar, ins):
            processor.initialize(trajectory[0])
            for position in trajectory[1:]:
                processor.update(position)
        assert vstar.stats.full_recomputations >= ins.stats.full_recomputations

    def test_name(self, dataset):
        assert VStarProcessor(dataset, k=2).name == "V*"
