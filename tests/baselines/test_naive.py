"""Tests for repro.baselines.naive."""

import pytest

from repro.errors import ConfigurationError
from repro.baselines.naive import NaiveProcessor
from repro.core.objects import UpdateAction
from repro.geometry.point import Point
from repro.trajectory.euclidean import random_waypoint_trajectory
from repro.workloads.datasets import data_space, uniform_points


def brute_knn(points, query, k):
    order = sorted(range(len(points)), key=lambda i: (query.distance_squared_to(points[i]), i))
    return order[:k]


@pytest.fixture(scope="module")
def dataset():
    return uniform_points(250, extent=1_000.0, seed=170)


class TestNaiveProcessor:
    def test_validation(self, dataset):
        with pytest.raises(ConfigurationError):
            NaiveProcessor(dataset, k=0)
        with pytest.raises(ConfigurationError):
            NaiveProcessor(dataset, k=len(dataset) + 1)

    def test_every_answer_matches_brute_force(self, dataset):
        processor = NaiveProcessor(dataset, k=6)
        trajectory = random_waypoint_trajectory(
            data_space(1_000.0), steps=40, step_length=50.0, seed=171
        )
        processor.initialize(trajectory[0])
        for position in trajectory:
            if position is trajectory[0]:
                continue
            result = processor.update(position)
            assert list(result.knn) == brute_knn(dataset, position, 6)

    def test_recomputes_every_timestamp(self, dataset):
        processor = NaiveProcessor(dataset, k=4)
        trajectory = random_waypoint_trajectory(
            data_space(1_000.0), steps=30, step_length=20.0, seed=172
        )
        processor.initialize(trajectory[0])
        for position in trajectory[1:]:
            result = processor.update(position)
            assert result.action is UpdateAction.FULL_RECOMPUTE
        assert processor.stats.full_recomputations == len(trajectory)
        assert processor.stats.transmitted_objects == 4 * len(trajectory)

    def test_no_guard_objects(self, dataset):
        processor = NaiveProcessor(dataset, k=4)
        result = processor.initialize(Point(500, 500))
        assert result.guard_objects == frozenset()

    def test_name(self, dataset):
        assert NaiveProcessor(dataset, k=1).name == "Naive"
