"""Tests for repro.baselines.order_k_region (strict safe-region baseline)."""

import pytest

from repro.errors import ConfigurationError
from repro.baselines.order_k_region import OrderKSafeRegionProcessor
from repro.core.objects import UpdateAction
from repro.geometry.point import Point
from repro.trajectory.euclidean import linear_trajectory, random_waypoint_trajectory
from repro.workloads.datasets import data_space, uniform_points


def brute_knn(points, query, k):
    order = sorted(range(len(points)), key=lambda i: (query.distance_squared_to(points[i]), i))
    return order[:k]


@pytest.fixture(scope="module")
def dataset():
    return uniform_points(300, extent=1_000.0, seed=180)


class TestOrderKSafeRegionProcessor:
    def test_validation(self, dataset):
        with pytest.raises(ConfigurationError):
            OrderKSafeRegionProcessor(dataset, k=0)
        with pytest.raises(ConfigurationError):
            OrderKSafeRegionProcessor(dataset, k=len(dataset))

    def test_initial_answer_and_safe_region(self, dataset):
        processor = OrderKSafeRegionProcessor(dataset, k=5)
        query = Point(500.0, 500.0)
        result = processor.initialize(query)
        assert set(result.knn) == set(brute_knn(dataset, query, 5))
        assert processor.safe_region is not None
        assert processor.safe_region.contains(query)
        # The safe region's members are exactly the reported kNN set.
        assert set(processor.safe_region.member_indexes) == result.knn_set

    def test_every_answer_matches_brute_force(self, dataset):
        processor = OrderKSafeRegionProcessor(dataset, k=5)
        trajectory = random_waypoint_trajectory(
            data_space(1_000.0), steps=80, step_length=20.0, seed=181
        )
        processor.initialize(trajectory[0])
        for position in trajectory[1:]:
            result = processor.update(position)
            expected = brute_knn(dataset, position, 5)
            assert max(result.knn_distances) == pytest.approx(
                position.distance_to(dataset[expected[-1]])
            )

    def test_inside_safe_region_no_recomputation(self, dataset):
        processor = OrderKSafeRegionProcessor(dataset, k=5)
        query = Point(500.0, 500.0)
        processor.initialize(query)
        result = processor.update(Point(500.05, 500.0))
        assert result.was_valid
        assert result.action is UpdateAction.NONE
        assert processor.stats.full_recomputations == 1

    def test_recomputation_count_equals_knn_changes_plus_one(self, dataset):
        """The strict safe region recomputes exactly when the kNN set changes."""
        processor = OrderKSafeRegionProcessor(dataset, k=4)
        trajectory = linear_trajectory(Point(100.0, 480.0), Point(900.0, 520.0), steps=200)
        previous = None
        changes = 0
        processor.initialize(trajectory[0])
        previous = set(brute_knn(dataset, trajectory[0], 4))
        for position in trajectory[1:]:
            processor.update(position)
            current = set(brute_knn(dataset, position, 4))
            if current != previous:
                changes += 1
            previous = current
        # Every change forces one recomputation; discretisation can add a
        # couple when a step crosses more than one cell.
        assert processor.stats.full_recomputations >= changes
        assert processor.stats.full_recomputations <= changes + max(3, changes // 4) + 1

    def test_guard_objects_are_the_mis(self, dataset):
        processor = OrderKSafeRegionProcessor(dataset, k=3)
        result = processor.initialize(Point(250.0, 750.0))
        assert result.guard_objects == processor.safe_region.mis_indexes

    def test_name(self, dataset):
        assert OrderKSafeRegionProcessor(dataset, k=2).name == "OrderK-SR"
