"""Tests for the road-network baselines (naive INE and V*-road)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.baselines.naive_road import NaiveRoadProcessor
from repro.baselines.vstar_road import VStarRoadProcessor
from repro.core.objects import UpdateAction
from repro.roadnet.generators import grid_network, place_objects
from repro.roadnet.location import NetworkLocation
from repro.roadnet.shortest_path import distances_from_location
from repro.trajectory.road import network_random_walk


@pytest.fixture(scope="module")
def road_setup():
    network = grid_network(7, 7, spacing=100.0)
    objects = place_objects(network, 16, seed=200)
    return network, objects


def oracle_distances(network, objects, location):
    vertex_distances = distances_from_location(network, location)
    return {i: vertex_distances.get(v, math.inf) for i, v in enumerate(objects)}


def answer_is_correct(network, objects, location, result, k):
    distances = oracle_distances(network, objects, location)
    ordered = sorted(distances.values())
    kth = ordered[k - 1]
    slack = 1e-7 * max(kth, 1.0)
    return (
        len(result.knn) == k
        and all(distances[i] <= kth + slack for i in result.knn)
        and all(i in set(result.knn) for i, d in distances.items() if d < kth - slack)
    )


class TestNaiveRoadProcessor:
    def test_validation(self, road_setup):
        network, objects = road_setup
        with pytest.raises(ConfigurationError):
            NaiveRoadProcessor(network, objects, k=0)
        with pytest.raises(ConfigurationError):
            NaiveRoadProcessor(network, objects, k=len(objects) + 1)

    def test_correct_and_recomputes_each_timestamp(self, road_setup):
        network, objects = road_setup
        processor = NaiveRoadProcessor(network, objects, k=4)
        trajectory = network_random_walk(network, steps=40, step_length=30.0, seed=201)
        processor.initialize(trajectory[0])
        for location in trajectory[1:]:
            result = processor.update(location)
            assert result.action is UpdateAction.FULL_RECOMPUTE
            assert answer_is_correct(network, objects, location, result, 4)
        assert processor.stats.full_recomputations == len(trajectory)

    def test_name(self, road_setup):
        network, objects = road_setup
        assert NaiveRoadProcessor(network, objects, k=1).name == "Naive-road"


class TestVStarRoadProcessor:
    def test_validation(self, road_setup):
        network, objects = road_setup
        with pytest.raises(ConfigurationError):
            VStarRoadProcessor(network, objects, k=0)
        with pytest.raises(ConfigurationError):
            VStarRoadProcessor(network, objects, k=3, auxiliary=0)
        with pytest.raises(ConfigurationError):
            VStarRoadProcessor(network, objects, k=len(objects), auxiliary=1)
        with pytest.raises(ConfigurationError):
            VStarRoadProcessor(network, objects, k=3, step_length=-1.0)

    def test_every_answer_correct_along_walk(self, road_setup):
        network, objects = road_setup
        step = 30.0
        processor = VStarRoadProcessor(network, objects, k=4, auxiliary=4, step_length=step)
        trajectory = network_random_walk(network, steps=80, step_length=step, seed=202)
        processor.initialize(trajectory[0])
        for location in trajectory[1:]:
            result = processor.update(location)
            assert answer_is_correct(network, objects, location, result, 4)

    def test_fewer_recomputations_than_naive(self, road_setup):
        network, objects = road_setup
        step = 25.0
        trajectory = network_random_walk(network, steps=100, step_length=step, seed=203)
        vstar = VStarRoadProcessor(network, objects, k=4, auxiliary=6, step_length=step)
        naive = NaiveRoadProcessor(network, objects, k=4)
        for processor in (vstar, naive):
            processor.initialize(trajectory[0])
            for location in trajectory[1:]:
                processor.update(location)
        assert vstar.stats.full_recomputations < naive.stats.full_recomputations

    def test_candidates_size(self, road_setup):
        network, objects = road_setup
        processor = VStarRoadProcessor(network, objects, k=3, auxiliary=5, step_length=10.0)
        edge = network.edges()[0]
        processor.initialize(NetworkLocation(edge.edge_id, 5.0))
        assert len(processor.candidates) == 8

    def test_name(self, road_setup):
        network, objects = road_setup
        assert VStarRoadProcessor(network, objects, k=1).name == "V*-road"
