"""Tests for repro.workloads.scenarios."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.datasets import data_space
from repro.workloads.scenarios import (
    default_euclidean_scenario,
    default_road_scenario,
    fig4_scenario,
)


class TestEuclideanScenarios:
    def test_default_scenario_shape(self):
        scenario = default_euclidean_scenario(object_count=300, k=4, steps=50)
        assert len(scenario.points) == 300
        assert scenario.k == 4
        assert scenario.timestamps == 51
        assert scenario.rho == 1.6

    def test_trajectory_stays_in_data_space(self):
        scenario = default_euclidean_scenario(object_count=200, steps=40, extent=500.0)
        box = data_space(500.0)
        assert all(box.contains_point(p) for p in scenario.trajectory)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            default_euclidean_scenario(object_count=3, k=5)

    def test_fig4_scenario_parameters(self):
        """Figure 4 of the paper uses k = 5 and ρ = 1.6."""
        scenario = fig4_scenario()
        assert scenario.k == 5
        assert scenario.rho == pytest.approx(1.6)
        assert len(scenario.points) > scenario.k

    def test_reproducibility(self):
        a = default_euclidean_scenario(object_count=100, steps=10, seed=3)
        b = default_euclidean_scenario(object_count=100, steps=10, seed=3)
        assert a.points == b.points
        assert a.trajectory == b.trajectory


class TestRoadScenarios:
    def test_default_road_scenario_shape(self):
        scenario = default_road_scenario(rows=6, columns=6, object_count=12, k=3, steps=30)
        assert scenario.network.vertex_count == 36
        assert len(scenario.object_vertices) == 12
        assert scenario.timestamps == 31
        assert scenario.k == 3

    def test_objects_are_on_network_vertices(self):
        scenario = default_road_scenario(rows=5, columns=5, object_count=8, steps=20)
        vertices = set(scenario.network.vertices())
        assert all(v in vertices for v in scenario.object_vertices)

    def test_trajectory_locations_are_valid(self):
        scenario = default_road_scenario(rows=5, columns=5, object_count=8, steps=20)
        for location in scenario.trajectory:
            location.validated(scenario.network)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            default_road_scenario(object_count=2, k=5)
