"""Tests for repro.workloads.scenarios."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.datasets import data_space
from repro.workloads.scenarios import (
    ChurnSpec,
    HIGH_CHURN,
    LOW_CHURN,
    NO_CHURN,
    default_euclidean_scenario,
    default_road_scenario,
    euclidean_server_scenario,
    fig4_scenario,
    road_server_scenario,
)


class TestEuclideanScenarios:
    def test_default_scenario_shape(self):
        scenario = default_euclidean_scenario(object_count=300, k=4, steps=50)
        assert len(scenario.points) == 300
        assert scenario.k == 4
        assert scenario.timestamps == 51
        assert scenario.rho == 1.6

    def test_trajectory_stays_in_data_space(self):
        scenario = default_euclidean_scenario(object_count=200, steps=40, extent=500.0)
        box = data_space(500.0)
        assert all(box.contains_point(p) for p in scenario.trajectory)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            default_euclidean_scenario(object_count=3, k=5)

    def test_fig4_scenario_parameters(self):
        """Figure 4 of the paper uses k = 5 and ρ = 1.6."""
        scenario = fig4_scenario()
        assert scenario.k == 5
        assert scenario.rho == pytest.approx(1.6)
        assert len(scenario.points) > scenario.k

    def test_reproducibility(self):
        a = default_euclidean_scenario(object_count=100, steps=10, seed=3)
        b = default_euclidean_scenario(object_count=100, steps=10, seed=3)
        assert a.points == b.points
        assert a.trajectory == b.trajectory


class TestRoadScenarios:
    def test_default_road_scenario_shape(self):
        scenario = default_road_scenario(rows=6, columns=6, object_count=12, k=3, steps=30)
        assert scenario.network.vertex_count == 36
        assert len(scenario.object_vertices) == 12
        assert scenario.timestamps == 31
        assert scenario.k == 3

    def test_objects_are_on_network_vertices(self):
        scenario = default_road_scenario(rows=5, columns=5, object_count=8, steps=20)
        vertices = set(scenario.network.vertices())
        assert all(v in vertices for v in scenario.object_vertices)

    def test_trajectory_locations_are_valid(self):
        scenario = default_road_scenario(rows=5, columns=5, object_count=8, steps=20)
        for location in scenario.trajectory:
            location.validated(scenario.network)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            default_road_scenario(object_count=2, k=5)


class TestChurnSpecs:
    def test_named_profiles(self):
        assert LOW_CHURN.interval == 4
        assert HIGH_CHURN.interval == 1
        assert NO_CHURN.operations_per_epoch == 0
        assert HIGH_CHURN.operations_per_epoch == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnSpec(interval=-1, inserts=1, deletes=1, moves=1)
        with pytest.raises(ConfigurationError):
            ChurnSpec(interval=1, inserts=-1, deletes=0, moves=0)


class TestServerScenarios:
    def test_euclidean_server_scenario_shape(self):
        scenario = euclidean_server_scenario(
            queries=5, object_count=120, k=3, steps=15, churn="high", seed=9
        )
        assert scenario.query_count == 5
        assert len(scenario.ks) == 5
        assert all(k >= 3 for k in scenario.ks)
        assert len(scenario.points) == 120
        assert scenario.churn == HIGH_CHURN
        assert scenario.timestamps >= 15

    def test_clustered_data_variant(self):
        uniform = euclidean_server_scenario(data="uniform", object_count=100, seed=4)
        clustered = euclidean_server_scenario(data="clustered", object_count=100, seed=4)
        assert uniform.points != clustered.points
        assert "clustered" in clustered.name

    def test_road_server_scenario_shape(self):
        scenario = road_server_scenario(
            queries=3, rows=6, columns=6, object_count=12, k=3, steps=10, churn="low"
        )
        assert scenario.query_count == 3
        assert scenario.churn == LOW_CHURN
        vertices = set(scenario.network.vertices())
        assert all(v in vertices for v in scenario.object_vertices)
        for trajectory in scenario.trajectories:
            for location in trajectory:
                location.validated(scenario.network)

    def test_custom_churn_and_validation(self):
        spec = ChurnSpec(interval=2, inserts=0, deletes=0, moves=3)
        scenario = euclidean_server_scenario(churn=spec, object_count=80, seed=6)
        assert scenario.churn is spec
        with pytest.raises(ConfigurationError):
            euclidean_server_scenario(churn="medium")
        with pytest.raises(ConfigurationError):
            euclidean_server_scenario(data="poisson")
        with pytest.raises(ConfigurationError):
            euclidean_server_scenario(queries=0)
        with pytest.raises(ConfigurationError):
            road_server_scenario(object_count=4, k=3)

    def test_reproducibility(self):
        a = euclidean_server_scenario(queries=3, object_count=90, steps=8, seed=12)
        b = euclidean_server_scenario(queries=3, object_count=90, steps=8, seed=12)
        assert a.points == b.points
        assert a.trajectories == b.trajectories
        assert a.ks == b.ks
