"""Tests for repro.workloads.datasets."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.datasets import (
    DEFAULT_EXTENT,
    clustered_points,
    data_space,
    uniform_points,
)


class TestDataSpace:
    def test_default_extent(self):
        box = data_space()
        assert box.width == DEFAULT_EXTENT
        assert box.height == DEFAULT_EXTENT

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            data_space(0.0)


class TestUniformPoints:
    def test_count_and_containment(self):
        points = uniform_points(500, extent=100.0, seed=220)
        assert len(points) == 500
        box = data_space(100.0)
        assert all(box.contains_point(p) for p in points)

    def test_reproducibility(self):
        assert uniform_points(50, seed=1) == uniform_points(50, seed=1)
        assert uniform_points(50, seed=1) != uniform_points(50, seed=2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_points(0)
        with pytest.raises(ConfigurationError):
            uniform_points(10, extent=-5.0)


class TestClusteredPoints:
    def test_count_and_containment(self):
        points = clustered_points(400, clusters=5, extent=100.0, seed=221)
        assert len(points) == 400
        box = data_space(100.0)
        assert all(box.contains_point(p) for p in points)

    def test_clustering_is_denser_than_uniform(self):
        """Clustered data should have a much smaller mean nearest-neighbour
        distance than uniform data of the same size."""

        def mean_nn_distance(points):
            total = 0.0
            for i, p in enumerate(points):
                nearest = min(
                    p.distance_to(q) for j, q in enumerate(points) if j != i
                )
                total += nearest
            return total / len(points)

        uniform = uniform_points(200, extent=1_000.0, seed=222)
        clustered = clustered_points(200, clusters=4, extent=1_000.0, seed=223)
        assert mean_nn_distance(clustered) < mean_nn_distance(uniform)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            clustered_points(0)
        with pytest.raises(ConfigurationError):
            clustered_points(10, clusters=0)
        with pytest.raises(ConfigurationError):
            clustered_points(10, spread_fraction=0.0)
        with pytest.raises(ConfigurationError):
            clustered_points(10, extent=0.0)
