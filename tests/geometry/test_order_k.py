"""Tests for repro.geometry.order_k (order-k Voronoi cells and the MIS)."""

import pytest

from repro.errors import GeometryError
from repro.geometry.order_k import (
    knn_indexes,
    order_k_cell,
    order_k_cell_of_query,
)
from repro.geometry.point import Point
from repro.geometry.voronoi import VoronoiDiagram, influential_neighbor_indexes
from repro.workloads.datasets import uniform_points


class TestKnnIndexes:
    def test_simple_ordering(self):
        points = [Point(0, 0), Point(1, 0), Point(5, 0)]
        assert knn_indexes(points, Point(0.4, 0), 2) == [0, 1]

    def test_k_validation(self):
        points = [Point(0, 0), Point(1, 0)]
        with pytest.raises(GeometryError):
            knn_indexes(points, Point(0, 0), 0)
        with pytest.raises(GeometryError):
            knn_indexes(points, Point(0, 0), 3)


class TestOrderKCellGeometry:
    def test_order_1_cell_matches_voronoi_cell(self, small_points):
        diagram = VoronoiDiagram(small_points)
        index = 4
        cell = order_k_cell(
            small_points, [index], reference=small_points[index],
            bounding_box=diagram.bounding_box,
        )
        voronoi_cell = diagram.cell(index)
        assert cell.polygon.area == pytest.approx(voronoi_cell.area, rel=1e-6)

    def test_cell_contains_query_whose_knn_it_is(self, small_points):
        query = Point(4.8, 5.2)
        cell = order_k_cell_of_query(small_points, query, 3)
        assert cell.contains(query)

    def test_every_point_of_the_cell_shares_the_knn_set(self, small_points):
        query = Point(4.8, 5.2)
        k = 3
        cell = order_k_cell_of_query(small_points, query, k)
        members = set(cell.member_indexes)
        box = cell.polygon.bounding_box()
        for probe in box.sample_grid(15, 15):
            if cell.polygon.contains(probe, tolerance=-1e-9):
                continue
            if not cell.polygon.contains(probe):
                continue
            # Allow boundary ties: the k nearest must either equal the member
            # set or the probe must be within tolerance of a tie.
            probe_knn = set(knn_indexes(small_points, probe, k))
            if probe_knn != members:
                distances = sorted(probe.distance_to(p) for p in small_points)
                assert distances[k] - distances[k - 1] < 1e-6
            else:
                assert probe_knn == members

    def test_points_outside_the_cell_have_different_knn(self, small_points):
        query = Point(4.8, 5.2)
        k = 3
        cell = order_k_cell_of_query(small_points, query, k)
        members = set(cell.member_indexes)
        # Probe points clearly outside the cell (far corners of the layout).
        for probe in [Point(0.5, 0.5), Point(9.0, 9.0), Point(9.0, 0.5)]:
            assert not cell.contains(probe)
            assert set(knn_indexes(small_points, probe, k)) != members

    def test_empty_member_set_raises(self, small_points):
        with pytest.raises(GeometryError):
            order_k_cell(small_points, [])

    def test_out_of_range_member_raises(self, small_points):
        with pytest.raises(GeometryError):
            order_k_cell(small_points, [99])

    def test_non_knn_member_set_yields_empty_or_small_cell(self, small_points):
        # A member set consisting of mutually far-apart objects is nobody's
        # kNN set, so its order-k cell is empty.
        cell = order_k_cell(small_points, [0, 11, 8])
        assert cell.polygon.is_empty or cell.polygon.area < 1e-6


class TestMinimalInfluentialSet:
    def test_mis_members_are_not_cell_members(self, small_points):
        cell = order_k_cell_of_query(small_points, Point(4.8, 5.2), 3)
        assert not (set(cell.mis_indexes) & set(cell.member_indexes))

    def test_mis_is_subset_of_ins(self, small_points):
        """The paper's key structural claim (proved in [3], used by Thm 1)."""
        diagram = VoronoiDiagram(small_points)
        for query in [Point(4.8, 5.2), Point(3.0, 7.0), Point(6.5, 2.5)]:
            for k in (2, 3, 4):
                cell = order_k_cell_of_query(small_points, query, k)
                ins = influential_neighbor_indexes(
                    diagram.neighbor_map(), cell.member_indexes
                )
                assert set(cell.mis_indexes) <= ins

    def test_mis_on_random_data(self):
        points = uniform_points(80, extent=1_000.0, seed=21)
        diagram = VoronoiDiagram(points)
        for seed, k in [(1, 2), (2, 3), (3, 5)]:
            query = Point(300.0 + 100 * seed, 400.0 + 60 * seed)
            cell = order_k_cell_of_query(points, query, k)
            ins = influential_neighbor_indexes(diagram.neighbor_map(), cell.member_indexes)
            assert set(cell.mis_indexes) <= ins
            # An interior query's cell should have a non-empty MIS.
            if not cell.clipped_by_box:
                assert cell.mis_indexes

    def test_crossing_a_mis_bisector_swaps_exactly_one_member(self):
        points = uniform_points(60, extent=1_000.0, seed=22)
        query = Point(500.0, 500.0)
        k = 3
        cell = order_k_cell_of_query(points, query, k)
        members = set(cell.member_indexes)
        # Take a point slightly beyond each non-box edge midpoint: its kNN
        # set must differ from the cell's members by exactly one object (the
        # incoming one being a MIS member).
        for edge in cell.polygon.edges():
            mid = edge.midpoint()
            distances = sorted(mid.distance_to(p) for p in points)
            if distances[k] - distances[k - 1] > 1e-5:
                continue  # a clipping-box edge, not a bisector edge
            outward = Point(
                mid.x + (mid.x - query.x) * 1e-3,
                mid.y + (mid.y - query.y) * 1e-3,
            )
            outside_knn = set(knn_indexes(points, outward, k))
            if outside_knn == members:
                continue  # numerically still inside; skip
            difference = outside_knn - members
            assert len(difference) == 1
            assert difference <= set(cell.mis_indexes)


class TestConstructionCostAccounting:
    def test_examined_objects_is_bounded_by_dataset(self, medium_points):
        cell = order_k_cell_of_query(medium_points, Point(500, 500), 4)
        assert 0 < cell.examined_objects <= len(medium_points)

    def test_examined_objects_much_smaller_than_dataset_for_dense_data(self):
        points = uniform_points(800, extent=1_000.0, seed=30)
        cell = order_k_cell_of_query(points, Point(500, 500), 4)
        # The distance-bound pruning must avoid scanning most of the data.
        assert cell.examined_objects < len(points) / 4
