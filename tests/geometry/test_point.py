"""Tests for repro.geometry.point."""

import math

import pytest

from repro.geometry.point import (
    Point,
    bounding_coordinates,
    centroid,
    distance,
    distance_squared,
    midpoint,
)


class TestPointBasics:
    def test_points_are_value_objects(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert Point(1.0, 2.0) != Point(2.0, 1.0)

    def test_points_are_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2

    def test_iteration_and_tuple(self):
        x, y = Point(3.0, 4.0)
        assert (x, y) == (3.0, 4.0)
        assert Point(3.0, 4.0).as_tuple() == (3.0, 4.0)

    def test_ordering_is_lexicographic(self):
        assert Point(1.0, 5.0) < Point(2.0, 0.0)
        assert Point(1.0, 1.0) < Point(1.0, 2.0)


class TestDistances:
    def test_distance_to_345_triangle(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-3.0, 7.0)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_distance_squared_matches_distance(self):
        a, b = Point(1.0, 2.0), Point(4.0, 6.0)
        assert a.distance_squared_to(b) == pytest.approx(a.distance_to(b) ** 2)

    def test_module_level_helpers(self):
        a, b = Point(0, 0), Point(6, 8)
        assert distance(a, b) == pytest.approx(10.0)
        assert distance_squared(a, b) == pytest.approx(100.0)

    def test_distance_to_self_is_zero(self):
        p = Point(2.5, -1.0)
        assert p.distance_to(p) == 0.0


class TestTransformations:
    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_scaled_about_origin(self):
        assert Point(2, 4).scaled(0.5) == Point(1, 2)

    def test_scaled_about_custom_origin(self):
        assert Point(4, 4).scaled(2.0, origin=Point(2, 2)) == Point(6, 6)

    def test_towards_endpoints(self):
        a, b = Point(0, 0), Point(10, 0)
        assert a.towards(b, 0.0) == a
        assert a.towards(b, 1.0) == b
        assert a.towards(b, 0.25) == Point(2.5, 0.0)

    def test_towards_extrapolates(self):
        a, b = Point(0, 0), Point(1, 1)
        assert a.towards(b, 2.0) == Point(2.0, 2.0)

    def test_almost_equal(self):
        assert Point(1.0, 1.0).almost_equal(Point(1.0 + 1e-12, 1.0))
        assert not Point(1.0, 1.0).almost_equal(Point(1.1, 1.0))


class TestAggregates:
    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(4, 6)) == Point(2, 3)

    def test_centroid(self):
        points = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(points) == Point(1, 1)

    def test_centroid_requires_points(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_bounding_coordinates(self):
        points = [Point(1, 5), Point(-2, 3), Point(4, -1)]
        assert bounding_coordinates(points) == (-2, -1, 4, 5)

    def test_bounding_coordinates_requires_points(self):
        with pytest.raises(ValueError):
            bounding_coordinates([])
