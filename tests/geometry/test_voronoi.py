"""Tests for repro.geometry.voronoi."""

import pytest

from repro.errors import EmptyDatasetError, GeometryError
from repro.geometry.point import Point
from repro.geometry.voronoi import VoronoiDiagram, influential_neighbor_indexes
from repro.workloads.datasets import uniform_points


class TestConstruction:
    def test_requires_sites(self):
        with pytest.raises(EmptyDatasetError):
            VoronoiDiagram([])

    def test_single_site(self):
        diagram = VoronoiDiagram([Point(0, 0)])
        assert diagram.neighbors_of(0) == set()
        assert diagram.nearest_site(Point(5, 5)) == 0

    def test_two_sites_are_neighbors(self):
        diagram = VoronoiDiagram([Point(0, 0), Point(10, 0)])
        assert diagram.are_neighbors(0, 1)
        assert diagram.neighbors_of(0) == {1}

    def test_sites_accessor_returns_copy(self):
        sites = [Point(0, 0), Point(1, 0), Point(0, 1)]
        diagram = VoronoiDiagram(sites)
        returned = diagram.sites
        returned.append(Point(9, 9))
        assert len(diagram) == 3


class TestNeighborRelation:
    def test_neighbor_map_is_symmetric(self, medium_points):
        diagram = VoronoiDiagram(medium_points)
        neighbor_map = diagram.neighbor_map()
        for site, neighbors in neighbor_map.items():
            for other in neighbors:
                assert site in neighbor_map[other]

    def test_neighbor_map_is_a_copy(self, small_points):
        diagram = VoronoiDiagram(small_points)
        neighbor_map = diagram.neighbor_map()
        neighbor_map[0].add(999)
        assert 999 not in diagram.neighbors_of(0)

    def test_every_interior_site_has_neighbors(self, medium_points):
        diagram = VoronoiDiagram(medium_points)
        for index in range(len(medium_points)):
            assert diagram.neighbors_of(index), f"site {index} has no Voronoi neighbours"


class TestCells:
    def test_cell_contains_its_site(self, small_points):
        diagram = VoronoiDiagram(small_points)
        for index, site in enumerate(small_points):
            assert diagram.cell(index).contains(site)

    def test_cells_partition_points_by_nearest_site(self, small_points):
        diagram = VoronoiDiagram(small_points)
        box = diagram.bounding_box
        for probe in box.sample_grid(12, 12):
            owner = diagram.nearest_site(probe)
            assert diagram.cell(owner).contains(probe, tolerance=1e-6)

    def test_cell_boundary_is_equidistant(self, small_points):
        diagram = VoronoiDiagram(small_points)
        # For an interior cell, the midpoint of each edge shared with a
        # neighbour is equidistant from the two sites.
        index = 4  # an interior point of the fixture layout
        cell = diagram.cell(index)
        assert not cell.is_empty

    def test_locate_matches_nearest_site(self, small_points):
        diagram = VoronoiDiagram(small_points)
        probe = Point(5.0, 5.0)
        assert diagram.locate(probe) == diagram.nearest_site(probe)


class TestInfluentialNeighborIndexes:
    def test_union_of_neighbors_minus_members(self):
        neighbor_map = {0: {1, 2}, 1: {0, 3}, 2: {0, 3}, 3: {1, 2}}
        assert influential_neighbor_indexes(neighbor_map, [0, 1]) == {2, 3}

    def test_members_are_excluded(self):
        neighbor_map = {0: {1}, 1: {0}}
        assert influential_neighbor_indexes(neighbor_map, [0, 1]) == set()

    def test_unknown_member_raises(self):
        with pytest.raises(GeometryError):
            influential_neighbor_indexes({0: set()}, [5])

    def test_matches_diagram_neighbors(self, medium_points):
        diagram = VoronoiDiagram(medium_points)
        members = {3, 17, 40}
        expected = set()
        for member in members:
            expected |= diagram.neighbors_of(member)
        expected -= members
        assert influential_neighbor_indexes(diagram.neighbor_map(), members) == expected


class TestLazyBoundingBoxGrowth:
    def test_far_outside_insert_grows_the_box(self, small_points):
        diagram = VoronoiDiagram(small_points, maintain_incrementally=True)
        outside = Point(500.0, 500.0)
        assert not diagram.bounding_box.contains_point(outside)
        index, _ = diagram.insert_site(outside)
        assert diagram.bounding_box.contains_point(outside)
        # The far site's clipped cell must now contain the site itself,
        # which the fixed construction-time box could not guarantee.
        assert diagram.cell(index).contains(outside)

    def test_inside_insert_keeps_the_box(self, small_points):
        diagram = VoronoiDiagram(small_points, maintain_incrementally=True)
        before = diagram.bounding_box
        diagram.insert_site(Point(5.0, 5.0))
        assert diagram.bounding_box == before

    def test_growth_invalidates_cached_cells(self, small_points):
        diagram = VoronoiDiagram(small_points, maintain_incrementally=True)
        hull_cell_before = diagram.cell(2)  # hull site, clipped by the box
        outside = Point(300.0, 8.0)
        diagram.insert_site(outside)
        hull_cell_after = diagram.cell(2)
        # The hull site's cell re-clips against the larger box and is no
        # longer the same polygon (it extends toward the new site now).
        assert hull_cell_before.vertices != hull_cell_after.vertices
