"""Tests for repro.geometry.primitives."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.primitives import (
    BoundingBox,
    Circle,
    Segment,
    segments_to_polyline,
)


class TestSegment:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == pytest.approx(5.0)

    def test_point_at_and_midpoint(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.point_at(0.3) == Point(3.0, 0.0)
        assert segment.midpoint() == Point(5.0, 0.0)

    def test_closest_point_interior(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.closest_point(Point(4, 5)) == Point(4, 0)

    def test_closest_point_clamps_to_endpoints(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.closest_point(Point(-5, 3)) == Point(0, 0)
        assert segment.closest_point(Point(15, 3)) == Point(10, 0)

    def test_distance_to_point(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.distance_to_point(Point(5, 7)) == pytest.approx(7.0)

    def test_degenerate_segment(self):
        segment = Segment(Point(1, 1), Point(1, 1))
        assert segment.closest_point(Point(5, 5)) == Point(1, 1)

    def test_reversed(self):
        segment = Segment(Point(0, 0), Point(1, 2))
        assert segment.reversed() == Segment(Point(1, 2), Point(0, 0))


class TestCircle:
    def test_contains_boundary_and_interior(self):
        circle = Circle(Point(0, 0), 5.0)
        assert circle.contains(Point(3, 4))
        assert circle.contains(Point(0, 0))
        assert not circle.contains(Point(4, 4))

    def test_contains_strictly(self):
        circle = Circle(Point(0, 0), 5.0)
        assert not circle.contains_strictly(Point(3, 4))
        assert circle.contains_strictly(Point(1, 1))

    def test_intersects(self):
        assert Circle(Point(0, 0), 2.0).intersects(Circle(Point(3, 0), 1.5))
        assert not Circle(Point(0, 0), 1.0).intersects(Circle(Point(5, 0), 1.0))

    def test_area(self):
        assert Circle(Point(0, 0), 2.0).area == pytest.approx(4 * math.pi)


class TestBoundingBox:
    def test_from_points(self):
        box = BoundingBox.from_points([Point(1, 2), Point(-1, 5), Point(0, 0)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-1, 0, 1, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(GeometryError):
            BoundingBox.from_points([])

    def test_empty_box_properties(self):
        box = BoundingBox.empty()
        assert box.is_empty
        assert box.area == 0.0
        assert not box.contains_point(Point(0, 0))

    def test_union_with_empty_is_identity(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.union(BoundingBox.empty()) == box
        assert BoundingBox.empty().union(box) == box

    def test_dimensions(self):
        box = BoundingBox(0, 0, 4, 2)
        assert box.width == 4
        assert box.height == 2
        assert box.area == 8
        assert box.perimeter == 12
        assert box.center == Point(2, 1)

    def test_containment(self):
        outer = BoundingBox(0, 0, 10, 10)
        inner = BoundingBox(2, 2, 5, 5)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert outer.contains_point(Point(10, 10))
        assert not outer.contains_point(Point(10.01, 10))

    def test_intersects(self):
        a = BoundingBox(0, 0, 5, 5)
        b = BoundingBox(4, 4, 8, 8)
        c = BoundingBox(6, 6, 9, 9)
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_enlargement(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.enlargement(BoundingBox(1, 1, 3, 3)) == pytest.approx(9 - 4)
        assert box.enlargement(BoundingBox(0.5, 0.5, 1, 1)) == pytest.approx(0.0)

    def test_min_max_distance_to_point(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.min_distance_to_point(Point(1, 1)) == 0.0
        assert box.min_distance_to_point(Point(5, 1)) == pytest.approx(3.0)
        assert box.max_distance_to_point(Point(0, 0)) == pytest.approx(math.hypot(2, 2))

    def test_expanded(self):
        box = BoundingBox(0, 0, 2, 2).expanded(1.0)
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-1, -1, 3, 3)

    def test_corners_are_counter_clockwise(self):
        corners = BoundingBox(0, 0, 1, 1).corners()
        assert corners == [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]

    def test_sample_grid_counts_and_containment(self):
        box = BoundingBox(0, 0, 10, 10)
        samples = list(box.sample_grid(4, 3))
        assert len(samples) == 12
        assert all(box.contains_point(p) for p in samples)

    def test_sample_grid_invalid(self):
        with pytest.raises(GeometryError):
            list(BoundingBox(0, 0, 1, 1).sample_grid(0, 2))


class TestSegmentsToPolyline:
    def test_chains_segments(self):
        segments = [
            Segment(Point(0, 0), Point(1, 0)),
            Segment(Point(1, 0), Point(1, 1)),
            Segment(Point(1, 1), Point(0, 1)),
        ]
        polyline = segments_to_polyline(segments)
        assert polyline == [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]

    def test_accepts_reversed_segments(self):
        segments = [
            Segment(Point(0, 0), Point(1, 0)),
            Segment(Point(1, 1), Point(1, 0)),
        ]
        polyline = segments_to_polyline(segments)
        assert polyline[-1] == Point(1, 1)

    def test_disconnected_raises(self):
        segments = [
            Segment(Point(0, 0), Point(1, 0)),
            Segment(Point(5, 5), Point(6, 5)),
        ]
        with pytest.raises(GeometryError):
            segments_to_polyline(segments)

    def test_empty_input(self):
        assert segments_to_polyline([]) == []
