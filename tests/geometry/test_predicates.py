"""Tests for repro.geometry.predicates."""

import math

import pytest

from repro.geometry.point import Point
from repro.geometry.predicates import (
    circumcenter,
    circumcircle,
    collinear,
    in_circumcircle,
    is_counter_clockwise,
    orientation,
    point_in_circumcircle,
    segment_intersection_parameter,
)


class TestOrientation:
    def test_counter_clockwise(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(0, 1)) == 1
        assert is_counter_clockwise(Point(0, 0), Point(1, 0), Point(0, 1))

    def test_clockwise(self):
        assert orientation(Point(0, 0), Point(0, 1), Point(1, 0)) == -1

    def test_collinear(self):
        assert orientation(Point(0, 0), Point(1, 1), Point(2, 2)) == 0
        assert collinear(Point(0, 0), Point(1, 1), Point(2, 2))

    def test_orientation_scales_with_coordinates(self):
        # Large coordinates should not flip the sign.
        assert orientation(Point(1e6, 1e6), Point(1e6 + 1, 1e6), Point(1e6, 1e6 + 1)) == 1


class TestCircumcircle:
    def test_circumcenter_of_right_triangle(self):
        # For a right triangle the circumcenter is the hypotenuse midpoint.
        center = circumcenter(Point(0, 0), Point(4, 0), Point(0, 3))
        assert center.almost_equal(Point(2.0, 1.5))

    def test_circumcircle_radius(self):
        center, radius = circumcircle(Point(0, 0), Point(2, 0), Point(1, 1))
        assert center.distance_to(Point(0, 0)) == pytest.approx(radius)
        assert center.distance_to(Point(2, 0)) == pytest.approx(radius)
        assert center.distance_to(Point(1, 1)) == pytest.approx(radius)

    def test_in_circumcircle_sign(self):
        a, b, c = Point(0, 0), Point(4, 0), Point(0, 4)
        assert in_circumcircle(a.x, a.y, b.x, b.y, c.x, c.y, 1.0, 1.0) > 0
        assert in_circumcircle(a.x, a.y, b.x, b.y, c.x, c.y, 10.0, 10.0) < 0

    def test_point_in_circumcircle_wrapper(self):
        a, b, c = Point(0, 0), Point(4, 0), Point(0, 4)
        assert point_in_circumcircle(a, b, c, Point(1, 1))
        assert not point_in_circumcircle(a, b, c, Point(10, 10))

    def test_collinear_circumcenter_raises(self):
        with pytest.raises(ZeroDivisionError):
            circumcenter(Point(0, 0), Point(1, 1), Point(2, 2))


class TestSegmentIntersection:
    def test_crossing_segments(self):
        hit, t = segment_intersection_parameter(
            Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0)
        )
        assert hit
        assert t == pytest.approx(0.5)

    def test_parallel_lines(self):
        hit, _ = segment_intersection_parameter(
            Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1)
        )
        assert not hit

    def test_intersection_beyond_segment(self):
        hit, t = segment_intersection_parameter(
            Point(0, 0), Point(1, 0), Point(5, -1), Point(5, 1)
        )
        assert hit
        assert t == pytest.approx(5.0)
