"""Tests for the incremental maintenance of repro.geometry.delaunay.

The central property: after any sequence of ``insert_site`` / ``remove_site``
operations, the live triangulation's neighbour map must be identical to a
from-scratch triangulation of the surviving points — the full rebuild is the
oracle.
"""

import random

import pytest

from repro.errors import GeometryError
from repro.geometry.delaunay import DelaunayTriangulation, delaunay_neighbors
from repro.geometry.point import Point
from repro.workloads.datasets import uniform_points


def live_neighbor_map(triangulation):
    """Neighbour map of the live structure, keyed by original point."""
    return {
        triangulation.points[index]: {
            triangulation.points[neighbor] for neighbor in neighbors
        }
        for index, neighbors in triangulation.neighbors().items()
    }


def rebuilt_neighbor_map(points):
    """Oracle: neighbour map of a from-scratch construction."""
    local = delaunay_neighbors(points)
    return {
        points[index]: {points[neighbor] for neighbor in neighbors}
        for index, neighbors in local.items()
    }


class TestInsertSite:
    def test_single_insert_matches_rebuild(self, small_points):
        triangulation = DelaunayTriangulation(small_points)
        index, changed = triangulation.insert_site(Point(4.2, 5.1))
        assert index == len(small_points)
        assert index in changed
        assert live_neighbor_map(triangulation) == rebuilt_neighbor_map(
            small_points + [Point(4.2, 5.1)]
        )

    def test_insert_outside_hull(self, small_points):
        """Ghost triangles make out-of-hull insertion a regular operation."""
        triangulation = DelaunayTriangulation(small_points)
        outside = Point(20.0, 20.0)
        triangulation.insert_site(outside)
        assert live_neighbor_map(triangulation) == rebuilt_neighbor_map(
            small_points + [outside]
        )

    def test_changed_set_is_sound(self, small_points):
        """Sites outside the reported changed set kept their neighbour lists."""
        triangulation = DelaunayTriangulation(small_points)
        before = {i: triangulation.neighbors_of(i) for i in triangulation.active_indexes()}
        _, changed = triangulation.insert_site(Point(4.2, 5.1))
        for index, neighbors in before.items():
            if index not in changed:
                assert triangulation.neighbors_of(index) == neighbors

    def test_insert_stream_matches_rebuild(self):
        rng = random.Random(77)
        points = uniform_points(60, extent=1_000.0, seed=7)
        triangulation = DelaunayTriangulation(points)
        for _ in range(40):
            point = Point(rng.uniform(-100.0, 1_100.0), rng.uniform(-100.0, 1_100.0))
            points.append(point)
            triangulation.insert_site(point)
        assert live_neighbor_map(triangulation) == rebuilt_neighbor_map(points)


class TestRemoveSite:
    def test_interior_removal_matches_rebuild(self):
        points = uniform_points(80, extent=1_000.0, seed=9)
        triangulation = DelaunayTriangulation(points)
        # Pick an interior site: one whose star has no ghost triangle, i.e.
        # removal succeeds; the centroid-most point is always interior.
        center = Point(500.0, 500.0)
        victim = min(range(len(points)), key=lambda i: points[i].distance_squared_to(center))
        changed = triangulation.remove_site(victim)
        assert victim not in triangulation.active_indexes()
        assert changed  # the hole boundary is never empty
        survivors = [p for i, p in enumerate(points) if i != victim]
        assert live_neighbor_map(triangulation) == rebuilt_neighbor_map(survivors)

    def test_hull_removal_raises(self):
        points = uniform_points(40, extent=1_000.0, seed=10)
        triangulation = DelaunayTriangulation(points)
        # The point with the smallest x coordinate is on the convex hull.
        hull_site = min(range(len(points)), key=lambda i: points[i].x)
        with pytest.raises(GeometryError):
            triangulation.remove_site(hull_site)

    def test_removed_site_rejected_twice(self):
        points = uniform_points(30, extent=1_000.0, seed=11)
        triangulation = DelaunayTriangulation(points)
        center = Point(500.0, 500.0)
        victim = min(range(len(points)), key=lambda i: points[i].distance_squared_to(center))
        triangulation.remove_site(victim)
        with pytest.raises(GeometryError):
            triangulation.remove_site(victim)
        with pytest.raises(GeometryError):
            triangulation.neighbors_of(victim)


class TestRandomizedSequences:
    def test_shuffled_insert_delete_sequence_matches_rebuild(self):
        """The incremental structure is bit-identical to a rebuild, always."""
        rng = random.Random(123)
        points = uniform_points(50, extent=1_000.0, seed=12)
        triangulation = DelaunayTriangulation(points)
        for step in range(120):
            if rng.random() < 0.45 and len(triangulation.active_indexes()) > 10:
                victim = rng.choice(triangulation.active_indexes())
                try:
                    triangulation.remove_site(victim)
                except GeometryError:
                    continue  # hull site: incremental deletion unsupported
            else:
                point = Point(rng.uniform(0.0, 1_000.0), rng.uniform(0.0, 1_000.0))
                triangulation.insert_site(point)
            survivors = [
                triangulation.points[i] for i in triangulation.active_indexes()
            ]
            assert live_neighbor_map(triangulation) == rebuilt_neighbor_map(survivors), (
                f"neighbour maps diverged after step {step}"
            )

    def test_neighbor_relation_stays_symmetric(self):
        rng = random.Random(321)
        triangulation = DelaunayTriangulation(uniform_points(40, extent=500.0, seed=13))
        for _ in range(60):
            triangulation.insert_site(
                Point(rng.uniform(0.0, 500.0), rng.uniform(0.0, 500.0))
            )
        adjacency = triangulation.neighbors()
        for index, neighbors in adjacency.items():
            for neighbor in neighbors:
                assert index in adjacency[neighbor]
