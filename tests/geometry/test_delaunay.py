"""Tests for repro.geometry.delaunay."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.delaunay import (
    DelaunayTriangulation,
    delaunay_neighbors,
)
from repro.geometry.point import Point
from repro.geometry.predicates import point_in_circumcircle
from repro.workloads.datasets import uniform_points


class TestSmallConfigurations:
    def test_single_triangle(self):
        points = [Point(0, 0), Point(1, 0), Point(0, 1)]
        triangulation = DelaunayTriangulation(points)
        assert len(triangulation.triangles) == 1
        assert triangulation.neighbors() == {0: {1, 2}, 1: {0, 2}, 2: {0, 1}}

    def test_square_produces_two_triangles(self):
        points = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        triangulation = DelaunayTriangulation(points)
        assert len(triangulation.triangles) == 2
        # Every point has at least its two square-side neighbours.
        neighbors = triangulation.neighbors()
        for index in range(4):
            assert len(neighbors[index]) >= 2

    def test_requires_three_points(self):
        with pytest.raises(GeometryError):
            DelaunayTriangulation([Point(0, 0), Point(1, 1)])

    def test_collinear_points_raise(self):
        with pytest.raises(GeometryError):
            DelaunayTriangulation([Point(0, 0), Point(1, 0), Point(2, 0)], jitter=0.0)


class TestDelaunayProperty:
    def test_empty_circumcircle_property(self):
        points = uniform_points(40, extent=100.0, seed=5)
        triangulation = DelaunayTriangulation(points)
        triangles = triangulation.triangles
        assert triangles, "expected a non-trivial triangulation"
        for triangle in triangles:
            a = points[triangle.a]
            b = points[triangle.b]
            c = points[triangle.c]
            for index, p in enumerate(points):
                if index in triangle.vertices():
                    continue
                # Allow boundary tolerance: strictly-inside violations only.
                assert not _strictly_inside(a, b, c, p), (
                    f"point {index} lies inside the circumcircle of {triangle}"
                )

    def test_euler_edge_bound(self):
        # A planar triangulation of n points has at most 3n - 6 edges.
        points = uniform_points(60, extent=100.0, seed=6)
        triangulation = DelaunayTriangulation(points)
        assert len(triangulation.edges()) <= 3 * len(points) - 6

    def test_neighbor_relation_is_symmetric(self):
        points = uniform_points(50, extent=100.0, seed=7)
        neighbors = DelaunayTriangulation(points).neighbors()
        for index, adjacent in neighbors.items():
            for other in adjacent:
                assert index in neighbors[other]

    def test_nearest_neighbor_is_delaunay_neighbor(self):
        # A classical property: each point's nearest neighbour is adjacent to
        # it in the Delaunay triangulation.
        points = uniform_points(45, extent=100.0, seed=8)
        neighbors = DelaunayTriangulation(points).neighbors()
        for index, point in enumerate(points):
            nearest = min(
                (i for i in range(len(points)) if i != index),
                key=lambda i: point.distance_squared_to(points[i]),
            )
            assert nearest in neighbors[index]


def _strictly_inside(a: Point, b: Point, c: Point, p: Point) -> bool:
    center_x, center_y, radius = _circumcircle(a, b, c)
    distance = math.hypot(p.x - center_x, p.y - center_y)
    return distance < radius * (1 - 1e-7)


def _circumcircle(a: Point, b: Point, c: Point):
    d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y))
    a2 = a.x * a.x + a.y * a.y
    b2 = b.x * b.x + b.y * b.y
    c2 = c.x * c.x + c.y * c.y
    ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d
    uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d
    return ux, uy, math.hypot(a.x - ux, a.y - uy)


class TestDelaunayNeighborsWrapper:
    def test_degenerate_sizes(self):
        assert delaunay_neighbors([]) == {}
        assert delaunay_neighbors([Point(0, 0)]) == {0: set()}
        assert delaunay_neighbors([Point(0, 0), Point(1, 0)]) == {0: {1}, 1: {0}}

    def test_collinear_fallback_links_consecutive_points(self):
        points = [Point(0, 0), Point(2, 0), Point(1, 0), Point(3, 0)]
        neighbors = delaunay_neighbors(points, backend="builtin")
        # Sorted along the line: 0, 2, 1, 3 -> chain 0-2-1-3.
        assert neighbors[0] == {2}
        assert neighbors[2] == {0, 1}
        assert neighbors[1] == {2, 3}
        assert neighbors[3] == {1}

    def test_backends_agree_on_random_points(self):
        points = uniform_points(150, extent=1_000.0, seed=11)
        builtin = delaunay_neighbors(points, backend="builtin")
        accelerated = delaunay_neighbors(points, backend="scipy")
        matching = sum(1 for i in builtin if builtin[i] == accelerated[i])
        # Near-cocircular configurations may differ by a flipped diagonal;
        # the overwhelming majority of neighbourhoods must agree exactly.
        assert matching >= 0.95 * len(points)

    def test_unknown_backend_raises(self):
        with pytest.raises(GeometryError):
            delaunay_neighbors([Point(0, 0), Point(1, 0), Point(0, 1)], backend="qhull5000")

    def test_auto_backend_handles_large_input(self):
        points = uniform_points(2_000, extent=1_000.0, seed=12)
        neighbors = delaunay_neighbors(points)
        assert len(neighbors) == len(points)
        assert all(adjacent for adjacent in neighbors.values())
