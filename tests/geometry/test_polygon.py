"""Tests for repro.geometry.polygon."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon, HalfPlane, bisector_halfplane
from repro.geometry.primitives import BoundingBox


def unit_square() -> ConvexPolygon:
    return ConvexPolygon([Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)])


class TestHalfPlane:
    def test_contains(self):
        halfplane = HalfPlane(1.0, 0.0, 2.0)  # x <= 2
        assert halfplane.contains(Point(1, 5))
        assert halfplane.contains(Point(2, 0))
        assert not halfplane.contains(Point(3, 0))

    def test_boundary_intersection(self):
        halfplane = HalfPlane(1.0, 0.0, 2.0)
        crossing = halfplane.boundary_intersection(Point(0, 0), Point(4, 4))
        assert crossing.almost_equal(Point(2, 2))

    def test_boundary_intersection_requires_crossing(self):
        halfplane = HalfPlane(1.0, 0.0, 2.0)
        with pytest.raises(GeometryError):
            halfplane.boundary_intersection(Point(0, 0), Point(0, 0))

    def test_from_normal(self):
        halfplane = HalfPlane.from_normal(0.0, 1.0, Point(0, 3))  # y <= 3
        assert halfplane.contains(Point(100, 2))
        assert not halfplane.contains(Point(0, 4))


class TestBisector:
    def test_bisector_keeps_the_near_side(self):
        halfplane = bisector_halfplane(Point(0, 0), Point(4, 0))
        assert halfplane.contains(Point(1, 0))
        assert halfplane.contains(Point(2, 10))  # on the boundary
        assert not halfplane.contains(Point(3, 0))

    def test_bisector_matches_distance_comparison(self):
        keep, discard = Point(1, 2), Point(5, -1)
        halfplane = bisector_halfplane(keep, discard)
        for probe in [Point(0, 0), Point(3, 3), Point(6, 0), Point(2.5, 1.0)]:
            expected = probe.distance_to(keep) <= probe.distance_to(discard) + 1e-9
            assert halfplane.contains(probe) == expected

    def test_identical_points_raise(self):
        with pytest.raises(GeometryError):
            bisector_halfplane(Point(1, 1), Point(1, 1))


class TestConvexPolygonBasics:
    def test_area_and_perimeter_of_square(self):
        square = unit_square()
        assert square.area == pytest.approx(1.0)
        assert square.perimeter == pytest.approx(4.0)

    def test_centroid_of_square(self):
        assert unit_square().centroid().almost_equal(Point(0.5, 0.5))

    def test_contains(self):
        square = unit_square()
        assert square.contains(Point(0.5, 0.5))
        assert square.contains(Point(0, 0))  # boundary
        assert not square.contains(Point(1.5, 0.5))

    def test_empty_polygon(self):
        empty = ConvexPolygon.empty()
        assert empty.is_empty
        assert empty.area == 0.0
        assert not empty.contains(Point(0, 0))
        with pytest.raises(GeometryError):
            empty.centroid()

    def test_from_bounding_box(self):
        polygon = ConvexPolygon.from_bounding_box(BoundingBox(0, 0, 2, 3))
        assert polygon.area == pytest.approx(6.0)

    def test_edges_count(self):
        assert len(unit_square().edges()) == 4

    def test_bounding_box_round_trip(self):
        box = unit_square().bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 1, 1)

    def test_max_distance_from(self):
        assert unit_square().max_distance_from(Point(0, 0)) == pytest.approx(math.sqrt(2))


class TestConvexHull:
    def test_hull_of_square_with_interior_points(self):
        points = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1), Point(0.5, 0.5)]
        hull = ConvexPolygon.convex_hull(points)
        assert len(hull) == 4
        assert hull.area == pytest.approx(1.0)

    def test_hull_of_two_points_is_degenerate(self):
        hull = ConvexPolygon.convex_hull([Point(0, 0), Point(1, 1)])
        assert hull.is_degenerate

    def test_hull_is_counter_clockwise(self):
        hull = ConvexPolygon.convex_hull([Point(0, 0), Point(2, 0), Point(1, 2)])
        vertices = hull.vertices
        area2 = sum(
            vertices[i].x * vertices[(i + 1) % 3].y - vertices[(i + 1) % 3].x * vertices[i].y
            for i in range(3)
        )
        assert area2 > 0


class TestClipping:
    def test_clip_square_in_half(self):
        clipped = unit_square().clip_halfplane(HalfPlane(1.0, 0.0, 0.5))  # x <= 0.5
        assert clipped.area == pytest.approx(0.5)

    def test_clip_away_everything(self):
        clipped = unit_square().clip_halfplane(HalfPlane(1.0, 0.0, -1.0))  # x <= -1
        assert clipped.is_empty

    def test_clip_keeps_everything(self):
        clipped = unit_square().clip_halfplane(HalfPlane(1.0, 0.0, 5.0))  # x <= 5
        assert clipped.area == pytest.approx(1.0)

    def test_clip_multiple_halfplanes(self):
        clipped = unit_square().clip_halfplanes(
            [HalfPlane(1.0, 0.0, 0.75), HalfPlane(0.0, 1.0, 0.5)]
        )
        assert clipped.area == pytest.approx(0.75 * 0.5)

    def test_clipping_preserves_convexity_boundary(self):
        # Clip a square with a diagonal bisector: the result is a triangle.
        clipped = unit_square().clip_halfplane(bisector_halfplane(Point(0, 0), Point(1, 1)))
        assert clipped.area == pytest.approx(0.5)
        assert clipped.contains(Point(0.1, 0.1))
        assert not clipped.contains(Point(0.9, 0.9))

    def test_intersection_of_polygons(self):
        other = ConvexPolygon([Point(0.5, 0.5), Point(1.5, 0.5), Point(1.5, 1.5), Point(0.5, 1.5)])
        intersection = unit_square().intersection(other)
        assert intersection.area == pytest.approx(0.25)

    def test_intersection_with_empty(self):
        assert unit_square().intersection(ConvexPolygon.empty()).is_empty
