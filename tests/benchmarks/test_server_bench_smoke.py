"""Tier-1 smoke tests for the PR3 serving-engine benchmarks.

Same rationale as ``test_road_bench_smoke.py``: the benchmark modules are
only collected when invoked explicitly, so these smoke tests drive their
``--smoke`` tiny-N modes inside the default ``pytest -x -q`` run — a
regression on the serving path (delta dispatch, lazy settling, the road
batch crossover machinery) fails tier-1 immediately instead of waiting for
somebody to run the benchmarks by hand.

Timing assertions are deliberately absent: tiny-N wall clocks are noise.
The smoke runs assert structural invariants only (identical answers across
invalidation modes, strictly fewer retrievals in delta mode).
"""

import pathlib
import sys

# The benchmarks package lives at the repository root, next to tests/.
_REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from benchmarks.bench_pr3_road_batch_crossover import (
    run_benchmark as road_crossover_benchmark,
)
from benchmarks.bench_pr3_server_delta_refresh import (
    run_benchmark as delta_refresh_benchmark,
)


class TestServerBenchmarkSmoke:
    def test_pr3_delta_refresh_smoke_answers_identical_fewer_retrievals(self):
        rows, speedups, answers_identical = delta_refresh_benchmark(smoke=True)
        assert answers_identical
        by_mode = {row["invalidation"]: row for row in rows}
        assert by_mode["delta"]["retrievals"] < by_mode["flag"]["retrievals"]
        assert by_mode["delta"]["transmitted"] < by_mode["flag"]["transmitted"]
        # The flag oracle never absorbs anything; the delta mode does.
        assert by_mode["flag"]["absorbed"] == 0
        assert speedups["serving"] > 0 and speedups["wall"] > 0

    def test_pr3_road_crossover_smoke_runs_both_strategies(self):
        rows, _ = road_crossover_benchmark(smoke=True)
        assert rows and all(
            row["incremental_s"] > 0 and row["bulk_rebuild_s"] > 0 for row in rows
        )
