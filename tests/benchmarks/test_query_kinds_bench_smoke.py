"""Tier-1 smoke test for the PR9 continuous-query-kinds benchmark.

Same rationale as the other benchmark smoke tests: the benchmark modules
are only collected when invoked explicitly, so this drives the ``--smoke``
tiny-N mode inside the default ``pytest -x -q`` run — a regression on the
query-kind registry, a new processor, or the kind-blind wire path fails
tier-1 immediately instead of waiting for somebody to run the benchmark
by hand.

Timing assertions are deliberately absent (tiny-N wall clocks are noise);
the smoke run asserts the structural invariants: the full kind ×
invalidation matrix is present, both modes of every kind report the same
answer stream bit for bit, and the mixed in-process / TCP / process-delta
replay agrees everywhere.
"""

import pathlib
import sys

# The benchmarks package lives at the repository root, next to tests/.
_REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from benchmarks.bench_pr9_query_kinds import (
    KINDS,
    SMOKE_CHECK_NAMES,
    run_benchmark as query_kinds_benchmark,
)


class TestQueryKindsBenchmarkSmoke:
    def test_pr9_query_kinds_smoke_matrix(self):
        rows, checks = query_kinds_benchmark(smoke=True)
        for name in SMOKE_CHECK_NAMES:
            assert checks[name], name
        by_cell = {(row["kind"], row["invalidation"]): row for row in rows}
        assert set(by_cell) == {
            (kind, invalidation)
            for kind in KINDS
            for invalidation in ("delta", "flag")
        }
        for row in rows:
            assert row["recomputes"] > 0, row
            # The blanket oracle never absorbs — that is what makes it the
            # oracle; the delta column's absorptions are asserted at full
            # N only (tiny smoke streams may legitimately absorb nothing).
            if row["invalidation"] == "flag":
                assert row["absorbed"] == 0, row
