"""Tier-1 smoke test for the PR6 durability benchmark.

Same rationale as the other benchmark smoke tests: the benchmark modules
are only collected when invoked explicitly, so this drives the ``--smoke``
tiny-N mode inside the default ``pytest -x -q`` run — a regression on the
durability path (WAL transparency, checkpointing, warm and cold recovery)
fails tier-1 immediately instead of waiting for somebody to run the
benchmark by hand.

Timing assertions are deliberately absent: tiny-N wall clocks are noise.
The smoke run asserts structural invariants only (the durable run is
bit-identical to the plain run, the directory recovers healthily, both
recovery paths agree, checkpoints actually shorten the replay suffix).
"""

import pathlib
import sys

# The benchmarks package lives at the repository root, next to tests/.
_REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from benchmarks.bench_pr6_durability import run_benchmark as durability_benchmark


class TestDurabilityBenchmarkSmoke:
    def test_pr6_durability_smoke_equivalence_and_recovery(self):
        rows, checks = durability_benchmark(smoke=True)
        assert checks["durable_answers_bit_identical"]
        assert checks["durable_counters_identical"]
        assert checks["directory_healthy_after_run"]
        assert checks["warm_recovery_matches_run"]
        assert checks["cold_recovery_matches_warm"]
        assert checks["warm_replays_a_suffix_only"]
        by_run = {row["run"]: row for row in rows}
        assert set(by_run) == {"wal-off", "wal-on", "recover-warm", "recover-cold"}
        # The plain run logs nothing; the durable run logs every exchange
        # and checkpoints along the way.
        assert by_run["wal-off"]["wal_records"] == 0
        assert by_run["wal-on"]["wal_records"] > 0
        assert by_run["wal-on"]["snapshots"] >= 2  # initial + periodic
        # Warm recovery replays strictly fewer records than the cold path.
        assert (
            by_run["recover-warm"]["wal_records"]
            < by_run["recover-cold"]["wal_records"]
        )
