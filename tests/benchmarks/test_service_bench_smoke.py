"""Tier-1 smoke test for the PR4 service-dispatch benchmark.

Same rationale as the other benchmark smoke tests: the benchmark modules
are only collected when invoked explicitly, so this drives the ``--smoke``
tiny-N mode inside the default ``pytest -x -q`` run — a regression on the
service path (session dispatch, communication accounting, sharded
determinism) fails tier-1 immediately instead of waiting for somebody to
run the benchmark by hand.

Timing assertions are deliberately absent: tiny-N wall clocks are noise.
The smoke run asserts structural invariants only (bit-identical answers
and identical communication counters across worker counts, a non-trivial
communication bill).
"""

import pathlib
import sys

# The benchmarks package lives at the repository root, next to tests/.
_REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from benchmarks.bench_pr4_service_dispatch import (
    run_benchmark as service_dispatch_benchmark,
)


class TestServiceBenchmarkSmoke:
    def test_pr4_dispatch_smoke_workers_are_bit_identical(self):
        rows, answers_identical, communication_identical = service_dispatch_benchmark(
            smoke=True
        )
        assert answers_identical
        assert communication_identical
        by_workers = {row["workers"]: row for row in rows}
        assert set(by_workers) == {1, 4}
        # The communication bill is real and identical either way.
        assert by_workers[1]["messages"] > 0
        assert by_workers[1]["objects"] > 0
        assert by_workers[1]["messages"] == by_workers[4]["messages"]
        assert by_workers[1]["objects"] == by_workers[4]["objects"]
