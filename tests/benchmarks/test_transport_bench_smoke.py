"""Tier-1 smoke test for the PR5 transport benchmark.

Same rationale as the other benchmark smoke tests: the benchmark modules
are only collected when invoked explicitly, so this drives the ``--smoke``
tiny-N mode inside the default ``pytest -x -q`` run — a regression on the
transport path (codec sizes, loopback serving, multi-process sharding)
fails tier-1 immediately instead of waiting for somebody to run the
benchmark by hand.

Timing assertions are deliberately absent: tiny-N wall clocks are noise.
The smoke run asserts structural invariants only (bit-identical answers
and identical message/object counters across transports, exact
measured-vs-predicted byte reconciliation, a real wire bill).
"""

import pathlib
import sys

# The benchmarks package lives at the repository root, next to tests/.
_REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from benchmarks.bench_pr5_transport import run_benchmark as transport_benchmark


class TestTransportBenchmarkSmoke:
    def test_pr5_transport_smoke_equivalence_and_byte_reconciliation(self):
        rows, checks = transport_benchmark(smoke=True)
        assert checks["answers_bit_identical"]
        assert checks["message_object_counters_identical"]
        assert checks["tcp_measured_bytes_match_codec_prediction"]
        assert checks["tcp_engine_bytes_match_client_measurement"]
        by_transport = {row["transport"]: row for row in rows}
        assert set(by_transport) == {"in-process", "loopback-tcp", "process-x2"}
        # In-process serving ships messages but no bytes; the wire ships both.
        assert by_transport["in-process"]["wire_bytes"] == 0
        assert by_transport["loopback-tcp"]["wire_bytes"] > 0
        assert by_transport["process-x2"]["wire_bytes"] > 0
        assert (
            by_transport["loopback-tcp"]["messages"]
            == by_transport["in-process"]["messages"]
        )
