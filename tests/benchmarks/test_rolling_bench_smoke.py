"""Tier-1 smoke test for the PR7 no-downtime benchmark.

Same rationale as the other benchmark smoke tests: the benchmark modules
are only collected when invoked explicitly, so this drives the ``--smoke``
tiny-N mode inside the default ``pytest -x -q`` run — a regression on the
no-downtime path (group-commit durability barriers, rolling shard
drain-and-handoff, TCP graceful restart with session re-adoption) fails
tier-1 immediately instead of waiting for somebody to run the benchmark
by hand.

Timing assertions are deliberately absent: tiny-N wall clocks are noise.
The smoke run asserts structural invariants only (acked appends are
durable with fewer fsyncs, every shard is drained and replaced without
changing a single answer or counter, the restarted TCP run is
bit-identical to the continuous one, zero sessions dropped anywhere).
"""

import pathlib
import sys

# The benchmarks package lives at the repository root, next to tests/.
_REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from benchmarks.bench_pr7_rolling import CHECK_NAMES, run_benchmark as rolling_benchmark


class TestRollingBenchmarkSmoke:
    def test_pr7_rolling_smoke_no_downtime_oracle(self):
        rows, checks = rolling_benchmark(smoke=True)
        for name in CHECK_NAMES:
            assert checks[name], name
        by_run = {row["run"]: row for row in rows}
        assert set(by_run) == {
            "wal-always",
            "wal-group",
            "shard-steady",
            "shard-rolled",
            "tcp-continuous",
            "tcp-restarted",
        }
        # The steady run never drains; the rolled run drains every shard.
        assert by_run["shard-steady"]["drains"] == 0
        assert by_run["shard-rolled"]["drains"] == by_run["shard-rolled"]["writers"]
        # Group commit really batched: fewer fsyncs than appends.
        assert by_run["wal-group"]["fsyncs"] < by_run["wal-group"]["appends"]
