"""Tier-1 smoke test for the PR10 observability benchmark.

Same rationale as the other benchmark smoke tests: the benchmark modules
are only collected when invoked explicitly, so this drives the ``--smoke``
tiny-N mode inside the default ``pytest -x -q`` run — a regression on the
zero-semantic-cost bar (an instrument that steers an answer or perturbs
a counter) fails tier-1 immediately instead of waiting for somebody to
run the benchmark by hand.

Timing assertions are deliberately absent: a 12-epoch smoke stream
finishes in milliseconds, so its observed-vs-blind overhead ratio is
pure scheduler noise.  The <5% wall gate is enforced only by the full
benchmark (``python benchmarks/bench_pr10_observability.py``), whose
result is committed as ``BENCH_PR10.json``.
"""

import pathlib
import sys

# The benchmarks package lives at the repository root, next to tests/.
_REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from benchmarks.bench_pr10_observability import run_benchmark as obs_benchmark


class TestObservabilityBenchmarkSmoke:
    def test_pr10_observability_smoke_equivalence(self):
        rows, checks = obs_benchmark(smoke=True)
        assert checks["bit_identical_all_cells"]
        by_cell = {row["cell"]: row for row in rows}
        assert set(by_cell) == {"local", "tcp"}
        # Both modes really ran in both cells and produced a cost floor.
        for row in by_cell.values():
            assert row["obs_on_s"] > 0.0
            assert row["obs_off_s"] > 0.0
