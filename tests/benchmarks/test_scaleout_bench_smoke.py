"""Tier-1 smoke test for the PR8 scale-out benchmark.

Same rationale as the other benchmark smoke tests: the benchmark modules
are only collected when invoked explicitly, so this drives the ``--smoke``
tiny-N mode inside the default ``pytest -x -q`` run — a regression on the
delta-replication path (leader election, IndexDelta fan-out, replica
patching) fails tier-1 immediately instead of waiting for somebody to run
the benchmark by hand.

Timing assertions are deliberately absent: a 12-epoch stream over freshly
forked workers is all fork latency, so tiny-N wall clocks are noise.  The
smoke run asserts structural invariants only: every matrix cell is
bit-identical to the single-worker reference, the recompute cells report
no delta-apply time, and the delta cells really shipped (their replicas
spent time patching instead of recomputing).
"""

import pathlib
import sys

# The benchmarks package lives at the repository root, next to tests/.
_REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from benchmarks.bench_pr8_scaleout import (
    SMOKE_CHECK_NAMES,
    SMOKE_WORKER_COUNTS,
    run_benchmark as scaleout_benchmark,
)


class TestScaleoutBenchmarkSmoke:
    def test_pr8_scaleout_smoke_equivalence_matrix(self):
        rows, checks = scaleout_benchmark(smoke=True)
        for name in SMOKE_CHECK_NAMES:
            assert checks[name], name
        by_cell = {
            (row["leg"], row["workers"], row["replication"]): row for row in rows
        }
        top = max(SMOKE_WORKER_COUNTS)
        assert ("reference", 1, "recompute") in by_cell
        assert ("reference", top, "delta") in by_cell
        assert ("update-heavy", top, "recompute") in by_cell
        assert ("update-heavy", top, "delta") in by_cell
        for cell, row in by_cell.items():
            if cell[2] == "recompute":
                assert row["apply_s"] == 0.0
        # The delta cells really shipped: replicas patched, nothing more.
        assert by_cell[("reference", top, "delta")]["apply_s"] > 0.0
        assert (
            by_cell[("reference", top, "delta")]["maint_s"]
            < by_cell[("reference", top, "recompute")]["maint_s"]
        )
