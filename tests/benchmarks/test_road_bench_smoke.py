"""Tier-1 smoke tests for the road benchmarks.

The benchmark modules under ``benchmarks/`` are only collected when invoked
explicitly (their files are named ``bench_*``), so a regression on the
perf-critical road paths — the road server update loop, the incremental
diagram repair, the batch crossover machinery — used to surface only when
somebody ran the benchmarks by hand.  These smoke tests import the road
benchmarks and drive their ``--smoke`` tiny-N modes inside the default
``pytest -x -q`` run, so a perf-path breakage fails tier-1 immediately.

Timing assertions are deliberately absent: tiny-N wall clocks are noise.
The smoke runs assert structural invariants only.
"""

import pathlib
import sys

import pytest

# The benchmarks package lives at the repository root, next to tests/.
_REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from benchmarks.bench_e5_road_vary_k import sweep as e5_sweep
from benchmarks.bench_fig2_road_mis_ins import figure2_rows
from benchmarks.bench_fig3_road_demo import run_demo as fig3_run_demo
from benchmarks.bench_pr2_batch_crossover import run_benchmark as crossover_benchmark
from benchmarks.bench_pr2_road_update_throughput import run_update_stream


class TestRoadBenchmarkSmoke:
    def test_e5_smoke_preserves_the_method_ordering(self):
        rows = e5_sweep(smoke=True)
        by_method = {row["method"]: row for row in rows}
        assert {"Naive-road", "INS-road", "V*-road"} <= set(by_method)
        assert (
            by_method["INS-road"]["recomputations"]
            < by_method["Naive-road"]["recomputations"]
        )

    def test_fig2_smoke_theorem1_holds(self):
        rows = figure2_rows(smoke=True)
        assert rows and all(row["theorem1_holds"] for row in rows)

    def test_fig3_smoke_runs_the_demo(self):
        row, run = fig3_run_demo(smoke=True)
        assert row["recomputations"] < row["timestamps"]

    def test_pr2_update_stream_smoke_runs_both_maintenance_modes(self):
        for maintenance in ("incremental", "rebuild"):
            seconds = run_update_stream(maintenance, smoke=True)
            assert seconds > 0.0

    def test_pr2_batch_crossover_smoke(self):
        rows, _ = crossover_benchmark(smoke=True)
        assert rows and all(row["incremental_s"] > 0 and row["bulk_rebuild_s"] > 0 for row in rows)
