"""Tests for repro.index.grid."""

import pytest

from repro.errors import ConfigurationError, EmptyDatasetError, QueryError
from repro.geometry.point import Point
from repro.geometry.primitives import BoundingBox
from repro.index.grid import GridIndex
from repro.workloads.datasets import clustered_points, uniform_points


def brute_knn(points, query, k):
    order = sorted(range(len(points)), key=lambda i: (query.distance_squared_to(points[i]), i))
    return order[:k]


class TestConstruction:
    def test_requires_items(self):
        with pytest.raises(EmptyDatasetError):
            GridIndex([])

    def test_requires_positive_resolution(self):
        with pytest.raises(ConfigurationError):
            GridIndex([(Point(0, 0), 0)], cells_per_axis=0)

    def test_len(self):
        points = uniform_points(37, extent=10.0, seed=70)
        index = GridIndex([(p, i) for i, p in enumerate(points)])
        assert len(index) == 37


class TestKNN:
    @pytest.mark.parametrize("resolution", [1, 4, 16, 64])
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_knn_matches_brute_force(self, resolution, k):
        points = uniform_points(150, extent=400.0, seed=71)
        index = GridIndex([(p, i) for i, p in enumerate(points)], cells_per_axis=resolution)
        query = Point(123.0, 321.0)
        assert index.nearest_payloads(query, k) == brute_knn(points, query, k)

    def test_query_outside_data_extent(self):
        points = uniform_points(60, extent=100.0, seed=72)
        index = GridIndex([(p, i) for i, p in enumerate(points)], cells_per_axis=8)
        query = Point(500.0, -300.0)
        assert index.nearest_payloads(query, 4) == brute_knn(points, query, 4)

    def test_clustered_data(self):
        points = clustered_points(150, clusters=3, extent=400.0, seed=73)
        index = GridIndex([(p, i) for i, p in enumerate(points)], cells_per_axis=16)
        query = Point(200.0, 200.0)
        assert index.nearest_payloads(query, 8) == brute_knn(points, query, 8)

    def test_invalid_k(self):
        index = GridIndex([(Point(0, 0), 0)])
        with pytest.raises(QueryError):
            index.nearest_neighbors(Point(0, 0), 0)


class TestRange:
    def test_range_matches_brute_force(self):
        points = uniform_points(130, extent=200.0, seed=74)
        index = GridIndex([(p, i) for i, p in enumerate(points)], cells_per_axis=10)
        box = BoundingBox(30, 40, 120, 160)
        expected = {i for i, p in enumerate(points) if box.contains_point(p)}
        assert {payload for _, payload in index.range_search(box)} == expected

    def test_range_covering_everything(self):
        points = uniform_points(40, extent=50.0, seed=75)
        index = GridIndex([(p, i) for i, p in enumerate(points)], cells_per_axis=5)
        box = BoundingBox(-10, -10, 60, 60)
        assert len(index.range_search(box)) == 40
