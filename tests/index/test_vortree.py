"""Tests for repro.index.vortree."""

import pytest

from repro.errors import EmptyDatasetError, QueryError
from repro.geometry.point import Point
from repro.geometry.voronoi import VoronoiDiagram
from repro.index.vortree import VoRTree
from repro.workloads.datasets import uniform_points


def brute_knn(points, query, k):
    order = sorted(range(len(points)), key=lambda i: (query.distance_squared_to(points[i]), i))
    return order[:k]


class TestConstruction:
    def test_requires_points(self):
        with pytest.raises(EmptyDatasetError):
            VoRTree([])

    def test_len_and_point_accessors(self, medium_points):
        tree = VoRTree(medium_points)
        assert len(tree) == len(medium_points)
        assert tree.point(3) == medium_points[3]
        assert tree.points == medium_points


class TestNeighborLists:
    def test_neighbor_lists_match_voronoi_diagram(self, small_points):
        tree = VoRTree(small_points)
        diagram = VoronoiDiagram(small_points)
        for index in range(len(small_points)):
            assert tree.voronoi_neighbors(index) == diagram.neighbors_of(index)

    def test_neighbor_lists_are_read_only(self, small_points):
        """voronoi_neighbors returns a frozen view, not a per-call copy."""
        tree = VoRTree(small_points)
        neighbors = tree.voronoi_neighbors(0)
        assert isinstance(neighbors, frozenset)
        with pytest.raises(AttributeError):
            neighbors.add(999)
        assert 999 not in tree.voronoi_neighbors(0)


class TestRetrieval:
    def test_nearest_matches_brute_force(self, medium_points):
        tree = VoRTree(medium_points)
        query = Point(345.0, 678.0)
        assert tree.nearest(query, 9) == brute_knn(medium_points, query, 9)

    def test_nearest_validation(self, medium_points):
        tree = VoRTree(medium_points)
        with pytest.raises(QueryError):
            tree.nearest(Point(0, 0), 0)
        with pytest.raises(QueryError):
            tree.nearest(Point(0, 0), len(medium_points) + 1)

    def test_influential_neighbor_set_definition(self, medium_points):
        """I(R) = union of Voronoi neighbours of R, minus R (Definition 4)."""
        tree = VoRTree(medium_points)
        members = [5, 80, 120]
        expected = set()
        for member in members:
            expected |= tree.voronoi_neighbors(member)
        expected -= set(members)
        assert tree.influential_neighbor_set(members) == expected

    def test_retrieve_returns_consistent_pair(self, medium_points):
        tree = VoRTree(medium_points)
        query = Point(500.0, 500.0)
        nearest, ins = tree.retrieve(query, 8)
        assert nearest == brute_knn(medium_points, query, 8)
        assert ins == tree.influential_neighbor_set(nearest)
        assert not (ins & set(nearest))
