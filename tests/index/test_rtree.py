"""Tests for repro.index.rtree."""

import random

import pytest

from repro.errors import ConfigurationError, QueryError
from repro.geometry.point import Point
from repro.geometry.primitives import BoundingBox
from repro.index.rtree import RTree, RTreeEntry
from repro.workloads.datasets import uniform_points


def build_tree(points, bulk=True, max_entries=8):
    entries = [RTreeEntry(p, i) for i, p in enumerate(points)]
    if bulk:
        return RTree.bulk_load(entries, max_entries=max_entries)
    tree = RTree(max_entries=max_entries)
    for entry in entries:
        tree.insert(entry.point, entry.payload)
    return tree


def brute_knn(points, query, k):
    order = sorted(range(len(points)), key=lambda i: (query.distance_squared_to(points[i]), i))
    return [i for i in order[:k]]


class TestConstruction:
    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            RTree(max_entries=2)
        with pytest.raises(ConfigurationError):
            RTree(max_entries=8, min_entries=7)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert list(tree.entries()) == []
        assert list(tree.incremental_nearest(Point(0, 0))) == []

    def test_bulk_load_size_and_entries(self, medium_points):
        tree = build_tree(medium_points)
        assert len(tree) == len(medium_points)
        assert sorted(e.payload for e in tree.entries()) == list(range(len(medium_points)))

    def test_bulk_load_height_is_logarithmic(self, medium_points):
        tree = build_tree(medium_points, max_entries=8)
        assert tree.height <= 4

    def test_insert_matches_bulk_load_content(self, medium_points):
        bulk = build_tree(medium_points, bulk=True)
        incremental = build_tree(medium_points, bulk=False)
        assert sorted(e.payload for e in bulk.entries()) == sorted(
            e.payload for e in incremental.entries()
        )


class TestKNNSearch:
    @pytest.mark.parametrize("k", [1, 3, 10, 25])
    def test_knn_matches_brute_force_bulk(self, medium_points, k):
        tree = build_tree(medium_points)
        query = Point(321.0, 654.0)
        expected = brute_knn(medium_points, query, k)
        got = tree.nearest_payloads(query, k)
        assert got == expected

    @pytest.mark.parametrize("k", [1, 5, 17])
    def test_knn_matches_brute_force_incremental_insertions(self, medium_points, k):
        tree = build_tree(medium_points, bulk=False)
        query = Point(777.0, 111.0)
        assert tree.nearest_payloads(query, k) == brute_knn(medium_points, query, k)

    def test_incremental_nearest_is_sorted(self, medium_points):
        tree = build_tree(medium_points)
        distances = [d for d, _ in tree.incremental_nearest(Point(500, 500))]
        assert distances == sorted(distances)
        assert len(distances) == len(medium_points)

    def test_nearest_payloads_requires_positive_k(self, medium_points):
        tree = build_tree(medium_points)
        with pytest.raises(QueryError):
            tree.nearest_payloads(Point(0, 0), 0)

    def test_node_access_counter_increases(self, medium_points):
        tree = build_tree(medium_points)
        tree.reset_counters()
        tree.nearest_neighbors(Point(500, 500), 5)
        assert tree.node_accesses > 0
        tree.reset_counters()
        assert tree.node_accesses == 0


class TestRangeSearch:
    def test_range_matches_brute_force(self, medium_points):
        tree = build_tree(medium_points)
        box = BoundingBox(200, 200, 600, 700)
        expected = {i for i, p in enumerate(medium_points) if box.contains_point(p)}
        got = {e.payload for e in tree.range_search(box)}
        assert got == expected

    def test_range_outside_data_is_empty(self, medium_points):
        tree = build_tree(medium_points)
        assert tree.range_search(BoundingBox(5000, 5000, 6000, 6000)) == []

    def test_full_range_returns_everything(self, medium_points):
        tree = build_tree(medium_points)
        box = BoundingBox.from_points(medium_points)
        assert len(tree.range_search(box)) == len(medium_points)


class TestDeletion:
    def test_delete_existing_entry(self, medium_points):
        tree = build_tree(medium_points)
        target = medium_points[17]
        assert tree.delete(target, 17)
        assert len(tree) == len(medium_points) - 1
        assert 17 not in tree.nearest_payloads(target, 3)

    def test_delete_missing_entry_returns_false(self, medium_points):
        tree = build_tree(medium_points)
        assert not tree.delete(Point(-999, -999))
        assert len(tree) == len(medium_points)

    def test_delete_many_then_query(self, medium_points):
        tree = build_tree(medium_points, max_entries=6)
        removed = set(range(0, len(medium_points), 3))
        for index in removed:
            assert tree.delete(medium_points[index], index)
        remaining_points = [p for i, p in enumerate(medium_points) if i not in removed]
        remaining_ids = [i for i in range(len(medium_points)) if i not in removed]
        query = Point(444.0, 555.0)
        expected_order = sorted(
            remaining_ids, key=lambda i: (query.distance_squared_to(medium_points[i]), i)
        )[:7]
        assert tree.nearest_payloads(query, 7) == expected_order

    def test_delete_all_entries(self):
        points = uniform_points(30, extent=100.0, seed=50)
        tree = build_tree(points, max_entries=4)
        for index, point in enumerate(points):
            assert tree.delete(point, index)
        assert len(tree) == 0
        assert list(tree.entries()) == []


class TestMixedWorkload:
    def test_random_insert_delete_query_sequence(self):
        rng = random.Random(99)
        reference = {}
        tree = RTree(max_entries=6)
        next_id = 0
        for step in range(300):
            action = rng.random()
            if action < 0.6 or not reference:
                point = Point(rng.uniform(0, 100), rng.uniform(0, 100))
                tree.insert(point, next_id)
                reference[next_id] = point
                next_id += 1
            else:
                victim = rng.choice(list(reference))
                assert tree.delete(reference[victim], victim)
                del reference[victim]
        assert len(tree) == len(reference)
        query = Point(50, 50)
        k = min(10, len(reference))
        expected = sorted(
            reference, key=lambda i: (query.distance_squared_to(reference[i]), i)
        )[:k]
        assert tree.nearest_payloads(query, k) == expected
