"""Randomized equivalence tests for the incremental VoR-tree update path.

The acceptance property of the incremental maintenance work: a VoRTree that
has absorbed an arbitrary shuffled sequence of object inserts and deletes
must hold neighbour maps *identical* to a from-scratch rebuild over the
surviving objects — :meth:`VoRTree.full_rebuild` (the pre-incremental O(n)
path) is the oracle.
"""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.voronoi import VoronoiDiagram
from repro.index.vortree import VoRTree
from repro.workloads.datasets import uniform_points


def snapshot_neighbor_map(tree):
    return {index: set(tree.voronoi_neighbors(index)) for index in tree.active_indexes()}


def fresh_diagram_map(tree):
    """Independent oracle: a brand-new VoronoiDiagram over the active points."""
    active = tree.active_indexes()
    diagram = VoronoiDiagram([tree.point(index) for index in active])
    return {
        active[local]: {active[neighbor] for neighbor in neighbors}
        for local, neighbors in diagram.neighbor_map().items()
    }


def apply_random_stream(tree, rng, operations, extent):
    for _ in range(operations):
        if rng.random() < 0.45 and len(tree) > 5:
            tree.delete(rng.choice(tree.active_indexes()))
        else:
            tree.insert(Point(rng.uniform(0.0, extent), rng.uniform(0.0, extent)))


class TestIncrementalEquivalence:
    def test_incremental_matches_full_rebuild_after_shuffled_stream(self):
        rng = random.Random(42)
        tree = VoRTree(uniform_points(100, extent=1_000.0, seed=21))
        for step in range(150):
            apply_random_stream(tree, rng, 1, 1_000.0)
            incremental = snapshot_neighbor_map(tree)
            tree.full_rebuild()
            rebuilt = snapshot_neighbor_map(tree)
            assert incremental == rebuilt, f"diverged at step {step}"
            # full_rebuild replaced the diagram; keep exercising the
            # incremental path from the rebuilt state.

    def test_incremental_matches_independent_diagram(self):
        rng = random.Random(43)
        tree = VoRTree(uniform_points(80, extent=1_000.0, seed=22))
        apply_random_stream(tree, rng, 120, 1_000.0)
        assert snapshot_neighbor_map(tree) == fresh_diagram_map(tree)

    def test_tombstones_never_leak_into_neighbor_lists(self):
        rng = random.Random(44)
        tree = VoRTree(uniform_points(60, extent=1_000.0, seed=23))
        apply_random_stream(tree, rng, 80, 1_000.0)
        active = set(tree.active_indexes())
        for index in active:
            assert tree.voronoi_neighbors(index) <= active

    def test_positions_view_is_live(self):
        tree = VoRTree(uniform_points(20, extent=100.0, seed=24))
        view = tree.positions
        index, _ = tree.insert(Point(55.0, 66.0))
        assert view[index] == Point(55.0, 66.0)
        assert len(view) == len(tree.points)

    def test_mutations_report_their_deltas(self):
        """insert/delete return exactly the objects whose lists changed."""
        tree = VoRTree(uniform_points(50, extent=1_000.0, seed=26))
        before = snapshot_neighbor_map(tree)
        index, changed = tree.insert(Point(431.0, 567.0))
        after = snapshot_neighbor_map(tree)
        expected = {
            obj for obj in after if before.get(obj) != after[obj]
        }
        assert index in changed
        assert expected <= changed
        removed, changed = tree.delete(index)
        assert removed
        final = snapshot_neighbor_map(tree)
        assert index not in changed
        assert {obj for obj in final if final[obj] != after.get(obj)} <= changed


class TestBatchUpdate:
    def test_small_batch_matches_per_object_updates(self):
        base = uniform_points(90, extent=1_000.0, seed=25)
        batched = VoRTree(list(base))
        sequential = VoRTree(list(base))

        inserts = [Point(10.0, 20.0), Point(500.0, 510.0), Point(990.0, 40.0)]
        deletes = [3, 17, 55]
        new_indexes, removed, changed = batched.batch_update(inserts, deletes)

        for index in deletes:
            sequential.delete(index)
        expected_new = [sequential.insert(point)[0] for point in inserts]

        assert new_indexes == expected_new
        assert removed == deletes
        # The reported delta never contains deleted objects and always
        # covers the inserted ones.
        assert changed.isdisjoint(removed)
        assert set(new_indexes) <= changed
        assert snapshot_neighbor_map(batched) == snapshot_neighbor_map(sequential)

    def test_large_batch_takes_bulk_path_and_matches(self):
        base = uniform_points(60, extent=1_000.0, seed=26)
        batched = VoRTree(list(base))
        sequential = VoRTree(list(base))
        rng = random.Random(27)
        inserts = [
            Point(rng.uniform(0.0, 1_000.0), rng.uniform(0.0, 1_000.0))
            for _ in range(25)
        ]
        deletes = list(range(0, 40, 2))  # 20 deletions: well above the threshold
        batched.batch_update(inserts, deletes)
        for index in deletes:
            sequential.delete(index)
        for point in inserts:
            sequential.insert(point)
        assert snapshot_neighbor_map(batched) == snapshot_neighbor_map(sequential)

    def test_inactive_deletes_are_skipped(self):
        tree = VoRTree(uniform_points(30, extent=100.0, seed=28))
        tree.delete(5)
        new_indexes, removed, _ = tree.batch_update(deletes=[5, 7, 999])
        assert new_indexes == []
        assert removed == [7]

    def test_empty_batch_is_a_noop(self):
        tree = VoRTree(uniform_points(20, extent=100.0, seed=29))
        before = snapshot_neighbor_map(tree)
        assert tree.batch_update() == ([], [], set())
        assert snapshot_neighbor_map(tree) == before

    def test_draining_batch_is_rejected_before_mutating(self):
        tree = VoRTree(uniform_points(10, extent=100.0, seed=30))
        before = snapshot_neighbor_map(tree)
        with pytest.raises(Exception):
            tree.batch_update(deletes=list(range(10)))
        # Nothing was applied: the tree is exactly as before.
        assert len(tree) == 10
        assert snapshot_neighbor_map(tree) == before
        assert tree.nearest(Point(50.0, 50.0), 10)

    def test_full_replacement_batch_is_allowed(self):
        """Deleting every pre-existing object is fine when inserts survive."""
        base = uniform_points(4, extent=100.0, seed=31)
        tree = VoRTree(list(base))
        replacement = [Point(5.0, 5.0), Point(95.0, 5.0), Point(50.0, 95.0)]
        new_indexes, removed, _ = tree.batch_update(replacement, deletes=range(4))
        assert removed == [0, 1, 2, 3]
        assert set(tree.active_indexes()) == set(new_indexes)
        assert snapshot_neighbor_map(tree) == fresh_diagram_map(tree)

    def test_duplicate_deletes_count_once(self):
        tree = VoRTree(uniform_points(30, extent=100.0, seed=32))
        _, removed, _ = tree.batch_update(deletes=[4, 4, 4, 9])
        assert removed == [4, 9]
