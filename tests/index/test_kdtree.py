"""Tests for repro.index.kdtree."""

import pytest

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.geometry.primitives import BoundingBox
from repro.index.kdtree import KDTree
from repro.workloads.datasets import clustered_points, uniform_points


def brute_knn(points, query, k):
    order = sorted(range(len(points)), key=lambda i: (query.distance_squared_to(points[i]), i))
    return order[:k]


class TestKDTree:
    def test_empty_tree(self):
        tree = KDTree([])
        assert len(tree) == 0
        assert tree.nearest_neighbors(Point(0, 0), 3) == []

    def test_single_item(self):
        tree = KDTree([(Point(1, 1), "a")])
        result = tree.nearest_neighbors(Point(0, 0), 1)
        assert len(result) == 1
        assert result[0][2] == "a"

    @pytest.mark.parametrize("k", [1, 4, 9, 30])
    def test_knn_matches_brute_force_uniform(self, k):
        points = uniform_points(150, extent=500.0, seed=60)
        tree = KDTree([(p, i) for i, p in enumerate(points)])
        query = Point(250.0, 250.0)
        assert tree.nearest_payloads(query, k) == brute_knn(points, query, k)

    @pytest.mark.parametrize("k", [1, 5, 12])
    def test_knn_matches_brute_force_clustered(self, k):
        points = clustered_points(200, clusters=5, extent=500.0, seed=61)
        tree = KDTree([(p, i) for i, p in enumerate(points)])
        query = Point(111.0, 432.0)
        assert tree.nearest_payloads(query, k) == brute_knn(points, query, k)

    def test_distances_are_sorted(self):
        points = uniform_points(80, extent=100.0, seed=62)
        tree = KDTree([(p, i) for i, p in enumerate(points)])
        result = tree.nearest_neighbors(Point(50, 50), 10)
        distances = [d for d, _, _ in result]
        assert distances == sorted(distances)

    def test_k_larger_than_size_returns_all(self):
        points = uniform_points(5, extent=10.0, seed=63)
        tree = KDTree([(p, i) for i, p in enumerate(points)])
        assert len(tree.nearest_neighbors(Point(0, 0), 50)) == 5

    def test_invalid_k(self):
        tree = KDTree([(Point(0, 0), 0)])
        with pytest.raises(QueryError):
            tree.nearest_neighbors(Point(0, 0), 0)

    def test_range_search_matches_brute_force(self):
        points = uniform_points(120, extent=300.0, seed=64)
        tree = KDTree([(p, i) for i, p in enumerate(points)])
        box = BoundingBox(50, 80, 200, 240)
        expected = {i for i, p in enumerate(points) if box.contains_point(p)}
        got = {payload for _, payload in tree.range_search(box)}
        assert got == expected
