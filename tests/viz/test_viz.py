"""Tests for the ASCII demo renderers."""

import pytest

from repro.core.ins_euclidean import INSProcessor
from repro.core.ins_road import INSRoadProcessor
from repro.geometry.point import Point
from repro.roadnet.generators import grid_network, place_objects
from repro.roadnet.location import NetworkLocation
from repro.viz.ascii_network import render_network_state
from repro.viz.ascii_plane import render_plane_state
from repro.workloads.datasets import uniform_points


class TestPlaneRenderer:
    def test_contains_expected_glyphs(self):
        points = uniform_points(40, extent=100.0, seed=260)
        processor = INSProcessor(points, k=3, rho=1.6)
        query = Point(50.0, 50.0)
        result = processor.initialize(query)
        rendering = render_plane_state(points, query, result.knn, result.guard_objects)
        assert "Q" in rendering
        assert "K" in rendering
        assert "legend" in rendering
        assert "VALID" in rendering

    def test_dimensions(self):
        points = uniform_points(10, extent=10.0, seed=261)
        rendering = render_plane_state(
            points, Point(5, 5), [0], [1], width=30, height=10, include_legend=False
        )
        lines = rendering.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 30 for line in lines)

    def test_invalid_state_is_reported(self):
        # Construct an artificial invalid state: the "kNN" object is far away
        # while the "INS" object is adjacent to the query.
        points = [Point(0, 0), Point(100, 100)]
        rendering = render_plane_state(points, Point(1, 1), knn=[1], ins=[0])
        assert "INVALID" in rendering


class TestNetworkRenderer:
    def test_contains_expected_glyphs(self):
        network = grid_network(5, 5, spacing=10.0)
        objects = place_objects(network, 8, seed=262)
        processor = INSRoadProcessor(network, objects, k=3, rho=1.6)
        edge = network.edges()[7]
        location = NetworkLocation(edge.edge_id, edge.length / 2.0)
        result = processor.initialize(location)
        rendering = render_network_state(
            network, objects, location, result.knn, result.guard_objects
        )
        assert "Q" in rendering
        assert "K" in rendering
        assert "+" in rendering
        assert "legend" in rendering

    def test_dimensions(self):
        network = grid_network(3, 3, spacing=10.0)
        objects = place_objects(network, 3, seed=263)
        location = NetworkLocation(network.edges()[0].edge_id, 1.0)
        rendering = render_network_state(
            network, objects, location, [0], [1], width=40, height=12, include_legend=False
        )
        lines = rendering.splitlines()
        assert len(lines) == 12
        assert all(len(line) == 40 for line in lines)
