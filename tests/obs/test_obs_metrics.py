"""Unit and property tests for the metrics registry.

The load-bearing contracts:

* **bucket exactness** — an observation lands in exactly the bucket
  ``bisect_right(HISTOGRAM_BOUNDS, value)`` names, for every value
  including the bound values themselves and the overflow range;
* **merge exactness and associativity** (hypothesis) — merging W
  per-shard histograms bucket-wise equals the histogram one process
  would have accumulated, regardless of how observations were split
  across shards or how the merge is parenthesised;
* **gating** — a disabled registry records nothing anywhere, and
  :func:`~repro.obs.metrics.start_timer` returns ``None`` so timed
  sites skip the clock entirely;
* **reset-in-place** — :meth:`MetricsRegistry.reset` zeroes instruments
  without dropping them, so handles cached at module import keep
  recording after a forked worker resets its inherited registry.
"""

from bisect import bisect_right

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    BUCKET_COUNT,
    HISTOGRAM_BOUNDS,
    MetricsRegistry,
    RegistrySnapshot,
    merge_snapshots,
    start_timer,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def recording():
    """Force recording on for the test, restoring the prior state after."""
    was_enabled = obs_metrics.enabled()
    obs_metrics.enable()
    yield
    if not was_enabled:
        obs_metrics.disable()


durations = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)


class TestInstruments:
    def test_counter_accumulates_and_snapshots(self, registry, recording):
        counter = registry.counter("insq_test_total", kind="a")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        snap = registry.snapshot()
        assert snap.counters == (("insq_test_total", "kind=a", 5),)

    def test_get_or_create_returns_the_same_instrument(self, registry):
        assert registry.counter("c", x="1") is registry.counter("c", x="1")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is not registry.gauge("g", x="1")

    def test_labels_are_canonical_sorted(self, registry):
        instrument = registry.counter("c", zeta="1", alpha="2")
        assert instrument.labels == "alpha=2,zeta=1"
        assert registry.counter("c", alpha="2", zeta="1") is instrument

    def test_label_values_reject_reserved_characters(self, registry):
        with pytest.raises(ConfigurationError):
            registry.counter("c", bad="a,b")
        with pytest.raises(ConfigurationError):
            registry.counter("c", bad="a=b")

    @pytest.mark.parametrize(
        "value",
        [0.0, 1e-9, 1e-6, 1e-6 + 1e-12, 2e-6, 1.0, 100.0, 1e6]
        + list(HISTOGRAM_BOUNDS),
    )
    def test_histogram_bucket_exactness(self, registry, recording, value):
        histogram = registry.histogram("h")
        histogram.observe(value)
        expected = [0] * BUCKET_COUNT
        expected[bisect_right(HISTOGRAM_BOUNDS, value)] = 1
        assert list(histogram.counts) == expected
        assert histogram.sum == value
        assert histogram.count == 1

    def test_histogram_overflow_bucket(self, registry, recording):
        histogram = registry.histogram("h")
        histogram.observe(HISTOGRAM_BOUNDS[-1] * 2)
        assert histogram.counts[-1] == 1

    def test_observe_since_none_is_a_noop(self, registry, recording):
        histogram = registry.histogram("h")
        histogram.observe_since(None)
        assert histogram.count == 0


class TestGating:
    def test_disabled_registry_records_nothing(self, registry):
        was_enabled = obs_metrics.enabled()
        obs_metrics.disable()
        try:
            counter = registry.counter("c")
            gauge = registry.gauge("g")
            histogram = registry.histogram("h")
            counter.inc()
            gauge.set(3.0)
            gauge.add(1.0)
            histogram.observe(0.5)
            histogram.observe_since(0.0)
            assert start_timer() is None
            assert counter.value == 0
            assert gauge.value == 0.0
            assert histogram.count == 0 and histogram.sum == 0.0
        finally:
            if was_enabled:
                obs_metrics.enable()

    def test_start_timer_returns_a_stamp_when_enabled(self, recording):
        assert isinstance(start_timer(), float)


class TestReset:
    def test_reset_zeroes_in_place(self, registry, recording):
        counter = registry.counter("c")
        histogram = registry.histogram("h")
        gauge = registry.gauge("g")
        counter.inc(7)
        histogram.observe(0.25)
        gauge.set(9.0)
        registry.reset()
        # The same handles are still registered and record again.
        assert counter.value == 0
        assert histogram.count == 0
        assert gauge.value == 0.0
        counter.inc()
        assert registry.counter("c") is counter
        assert registry.snapshot().counters == (("c", "", 1),)


def _single_shard_snapshot(values, labels=""):
    """The snapshot one shard produces after observing ``values``."""
    counts = [0] * BUCKET_COUNT
    for value in values:
        counts[bisect_right(HISTOGRAM_BOUNDS, value)] += 1
    return RegistrySnapshot(
        histograms=(("h", labels, tuple(counts), sum(values)),)
    )


class TestMergeProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        shards=st.lists(
            st.lists(durations, max_size=30), min_size=1, max_size=5
        )
    )
    def test_merge_equals_single_process_accumulation(self, shards):
        """W per-shard histograms merge to the one-process histogram."""
        merged = merge_snapshots(
            [_single_shard_snapshot(values) for values in shards]
        )
        everything = [value for values in shards for value in values]
        reference = _single_shard_snapshot(everything)
        ((_, _, merged_counts, merged_sum),) = merged.histograms
        ((_, _, reference_counts, reference_sum),) = reference.histograms
        assert merged_counts == reference_counts  # exact, not approximate
        assert merged_sum == pytest.approx(reference_sum)

    @settings(max_examples=60, deadline=None)
    @given(
        a=st.lists(durations, max_size=20),
        b=st.lists(durations, max_size=20),
        c=st.lists(durations, max_size=20),
    )
    def test_merge_is_associative_on_buckets(self, a, b, c):
        sa, sb, sc = (
            _single_shard_snapshot(values) for values in (a, b, c)
        )
        left = merge_snapshots([merge_snapshots([sa, sb]), sc])
        right = merge_snapshots([sa, merge_snapshots([sb, sc])])
        assert left.histograms[0][2] == right.histograms[0][2]
        assert left.histograms[0][3] == pytest.approx(right.histograms[0][3])

    def test_counters_add_and_gauges_relabel(self):
        shard = RegistrySnapshot(
            counters=(("c", "", 3),), gauges=(("g", "", 1.5),)
        )
        other = RegistrySnapshot(
            counters=(("c", "", 4),), gauges=(("g", "", 2.5),)
        )
        merged = merge_snapshots([shard, other], gauge_labels=["shard=0", "shard=1"])
        assert merged.counters == (("c", "", 7),)
        assert merged.gauges == (("g", "shard=0", 1.5), ("g", "shard=1", 2.5))

    def test_gauge_relabel_merges_into_existing_labels(self):
        shard = RegistrySnapshot(gauges=(("g", "kind=knn", 1.0),))
        merged = merge_snapshots([shard], gauge_labels=["shard=2"])
        assert merged.gauges == (("g", "kind=knn,shard=2", 1.0),)

    def test_mismatched_bucket_counts_refuse_to_merge(self):
        good = _single_shard_snapshot([0.1])
        bad = RegistrySnapshot(histograms=(("h", "", (1, 2, 3), 0.1),))
        with pytest.raises(ConfigurationError):
            merge_snapshots([good, bad])

    def test_gauge_labels_length_mismatch_is_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_snapshots([RegistrySnapshot()], gauge_labels=["a=1", "b=2"])
