"""Golden-file test for the Prometheus text exposition.

``render_prometheus`` must be byte-stable: scrape pipelines and the
``insq stats --prometheus`` output diff cleanly only if the exposition of
a fixed snapshot never drifts (ordering, float formatting, ``le`` bound
rendering, the ``+Inf`` overflow bucket, cumulative bucket counts).
The golden file ``golden_prometheus.txt`` pins all of it.
"""

import pathlib

from repro.obs.metrics import BUCKET_COUNT, RegistrySnapshot, render_prometheus
from repro.transport.codec import MetricsSnapshot

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_prometheus.txt"


def _fixed_snapshot() -> RegistrySnapshot:
    counts = [0] * BUCKET_COUNT
    counts[0] = 2                 # fastest bucket (<= 1µs)
    counts[10] = 5                # ~1ms
    counts[BUCKET_COUNT - 1] = 1  # overflow (+Inf)
    return RegistrySnapshot(
        counters=(
            ("insq_epochs_total", "", 42),
            ("insq_retrievals_total", "outcome=absorbed", 7),
            ("insq_retrievals_total", "outcome=recomputed", 3),
        ),
        gauges=(
            ("insq_engine_epoch", "", 42.0),
            ("insq_shard_epoch_lag", "shard=0", 0.0),
            ("insq_shard_epoch_lag", "shard=1", 1.0),
            ("insq_wal_group_batch_occupancy", "", 2.5),
        ),
        histograms=(
            (
                "insq_request_seconds",
                "frame=PositionUpdate",
                tuple(counts),
                0.00534,
            ),
        ),
    )


class TestPrometheusGolden:
    def test_rendering_matches_the_golden_file(self):
        assert render_prometheus(_fixed_snapshot()) == GOLDEN_PATH.read_text()

    def test_wire_frame_renders_identically(self):
        """The codec frame and the registry snapshot are duck-equal."""
        registry_shaped = _fixed_snapshot()
        wire_shaped = MetricsSnapshot(
            counters=registry_shaped.counters,
            gauges=registry_shaped.gauges,
            histograms=registry_shaped.histograms,
        )
        assert render_prometheus(wire_shaped) == GOLDEN_PATH.read_text()

    def test_bucket_lines_are_cumulative_and_end_at_count(self):
        text = render_prometheus(_fixed_snapshot())
        lines = text.splitlines()
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("insq_request_seconds_bucket")
        ]
        assert buckets == sorted(buckets)  # cumulative never decreases
        count = next(
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("insq_request_seconds_count")
        )
        assert buckets[-1] == count == 8
        assert 'le="+Inf"' in lines[-3]
