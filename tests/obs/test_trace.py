"""Tests for the span tracer: clock injection, ring bound, Chrome export."""

import json

import pytest

from repro.obs.clock import set_clock
from repro.obs.trace import Tracer


@pytest.fixture
def scripted_clock():
    """Install a deterministic clock; every call advances by one second."""
    ticks = {"now": 0.0}

    def advance():
        ticks["now"] += 1.0
        return ticks["now"]

    set_clock(advance)
    yield ticks
    set_clock(None)


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        tracer.add("work", 0.0, 1.0)
        assert tracer.events() == ()

    def test_span_times_with_the_injected_clock(self, scripted_clock):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("epoch", shard="0"):
            pass  # enter reads tick 1, exit reads tick 2
        (event,) = tracer.events()
        assert event.name == "epoch"
        assert event.start == 1.0
        assert event.duration == 1.0  # exactly one tick — no flake
        assert event.attrs == (("shard", "0"),)

    def test_add_records_pre_timed_spans(self):
        tracer = Tracer()
        tracer.enable()
        tracer.add("maintain", 5.0, 0.25, metric="euclidean")
        (event,) = tracer.events()
        assert (event.start, event.duration) == (5.0, 0.25)
        assert event.attrs == (("metric", "euclidean"),)

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(capacity=4)
        tracer.enable()
        for index in range(10):
            tracer.add(f"span-{index}", float(index), 0.1)
        events = tracer.events()
        assert len(events) == 4
        assert [event.name for event in events] == [
            "span-6", "span-7", "span-8", "span-9",
        ]  # newest window survives, oldest fell off

    def test_reset_clears_and_disable_keeps_the_ring(self):
        tracer = Tracer()
        tracer.enable()
        tracer.add("a", 0.0, 1.0)
        tracer.disable()
        tracer.add("b", 0.0, 1.0)  # not recorded
        assert [event.name for event in tracer.events()] == ["a"]
        tracer.reset()
        assert tracer.events() == ()

    def test_chrome_export_is_valid_jsonl_in_microseconds(self, tmp_path):
        tracer = Tracer()
        tracer.enable()
        tracer.add("request", 2.0, 0.5, frame="PositionUpdate")
        path = tmp_path / "trace.jsonl"
        assert tracer.export_chrome(str(path)) == 1
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["ph"] == "X"
        assert record["name"] == "request"
        assert record["ts"] == pytest.approx(2.0e6)
        assert record["dur"] == pytest.approx(0.5e6)
        assert record["args"] == {"frame": "PositionUpdate"}
        assert isinstance(record["pid"], int) and isinstance(record["tid"], int)
