"""Shared fixtures for the test suite.

Fixtures provide small, deterministic data sets and road networks that are
cheap enough to use in many tests.  Anything larger (the integration-scale
workloads) is built inside the specific test module that needs it.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.geometry.point import Point
from repro.roadnet.generators import grid_network, place_objects
from repro.roadnet.graph import RoadNetwork
from repro.workloads.datasets import uniform_points


@pytest.fixture
def rng() -> random.Random:
    """A seeded random generator for ad-hoc randomness in tests."""
    return random.Random(12345)


@pytest.fixture
def small_points() -> List[Point]:
    """Twelve points in general position (mirrors the scale of Figure 1)."""
    return [
        Point(2.0, 8.5),
        Point(5.5, 9.0),
        Point(8.5, 8.0),
        Point(1.5, 5.5),
        Point(4.5, 6.0),
        Point(7.0, 6.5),
        Point(3.0, 3.5),
        Point(5.5, 4.0),
        Point(8.0, 4.5),
        Point(2.0, 1.5),
        Point(5.0, 1.0),
        Point(8.5, 1.5),
    ]


@pytest.fixture
def medium_points() -> List[Point]:
    """Two hundred uniform points used by index and processor tests."""
    return uniform_points(200, extent=1_000.0, seed=42)


@pytest.fixture
def small_grid_network() -> RoadNetwork:
    """A 4x4 grid road network with 100-unit edges."""
    return grid_network(4, 4, spacing=100.0)


@pytest.fixture
def grid_with_objects(small_grid_network: RoadNetwork):
    """The 4x4 grid plus six data objects on distinct vertices."""
    objects = place_objects(small_grid_network, 6, seed=7)
    return small_grid_network, objects


def brute_force_knn(points: List[Point], query: Point, k: int) -> List[int]:
    """Brute-force kNN oracle shared by several test modules."""
    order = sorted(range(len(points)), key=lambda i: (query.distance_squared_to(points[i]), i))
    return order[:k]
